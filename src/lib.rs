//! # smp-suite
//!
//! Umbrella crate for the reproduction of *"Distributed Computation of Passage Time
//! Quantiles and Transient State Distributions in Large Semi-Markov Models"*
//! (Bradley, Dingle, Harrison & Knottenbelt, IPDPS 2003).
//!
//! The workspace is organised as a set of focused crates; this crate simply
//! re-exports them under stable names so that the examples and integration tests can
//! use a single dependency:
//!
//! | Re-export | Crate | Purpose |
//! |-----------|-------|---------|
//! | [`numeric`] | `smp-numeric` | complex arithmetic, compensated summation, special functions |
//! | [`sparse`] | `smp-sparse` | sparse matrices over ℝ and ℂ, DTMC steady-state solvers |
//! | [`distributions`] | `smp-distributions` | general distributions with LSTs, sampling and moments |
//! | [`laplace`] | `smp-laplace` | numerical Laplace transform inversion (Euler, Laguerre) |
//! | [`core`] | `smp-core` | semi-Markov processes and the iterative passage-time algorithm |
//! | [`smspn`] | `smp-smspn` | semi-Markov stochastic Petri nets and state-space generation |
//! | [`dnamaca`] | `smp-dnamaca` | the extended DNAmaca model specification language |
//! | [`simulator`] | `smp-simulator` | discrete-event simulation used for validation |
//! | [`pipeline`] | `smp-pipeline` | distributed master–worker analysis pipeline |
//! | [`voting`] | `smp-voting` | the distributed voting system model of the paper |
//!
//! See `README.md` for a quickstart, the workspace table and build/verify
//! commands; each member crate's `//!` header documents its own subsystem.
//!
//! ## Quickstart
//!
//! The density of the passage from state 0 into state 2 of a three-state SMP
//! (`0 --Erlang(2,2)--> 1 --Exp(1)--> 2 --Det(1)--> 0`), through the re-exports:
//!
//! ```
//! use smp_suite::core::{solver::PassageTimeAnalysis, SmpBuilder};
//! use smp_suite::distributions::Dist;
//! use smp_suite::laplace::InversionMethod;
//!
//! let mut builder = SmpBuilder::new(3);
//! builder.add_transition(0, 1, 1.0, Dist::erlang(2.0, 2));
//! builder.add_transition(1, 2, 1.0, Dist::exponential(1.0));
//! builder.add_transition(2, 0, 1.0, Dist::deterministic(1.0));
//! let smp = builder.build().unwrap();
//!
//! let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2]).unwrap();
//! let t: Vec<f64> = (1..=20).map(|k| k as f64 * 0.35).collect();
//! let density = analysis.density(InversionMethod::euler(), &t).unwrap();
//! assert!(density.values().iter().all(|f| f.is_finite() && *f >= -1e-9));
//! ```

pub use smp_core as core;
pub use smp_distributions as distributions;
pub use smp_dnamaca as dnamaca;
pub use smp_laplace as laplace;
pub use smp_numeric as numeric;
pub use smp_pipeline as pipeline;
pub use smp_simulator as simulator;
pub use smp_smspn as smspn;
pub use smp_sparse as sparse;
pub use smp_voting as voting;
