//! # smp-suite
//!
//! Umbrella crate for the reproduction of *"Distributed Computation of Passage Time
//! Quantiles and Transient State Distributions in Large Semi-Markov Models"*
//! (Bradley, Dingle, Harrison & Knottenbelt, IPDPS 2003).
//!
//! The workspace is organised as a set of focused crates; this crate simply
//! re-exports them under stable names so that the examples and integration tests can
//! use a single dependency:
//!
//! | Re-export | Crate | Purpose |
//! |-----------|-------|---------|
//! | [`numeric`] | `smp-numeric` | complex arithmetic, compensated summation, special functions |
//! | [`sparse`] | `smp-sparse` | sparse matrices over ℝ and ℂ, DTMC steady-state solvers |
//! | [`distributions`] | `smp-distributions` | general distributions with LSTs, sampling and moments |
//! | [`laplace`] | `smp-laplace` | numerical Laplace transform inversion (Euler, Laguerre) |
//! | [`core`] | `smp-core` | semi-Markov processes and the iterative passage-time algorithm |
//! | [`smspn`] | `smp-smspn` | semi-Markov stochastic Petri nets and state-space generation |
//! | [`dnamaca`] | `smp-dnamaca` | the extended DNAmaca model specification language |
//! | [`simulator`] | `smp-simulator` | discrete-event simulation used for validation |
//! | [`pipeline`] | `smp-pipeline` | distributed master–worker analysis pipeline |
//! | [`voting`] | `smp-voting` | the distributed voting system model of the paper |
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system inventory and
//! experiment index.

pub use smp_core as core;
pub use smp_distributions as distributions;
pub use smp_dnamaca as dnamaca;
pub use smp_laplace as laplace;
pub use smp_numeric as numeric;
pub use smp_pipeline as pipeline;
pub use smp_simulator as simulator;
pub use smp_smspn as smspn;
pub use smp_sparse as sparse;
pub use smp_voting as voting;
