//! Offline stand-in for `serde`: marker traits plus the matching derives.
//!
//! Nothing in the workspace serializes at runtime (the pipeline checkpoint format is
//! hand-rolled text), so the traits carry no methods. Swapping in real serde later is
//! a one-line change in the workspace manifest.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
