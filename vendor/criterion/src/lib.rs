//! Offline stand-in for `criterion`: a small functional benchmark harness with
//! the same call surface the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros).
//!
//! Running a bench binary executes every closure a bounded number of times and
//! prints a mean wall-clock per iteration — enough to compare kernels locally.
//! `cargo bench --no-run` (the tier-1 requirement) only needs this to compile.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter, for single-function groups.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / `BenchmarkId` into a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, retaining its output via an implicit black box.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Deliberately small: this shim favours fast feedback over statistics.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        println!("group: {group_name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into_benchmark_id(), self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and measurement-time settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim keys off `sample_size` only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under the given identifier.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into_benchmark_id(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an input value threaded through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(id.into_benchmark_id(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        mean: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "  {:<48} mean {:>12.3?} ({} samples)",
        id.name, bencher.mean, samples
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
