//! Offline stand-in for `proptest`: deterministic property testing over the
//! strategy subset this workspace uses.
//!
//! Supported surface: the `proptest! { #[test] fn name(pat in strategy, ...) { .. } }`
//! macro (with an optional `#![proptest_config(..)]` inner attribute), range
//! strategies over integers and floats, tuple strategies, and
//! [`collection::vec`]. `prop_assert!`/`prop_assert_eq!` panic like plain
//! asserts (no shrinking); `prop_assume!` skips the current case.
//!
//! Cases are generated from a per-case deterministic seed, so failures are
//! reproducible run-to-run without a persistence file.

use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random source (SplitMix64).
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seeded stream for one test case.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            x: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `Just(v)` always produces `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives a property over many deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Runner for the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` once per configured case; `Err(())` means "assumption
    /// rejected, skip" (assert failures panic instead, like a plain test).
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), ()>,
    {
        for i in 0..self.config.cases {
            let mut rng = TestRng::deterministic(i as u64);
            let _ = case(&mut rng);
        }
    }
}

/// Defines property tests. Mirrors proptest's macro for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(|__proptest_rng| {
                $(let $argpat = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

/// Asserts a property holds; panics with the message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values are unequal; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Err(());
        }
    };
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_in_bounds(
            a in 2usize..9,
            (x, y) in (0.0f64..1.0, -5i32..5),
            v in collection::vec(0u64..100, 1..20))
        {
            prop_assert!((2..9).contains(&a));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_and_assume_work(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #[test]
        fn fixed_size_vec(v in collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }
}
