//! Offline stand-in for the `crossbeam` facade: scoped threads (over
//! `std::thread::scope`) and unbounded MPSC channels (over `std::sync::mpsc`).
//! Only the surface the pipeline crate uses is provided.

use std::any::Any;
use std::thread;

/// Result type matching `crossbeam::thread::Result`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Scope handle passed to [`scope`] closures and to each spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned within a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning `Err` if it panicked.
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. Like crossbeam, the closure receives the scope
    /// again so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which borrowing-threads can be spawned; all threads
/// are joined before `scope` returns.
///
/// Unjoined panicking threads propagate their panic (std semantics) rather than
/// surfacing through the returned `Result`, which is indistinguishable for
/// callers that `.unwrap()` the result — as all call sites here do.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Unbounded channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half; clonable so many workers can report to one master.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None`-like error when empty.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator that ends when every sender is dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum: i32 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        super::scope(|s| {
            for w in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(w).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
