//! Minimal, dependency-free subset of the `rand` 0.8 API used by this workspace.
//!
//! The container this repo builds in has no network access to crates.io, so the
//! workspace vendors the small surface it needs: [`StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range`/`gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the test-suites and
//! benchmarks rely on.

use std::ops::{Range, RangeInclusive};

/// A seedable pseudo-random generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full 256-bit state.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    fn next_raw(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Core generation trait plus the convenience methods the workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (half-open or inclusive, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range, matching `rand`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
