//! Offline stand-in for `serde_derive`: emits empty marker-trait impls.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a forward-looking
//! annotation on plain non-generic structs; no code path serializes at runtime. The
//! derives therefore just implement the (method-less) marker traits from the vendored
//! `serde` crate, keeping the source identical to what it would be against real serde.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following `struct` or `enum`, skipping attributes.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("derive input contained no struct or enum name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
