//! Offline stand-in for `parking_lot`: the poison-free `Mutex`/`RwLock` API
//! implemented over `std::sync`. A poisoned std lock (a panicking holder) is
//! recovered transparently, which matches parking_lot's semantics of not
//! poisoning at all.

use std::sync::{self, LockResult};

/// Returns the guard whether or not the lock was poisoned.
fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader–writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = Arc::clone(&l);
        let t = std::thread::spawn(move || *a.read());
        assert_eq!(*l.read(), 7);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let l = Arc::new(Mutex::new(0));
        let a = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = a.lock();
            panic!("poison it");
        })
        .join();
        *l.lock() += 1;
        assert_eq!(*l.lock(), 1);
    }
}
