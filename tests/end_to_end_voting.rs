//! End-to-end integration tests on the voting model: SM-SPN → state space → SMP →
//! iterative passage-time analysis → numerical inversion, cross-validated against
//! discrete-event simulation (the paper's own validation methodology).

use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_suite::core::{PassageTimeAnalysis, PassageTimeSolver, StateSet, TransientAnalysis};
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{DistributedPipeline, PipelineOptions};
use smp_suite::simulator::smp_sim::{simulate_smp_passage_times, simulate_smp_transient};
use smp_suite::voting::{VotingConfig, VotingSystem};

fn tiny_system() -> VotingSystem {
    VotingSystem::build(VotingConfig::new(4, 2, 2)).expect("build tiny voting system")
}

#[test]
fn analytic_voter_passage_matches_simulation() {
    let system = tiny_system();
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(4);

    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).unwrap();
    let mean = analysis.mean_from_transform(1e-6).unwrap();
    assert!(mean > 0.0);

    // Analytic CDF over a window covering most of the mass.
    let ts = linspace(mean * 0.2, mean * 3.0, 40);
    let cdf = analysis.cdf(InversionMethod::euler(), &ts).unwrap();

    // Simulation of the same passage.
    let target_set = StateSet::new(smp.num_states(), &targets).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let sim = simulate_smp_passage_times(smp, source, &target_set, 30_000, 5_000_000, &mut rng);

    // Means agree within the simulation's confidence interval (plus numerical slack).
    assert!(
        (sim.mean() - mean).abs() < 5.0 * sim.ci95_half_width() + 0.02 * mean,
        "analytic mean {mean} vs simulated {}",
        sim.mean()
    );
    // CDF values agree pointwise to a few percent.
    for (t, analytic) in cdf.iter().step_by(5) {
        let simulated = sim.cdf(t);
        assert!(
            (analytic - simulated).abs() < 0.03,
            "F({t}): analytic {analytic} vs simulated {simulated}"
        );
    }
}

#[test]
fn pipeline_and_sequential_solver_agree() {
    let system = tiny_system();
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(3);
    let ts = linspace(1.0, 20.0, 10);

    let analysis = PassageTimeAnalysis::new(smp, &[source], &targets).unwrap();
    let sequential = analysis.density(InversionMethod::euler(), &ts).unwrap();

    let solver = PassageTimeSolver::new(smp, &[source], &targets).unwrap();
    let pipeline =
        DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
    let distributed = pipeline
        .run(
            |s| {
                solver
                    .transform_at(s)
                    .map(|p| p.value)
                    .map_err(|e| e.to_string())
            },
            &ts,
        )
        .unwrap();

    for (a, b) in sequential.values().iter().zip(&distributed.values) {
        assert!((a - b).abs() < 1e-10, "sequential {a} vs pipeline {b}");
    }
}

#[test]
fn transient_matches_simulation_and_steady_state() {
    let system = tiny_system();
    let smp = system.smp();
    let source = system.initial_state();
    let targets = system.states_with_voted_at_least(2);

    let analysis = TransientAnalysis::new(smp, source, &targets).unwrap();
    let ts = linspace(2.0, 80.0, 8);
    let curve = analysis
        .distribution(InversionMethod::euler(), &ts)
        .unwrap();

    let target_set = StateSet::new(smp.num_states(), &targets).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let simulated = simulate_smp_transient(smp, source, &target_set, &ts, 30_000, &mut rng);
    for ((t, analytic), sim) in curve.iter().zip(&simulated) {
        assert!(
            (analytic - sim).abs() < 0.03,
            "T({t}): analytic {analytic} vs simulated {sim}"
        );
    }

    // The transient keeps climbing towards the SMP steady-state probability without
    // overshooting it.  (Full convergence takes thousands of seconds here because
    // the paper's full-repair distribution has a 0.2-weight Erlang branch with a
    // mean of 5 000 s; the exact asymptote is checked on faster-mixing models in
    // the solver unit tests and by the fig7 harness.)
    let steady = analysis.steady_state_value().unwrap();
    let early = *curve.values().first().unwrap();
    let late = analysis
        .distribution(InversionMethod::euler(), &[600.0])
        .unwrap();
    let tail = late.values()[0];
    assert!(
        tail > early && tail <= steady + 0.03,
        "transient at t=600 ({tail}) should lie between T(2)={early} and the steady state {steady}"
    );
}

#[test]
fn failure_mode_target_reachable_and_analysable() {
    let system = tiny_system();
    let smp = system.smp();
    let source = system.initial_state();
    let failures = system.failure_mode_states();
    assert!(!failures.is_empty());

    let analysis = PassageTimeAnalysis::new(smp, &[source], &failures).unwrap();
    let mttf = analysis.mean_from_transform(1e-6).unwrap();
    assert!(mttf > 0.0 && mttf.is_finite());

    // The completion probability grows with the deadline.
    let p_short = analysis
        .completion_probability(InversionMethod::euler(), mttf * 0.2, 16)
        .unwrap();
    let p_long = analysis
        .completion_probability(InversionMethod::euler(), mttf * 2.0, 16)
        .unwrap();
    assert!(p_long > p_short);
    assert!((0.0..=1.0).contains(&p_short) && (0.0..=1.0).contains(&p_long));
}
