//! Smoke test of the `pipeline::checkpoint` on-disk format through the public
//! umbrella API: write → load round-trip, append-on-reopen, and the documented
//! crash-recovery behaviour where a malformed trailing line (a record truncated
//! mid-write) is ignored on load.

use smp_suite::numeric::Complex64;
use smp_suite::pipeline::checkpoint::{load_checkpoint, CheckpointWriter};
use std::io::Write as _;
use std::path::PathBuf;

fn temp_checkpoint(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "smp-suite-ckpt-smoke-{}-{tag}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn checkpoint_write_load_roundtrip_is_bit_exact() {
    let path = temp_checkpoint("roundtrip");
    // Values chosen to stress the bit-exact encoding: negatives, tiny
    // magnitudes, non-terminating binary fractions.
    let records = [
        (
            Complex64::new(0.1, -7.25),
            Complex64::new(1.0 / 3.0, -2.0e-300),
        ),
        (
            Complex64::new(-4.5e10, 0.0),
            Complex64::new(0.0, f64::MIN_POSITIVE),
        ),
        (Complex64::new(2.0, 3.0), Complex64::new(-1.0, 1.0)),
    ];
    {
        let mut w = CheckpointWriter::open(&path).unwrap();
        for &(s, v) in &records {
            w.record(s, v).unwrap();
        }
        assert_eq!(w.records_written(), records.len());
    }
    let loaded = load_checkpoint(&path).unwrap();
    assert_eq!(loaded.len(), records.len());
    for &(s, v) in &records {
        assert_eq!(loaded.get(s), Some(v), "lost or altered record for s = {s}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_survives_crash_torn_write() {
    let path = temp_checkpoint("torn-write");
    {
        let mut w = CheckpointWriter::open(&path).unwrap();
        w.record(Complex64::new(1.0, 2.0), Complex64::new(0.5, -0.5))
            .unwrap();
        w.record(Complex64::new(3.0, 4.0), Complex64::new(0.25, 0.0))
            .unwrap();
    }
    // Simulate a crash mid-append: the last line stops after two of the four
    // fields and has no trailing newline.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "3ff0000000000000 4000").unwrap();
    }
    // The documented recovery path: both complete records load, the torn
    // trailing line is ignored rather than corrupting the restart.
    let loaded = load_checkpoint(&path).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(
        loaded.get(Complex64::new(1.0, 2.0)),
        Some(Complex64::new(0.5, -0.5))
    );
    assert_eq!(
        loaded.get(Complex64::new(3.0, 4.0)),
        Some(Complex64::new(0.25, 0.0))
    );

    // Restarting after recovery keeps appending valid records.
    {
        let mut w = CheckpointWriter::open(&path).unwrap();
        w.record(Complex64::new(5.0, 6.0), Complex64::new(1.0, 1.0))
            .unwrap();
    }
    let reloaded = load_checkpoint(&path).unwrap();
    assert_eq!(reloaded.len(), 3);
    assert_eq!(
        reloaded.get(Complex64::new(5.0, 6.0)),
        Some(Complex64::new(1.0, 1.0))
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_checkpoint_means_cold_start() {
    let loaded = load_checkpoint(temp_checkpoint("never-written")).unwrap();
    assert!(loaded.is_empty());
}

#[test]
fn truncation_inside_fourth_field_is_rejected_not_misparsed() {
    let path = temp_checkpoint("mid-field");
    {
        let mut w = CheckpointWriter::open(&path).unwrap();
        w.record(Complex64::new(1.0, 2.0), Complex64::new(0.5, -0.5))
            .unwrap();
    }
    // A crash that cuts the final record *inside* its 4th hex field leaves
    // four whitespace-separated tokens; the short fragment "4a" must not be
    // decoded as a (tiny, wrong) f64 for the real planned s-point.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "4000000000000000 4008000000000000 3fd0000000000000 4a").unwrap();
    }
    let loaded = load_checkpoint(&path).unwrap();
    assert_eq!(loaded.len(), 1, "torn mid-field record must be discarded");
    assert_eq!(loaded.get(Complex64::new(2.0, 3.0)), None);

    // After restart the same s-point is recomputed and recorded cleanly.
    {
        let mut w = CheckpointWriter::open(&path).unwrap();
        w.record(Complex64::new(2.0, 3.0), Complex64::new(0.25, 0.0))
            .unwrap();
    }
    let reloaded = load_checkpoint(&path).unwrap();
    assert_eq!(reloaded.len(), 2);
    assert_eq!(
        reloaded.get(Complex64::new(2.0, 3.0)),
        Some(Complex64::new(0.25, 0.0))
    );
    std::fs::remove_file(&path).unwrap();
}
