//! The shard-boundary determinism suite: row-sharding must be invisible in
//! the numbers.
//!
//! Every `tests/corpus/` model plus the larger voting 5,2,2 system is solved
//! with the full six-kind measure battery at shard counts {1, 2, 3, 4} and
//! compared **bitwise** against the unsharded analytic path — the block
//! boundaries are a pure function of the state count, the per-shard gather
//! replays the full masked kernel product entry-for-entry in row order, and
//! halo entries are exchanged as exact bit patterns, so no shard count may
//! perturb even the last ulp of any value.
//!
//! The suite also kills a TCP shard worker mid-solve and checks that the
//! master reshards the model onto the survivors and still produces the very
//! same bits: the shard layout is derived state, so losing a worker changes
//! only who holds which rows, never what the rows say.

mod corpus;

use corpus::{corpus, measures, CorpusModel};
use smp_suite::core::query::{Engine, MeasureReport};
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{
    run_tcp_worker, AnalyticEngine, DistributedEngine, ModelSpec, PipelineOptions, TcpTransport,
    TcpWorkerOptions,
};
use std::time::Duration;

/// The corpus plus the paper's larger voting configuration (5 voters, 2
/// polling units, 2 central servers) — big enough that every shard count in
/// {1..4} produces non-trivial, unequal row blocks.
fn suite_models() -> Vec<CorpusModel> {
    let mut models = corpus();
    models.push(CorpusModel {
        name: "voting-5-2-2",
        spec: ModelSpec::Voting {
            voters: 5,
            polling: 2,
            central: 2,
        },
        all_exponential: false,
        target: "p2>=2",
        t_start: 2.0,
        t_stop: 40.0,
    });
    models
}

/// Bitwise equality: `to_bits` comparison so that −0.0 vs +0.0 and NaN
/// payload differences fail loudly instead of slipping through an `==`.
fn assert_bitwise(label: &str, sharded: &[MeasureReport], baseline: &[MeasureReport]) {
    assert_eq!(sharded.len(), baseline.len(), "{label}: report count");
    for (s, b) in sharded.iter().zip(baseline) {
        assert_eq!(s.name, b.name, "{label}: battery order");
        assert_eq!(s.points.len(), b.points.len(), "{label}: {}", s.name);
        for (i, (x, y)) in s.values.iter().zip(&b.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {} value {i}: {x:e} vs {y:e}",
                s.name
            );
        }
        for (i, (x, y)) in s.points.iter().zip(&b.points).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {} point {i}: {x:e} vs {y:e}",
                s.name
            );
        }
    }
}

#[test]
fn every_shard_count_is_bitwise_identical_to_the_unsharded_analytic_path() {
    for model in suite_models() {
        let ts = linspace(model.t_start, model.t_stop, 5);
        let requests = measures(model.target, &ts);
        let baseline = AnalyticEngine::new(model.spec.clone(), InversionMethod::euler())
            .solve(&requests)
            .unwrap();

        for shards in 1..=4usize {
            let engine = DistributedEngine::sharded(
                model.spec.clone(),
                InversionMethod::euler(),
                PipelineOptions::with_workers(2),
                shards,
            );
            let reports = engine.solve(&requests).unwrap();
            let label = format!("{} @ {shards} shard(s)", model.name);
            assert_bitwise(&label, &reports, &baseline);

            // The memory claim: the row blocks partition the state space —
            // the per-shard counts sum to the full model and no slice exceeds
            // the ⌈N/shards⌉ block ceiling.
            let first = &reports[0].provenance;
            let states = first.states.expect("sharded runs report the state count");
            assert_eq!(first.shards, shards, "{label}");
            assert_eq!(first.shard_states.len(), shards, "{label}");
            assert_eq!(first.shard_states.iter().sum::<usize>(), states, "{label}");
            let ceiling = states.div_ceil(shards);
            assert!(
                first.shard_states.iter().all(|&n| n <= ceiling),
                "{label}: {:?} exceeds ⌈{states}/{shards}⌉ = {ceiling}",
                first.shard_states
            );
            if shards > 1 {
                assert!(first.halo_bytes > 0, "{label}: no boundary exchange?");
                assert!(first.exchange_rounds > 0, "{label}");
            }
        }
    }
}

#[test]
fn a_killed_tcp_shard_worker_is_resharded_without_changing_a_bit() {
    // Three real shard-worker sessions over TCP; worker 1 drops its link
    // after 5 slice responses, mid-solve.  The master must reshard the rows
    // onto the two survivors, redo the interrupted point, and deliver the
    // same bits as the unsharded analytic engine.
    let spec = ModelSpec::Voting {
        voters: 5,
        polling: 2,
        central: 2,
    };
    let ts = linspace(2.0, 40.0, 5);
    let requests = measures("p2>=2", &ts);
    let baseline = AnalyticEngine::new(spec.clone(), InversionMethod::euler())
        .solve(&requests)
        .unwrap();

    let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"])
        .unwrap()
        .with_accept_timeout(Duration::from_secs(10));
    let workers: Vec<_> = transport
        .local_addrs()
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let connect = addr.to_string();
            let options = TcpWorkerOptions {
                exit_after_chunks: if i == 1 { Some(5) } else { None },
                ..Default::default()
            };
            std::thread::spawn(move || run_tcp_worker(&connect, &options))
        })
        .collect();

    let engine = DistributedEngine::sharded_tcp(
        spec,
        InversionMethod::euler(),
        PipelineOptions::with_workers(3),
        transport,
    );
    let reports = engine.solve(&requests).unwrap();
    assert_bitwise(
        "voting-5-2-2 over tcp with a killed shard",
        &reports,
        &baseline,
    );

    // The reshard is visible in the provenance: the run ends on 2 shards
    // whose blocks still partition the full state space.
    let last_sharded = reports
        .iter()
        .rev()
        .find(|r| !r.provenance.shard_states.is_empty())
        .expect("a sharded report");
    let states = last_sharded.provenance.states.unwrap();
    assert_eq!(last_sharded.provenance.shard_states.len(), 2);
    assert_eq!(
        last_sharded.provenance.shard_states.iter().sum::<usize>(),
        states
    );

    let mut dropped = 0;
    for worker in workers {
        let summary = worker.join().unwrap().unwrap();
        if summary.dropped_early {
            dropped += 1;
        }
    }
    assert_eq!(dropped, 1, "exactly the injected fault");
}
