//! The cross-engine conformance matrix: every (model × measure × engine)
//! cell of the `tests/corpus/` library is solved and compared pairwise.
//!
//! * `analytic` vs `distributed` — bitwise identical (same code path, one
//!   scheduled over the work queue);
//! * `analytic` vs `uniformization` — agreement within the sum of the two
//!   engines' reported error bounds plus a small relative slack for the
//!   Laplace-inversion side (whose Euler error is not surfaced as a bound);
//! * `analytic` vs `simulation` — agreement within the simulation's reported
//!   95% confidence bound plus a relative tolerance; density cells are
//!   advisory only (kernel estimates carry smoothing bias).
//!
//! Skipped cells are a *reported* outcome, not an omission: the only allowed
//! skip is the uniformization engine refusing a model with a non-exponential
//! holding time, and the refusal message must say so.  The run writes every
//! cell's worst deviation to `target/conformance_deltas.tsv`, which CI
//! uploads as an artifact.

mod corpus;

use corpus::{corpus, measures, CorpusModel};
use smp_suite::core::query::{Engine, EngineError, MeasureKind, MeasureReport};
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{
    AnalyticEngine, DistributedEngine, PipelineOptions, SimulationEngine, SimulationOptions,
    UniformizationEngine,
};
use std::fmt::Write as _;

const ENGINE_NAMES: [&str; 4] = ["analytic", "distributed", "simulation", "uniformization"];

fn build_engine(name: &str, model: &CorpusModel) -> Box<dyn Engine> {
    let spec = model.spec.clone();
    match name {
        "analytic" => Box::new(AnalyticEngine::new(spec, InversionMethod::euler())),
        "distributed" => Box::new(DistributedEngine::in_process(
            spec,
            InversionMethod::euler(),
            PipelineOptions::with_workers(2),
        )),
        "simulation" => Box::new(SimulationEngine::new(
            spec,
            SimulationOptions {
                replications: 3000,
                threads: 2,
                ..Default::default()
            },
        )),
        "uniformization" => Box::new(UniformizationEngine::new(spec)),
        other => panic!("unknown engine {other}"),
    }
}

/// One matrix cell outcome, flattened into the deltas artifact.
struct Cell {
    model: &'static str,
    engine: &'static str,
    measure: String,
    /// `None` = solved; `Some(reason)` = reported skip.
    skipped: Option<String>,
}

/// One pairwise comparison row for the artifact.
struct DeltaRow {
    model: &'static str,
    pair: String,
    measure: String,
    max_delta: f64,
    allowed: f64,
    advisory: bool,
}

/// Worst absolute deviation between two reports and the allowance at that
/// point: `bound + slack · max(1, |a|, |b|)`.
fn compare(a: &MeasureReport, b: &MeasureReport, bound: f64, slack: f64) -> (f64, f64, bool) {
    assert_eq!(a.name, b.name, "batch order must match");
    assert_eq!(a.values.len(), b.values.len(), "{}", a.name);
    let mut worst = (0.0f64, bound, true);
    for (&x, &y) in a.values.iter().zip(&b.values) {
        let delta = (x - y).abs();
        let allowed = bound + slack * x.abs().max(y.abs()).max(1.0);
        if delta > worst.0 {
            worst = (delta, allowed, delta <= allowed);
        }
    }
    worst
}

#[test]
fn conformance_matrix_covers_every_cell() {
    let models = corpus();
    assert!(models.len() >= 3, "the corpus must span at least 3 models");

    let mut cells: Vec<Cell> = Vec::new();
    let mut deltas: Vec<DeltaRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for model in &models {
        let ts = linspace(model.t_start, model.t_stop, 6);
        let requests = measures(model.target, &ts);
        assert!(
            requests
                .iter()
                .map(|r| r.kind.name())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                >= 4,
            "the battery must span at least 4 measure kinds"
        );

        // Solve the whole battery on every engine; record solved/skipped per
        // cell.
        let mut solved: Vec<(&'static str, Vec<MeasureReport>)> = Vec::new();
        for engine_name in ENGINE_NAMES {
            let engine = build_engine(engine_name, model);
            match engine.solve(&requests) {
                Ok(reports) => {
                    assert_eq!(reports.len(), requests.len());
                    for request in &requests {
                        cells.push(Cell {
                            model: model.name,
                            engine: engine_name,
                            measure: request.name(),
                            skipped: None,
                        });
                    }
                    solved.push((engine_name, reports));
                }
                // The ONLY legitimate skip: uniformization refusing a model
                // with a structurally non-exponential holding time.
                Err(EngineError::Unsupported(reason))
                    if engine_name == "uniformization" && !model.all_exponential =>
                {
                    assert!(
                        reason.contains("not exponential"),
                        "the refusal must name the precondition: {reason}"
                    );
                    for request in &requests {
                        cells.push(Cell {
                            model: model.name,
                            engine: engine_name,
                            measure: request.name(),
                            skipped: Some(reason.clone()),
                        });
                    }
                }
                Err(e) => panic!("{} on {}: {e:?}", engine_name, model.name),
            }
        }

        // The uniformization engine must accept every all-exponential model.
        let uniform = solved.iter().find(|(name, _)| *name == "uniformization");
        assert_eq!(
            uniform.is_some(),
            model.all_exponential,
            "uniformization availability on {}",
            model.name
        );

        let analytic = &solved
            .iter()
            .find(|(name, _)| *name == "analytic")
            .expect("analytic always solves")
            .1;
        let distributed = &solved
            .iter()
            .find(|(name, _)| *name == "distributed")
            .expect("distributed always solves")
            .1;
        let simulation = &solved
            .iter()
            .find(|(name, _)| *name == "simulation")
            .expect("simulation always solves")
            .1;

        // analytic vs distributed: bitwise.
        for (a, d) in analytic.iter().zip(distributed.iter()) {
            let (delta, _, _) = compare(a, d, 0.0, 0.0);
            deltas.push(DeltaRow {
                model: model.name,
                pair: "analytic~distributed".into(),
                measure: a.name.clone(),
                max_delta: delta,
                allowed: 0.0,
                advisory: false,
            });
            if a.values != d.values {
                failures.push(format!(
                    "{}: analytic vs distributed differ bitwise on {} (max |Δ| {delta:e})",
                    model.name, a.name
                ));
            }
        }

        // analytic vs uniformization: within the summed reported bounds.
        // This is the acceptance gate for the uniformization backend — the
        // transient and cdf cells especially must land inside the truncation
        // bound it reports (the slack covers the analytic side's unreported
        // Euler inversion error and, for quantiles, grid resolution).
        if let Some((_, uniform)) = uniform {
            for (a, u) in analytic.iter().zip(uniform.iter()) {
                let bound = a.provenance.error_bound.unwrap_or(0.0)
                    + u.provenance.error_bound.unwrap_or(0.0);
                let slack = match a.kind {
                    MeasureKind::Quantile { .. } => 2e-2,
                    _ => 1e-4,
                };
                let (delta, allowed, ok) = compare(a, u, bound, slack);
                deltas.push(DeltaRow {
                    model: model.name,
                    pair: "analytic~uniformization".into(),
                    measure: a.name.clone(),
                    max_delta: delta,
                    allowed,
                    advisory: false,
                });
                if !ok {
                    failures.push(format!(
                        "{}: analytic vs uniformization disagree on {} \
                         (max |Δ| {delta:e} > allowed {allowed:e})",
                        model.name, a.name
                    ));
                }
            }
        }

        // analytic vs simulation: within the simulation's confidence bound
        // plus a relative tolerance; density is advisory (kernel bias).
        for (a, s) in analytic.iter().zip(simulation.iter()) {
            let bound = s.provenance.error_bound.unwrap_or(0.0);
            let (slack, advisory) = match a.kind {
                MeasureKind::Density => (5e-2, true),
                MeasureKind::Quantile { .. } => (1e-1, false),
                MeasureKind::Moment { .. } => (1e-1, false),
                _ => (5e-2, false),
            };
            let (delta, allowed, ok) = compare(a, s, bound, slack);
            deltas.push(DeltaRow {
                model: model.name,
                pair: "analytic~simulation".into(),
                measure: a.name.clone(),
                max_delta: delta,
                allowed,
                advisory,
            });
            if !ok && !advisory {
                failures.push(format!(
                    "{}: analytic vs simulation disagree on {} \
                     (max |Δ| {delta:e} > allowed {allowed:e})",
                    model.name, a.name
                ));
            }
        }
    }

    // Coverage bookkeeping: every cell of the full matrix is accounted for,
    // and every skip is reported with a reason.
    let kinds_per_model = measures("p>=1", &[1.0, 2.0]).len();
    let expected_cells = models.len() * ENGINE_NAMES.len() * kinds_per_model;
    assert_eq!(
        cells.len(),
        expected_cells,
        "every (model × measure × engine) cell must be recorded"
    );
    let skipped: Vec<&Cell> = cells.iter().filter(|c| c.skipped.is_some()).collect();
    let expected_skips = models.iter().filter(|m| !m.all_exponential).count() * kinds_per_model;
    assert_eq!(
        skipped.len(),
        expected_skips,
        "only uniformization-on-non-exponential cells may be skipped"
    );
    for cell in &skipped {
        assert_eq!(
            cell.engine, "uniformization",
            "{}: {}",
            cell.model, cell.measure
        );
    }

    // The per-cell agreement artifact CI uploads.
    let mut tsv = String::from("model\tpair\tmeasure\tmax_delta\tallowed\tstatus\n");
    for row in &deltas {
        let status = if row.advisory {
            "advisory"
        } else if row.max_delta <= row.allowed {
            "ok"
        } else {
            "FAIL"
        };
        let _ = writeln!(
            tsv,
            "{}\t{}\t{}\t{:e}\t{:e}\t{status}",
            row.model, row.pair, row.measure, row.max_delta, row.allowed
        );
    }
    for cell in &skipped {
        let _ = writeln!(
            tsv,
            "{}\tuniformization\t{}\tNaN\tNaN\tskipped: {}",
            cell.model,
            cell.measure,
            cell.skipped.as_deref().unwrap_or("")
        );
    }
    let target_dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let artifact = std::path::Path::new(&target_dir).join("conformance_deltas.tsv");
    std::fs::write(&artifact, &tsv).expect("write the deltas artifact");

    assert!(
        failures.is_empty(),
        "conformance failures (full deltas in {}):\n  {}",
        artifact.display(),
        failures.join("\n  ")
    );
}
