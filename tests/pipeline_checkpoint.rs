//! Checkpoint / restart behaviour of the distributed pipeline on a real
//! passage-time workload, and the scalability-sweep protocol of Table 2.

use smp_suite::core::PassageTimeSolver;
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{run_scalability_sweep, DistributedPipeline, PipelineOptions};
use smp_suite::voting::{VotingConfig, VotingSystem};

#[test]
fn checkpoint_restart_recomputes_nothing_and_reproduces_results() {
    let system = VotingSystem::build(VotingConfig::new(3, 2, 2)).unwrap();
    let smp = system.smp();
    let targets = system.states_with_voted_at_least(3);
    let solver = PassageTimeSolver::new(smp, &[system.initial_state()], &targets).unwrap();
    let ts = linspace(1.0, 15.0, 6);

    let mut checkpoint = std::env::temp_dir();
    checkpoint.push(format!(
        "smp-suite-integration-ckpt-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&checkpoint);

    let options = PipelineOptions {
        workers: 3,
        checkpoint_path: Some(checkpoint.clone()),
        ..Default::default()
    };
    let pipeline = DistributedPipeline::new(InversionMethod::euler(), options);
    let evaluator = |s| {
        solver
            .transform_at(s)
            .map(|p| p.value)
            .map_err(|e| e.to_string())
    };

    let first = pipeline.run(evaluator, &ts).unwrap();
    assert!(first.evaluations > 0);
    assert_eq!(first.cache_hits, 0);

    // A second run against the same checkpoint file must do no transform work at
    // all and produce bit-identical output.
    let second = pipeline.run(evaluator, &ts).unwrap();
    assert_eq!(second.evaluations, 0);
    assert_eq!(second.cache_hits, first.evaluations);
    assert_eq!(first.values, second.values);

    // Extending the time grid reuses the checkpointed points that overlap (here the
    // shared t = 1.0 contributes one t-point's worth of s-values) and only computes
    // the new ones.
    let extended = linspace(1.0, 20.0, 8);
    let third = pipeline.run(evaluator, &extended).unwrap();
    let per_t_point = first.evaluations / ts.len();
    assert_eq!(third.cache_hits, per_t_point);
    assert_eq!(third.evaluations, (extended.len() - 1) * per_t_point);

    std::fs::remove_file(&checkpoint).unwrap();
}

#[test]
fn scalability_sweep_runs_the_table2_protocol() {
    let system = VotingSystem::build(VotingConfig::new(4, 2, 2)).unwrap();
    let smp = system.smp();
    let targets = system.states_with_voted_at_least(4);
    let solver = PassageTimeSolver::new(smp, &[system.initial_state()], &targets).unwrap();
    // 5 t-points, as in the paper's Table 2 workload.
    let ts: Vec<f64> = (1..=5).map(|k| k as f64 * 3.0).collect();

    let rows = run_scalability_sweep(
        InversionMethod::euler(),
        |s| {
            solver
                .transform_at(s)
                .map(|p| p.value)
                .map_err(|e| e.to_string())
        },
        &ts,
        &[1, 2, 4],
        None,
    )
    .unwrap();

    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].workers, 1);
    assert!((rows[0].speedup - 1.0).abs() < 1e-12);
    for row in &rows {
        assert!(row.elapsed.as_secs_f64() > 0.0);
        assert!(row.efficiency > 0.0);
        assert_eq!(row.evaluations, rows[0].evaluations);
    }
}
