//! Regression tests for quantile edge probabilities through the engines: tiny
//! and near-one probabilities, and a quantile search whose initial horizon
//! (the measure's last grid point) does not bracket the answer, forcing the
//! geometric horizon expansion — on both the analytic and the uniformization
//! engine, which share the `quantiles_from_cdf` search policy and must
//! therefore land on (nearly) the same times.

mod corpus;

use corpus::CorpusModel;
use smp_suite::core::query::{Engine, MeasureRequest, TargetSpec};
use smp_suite::laplace::InversionMethod;
use smp_suite::pipeline::{AnalyticEngine, UniformizationEngine};

fn ring() -> CorpusModel {
    corpus::corpus()
        .into_iter()
        .find(|m| m.name == "ring-exp")
        .unwrap()
}

#[test]
fn edge_quantiles_agree_across_analytic_and_uniformization() {
    // The grid deliberately stops at t = 0.5, far below the 0.995-quantile of
    // the ring passage (≈ 6): the search must expand its horizon, and the
    // 0.05-quantile must resolve near the bottom of the very first grid.
    let probs = [0.05, 0.5, 0.995];
    let ts = [0.1, 0.3, 0.5];
    let request = MeasureRequest::quantile(TargetSpec::parse(ring().target).unwrap(), &probs)
        .with_t_points(&ts);

    let analytic = AnalyticEngine::new(ring().spec, InversionMethod::euler())
        .solve(std::slice::from_ref(&request))
        .unwrap();
    let uniform = UniformizationEngine::new(ring().spec)
        .solve(std::slice::from_ref(&request))
        .unwrap();

    let a = &analytic[0].values;
    let u = &uniform[0].values;
    assert_eq!(a.len(), probs.len());
    for ((&p, &qa), &qu) in probs.iter().zip(a).zip(u) {
        assert!(qa.is_finite() && qa > 0.0, "analytic q({p}) = {qa}");
        assert!(qu.is_finite() && qu > 0.0, "uniformization q({p}) = {qu}");
        // Shared search policy + near-identical CDFs: within 2% + grid floor.
        let allowed = 2e-2 * qa.abs().max(qu.abs()).max(1.0);
        assert!(
            (qa - qu).abs() <= allowed,
            "q({p}): analytic {qa} vs uniformization {qu}"
        );
    }
    // The quantiles are ordered and the horizon expansion really was needed
    // for the top one.
    assert!(a[0] < a[1] && a[1] < a[2], "{a:?}");
    assert!(a[2] > ts[2], "q(0.995) = {} must exceed the grid end", a[2]);
    // The bottom quantile is small but not degenerate (clamped to the search
    // resolution floor, never zero).
    assert!(a[0] > 0.0 && a[0] < 1.0, "q(0.05) = {}", a[0]);
}
