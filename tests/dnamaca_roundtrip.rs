//! The textual (DNAmaca) and programmatic routes into the tool chain must agree:
//! same state space, same kernel, same passage-time transforms.

use smp_suite::core::PassageTimeSolver;
use smp_suite::numeric::Complex64;
use smp_suite::smspn::StateSpace;
use smp_suite::voting::{spec, VotingConfig, VotingSystem};

#[test]
fn parsed_and_programmatic_models_have_identical_state_spaces() {
    let config = VotingConfig::new(3, 2, 2);
    let net = smp_suite::dnamaca::parse_model(&spec::dnamaca_source(config)).unwrap();
    let parsed = StateSpace::explore(&net).unwrap();
    let programmatic = VotingSystem::build(config).unwrap();

    assert_eq!(parsed.num_states(), programmatic.num_states());
    assert_eq!(parsed.num_edges(), programmatic.state_space().num_edges());
    // Every marking reachable in one is reachable in the other.
    for s in 0..parsed.num_states() {
        let marking = parsed.marking(s);
        assert!(
            programmatic.state_space().state_of(marking).is_some(),
            "marking {marking} missing from the programmatic state space"
        );
    }
}

#[test]
fn parsed_and_programmatic_passage_transforms_agree() {
    let config = VotingConfig::new(3, 2, 2);
    let net = smp_suite::dnamaca::parse_model(&spec::dnamaca_source(config)).unwrap();
    let parsed = StateSpace::explore(&net).unwrap();
    let programmatic = VotingSystem::build(config).unwrap();

    // Passage: all voters voted, starting from the initial marking.
    let p2_parsed = net.place_index("p2").unwrap();
    let parsed_targets = parsed.states_where(|m| m.get(p2_parsed) >= 3);
    let prog_targets = programmatic.states_with_voted_at_least(3);
    assert_eq!(parsed_targets.len(), prog_targets.len());

    let parsed_solver =
        PassageTimeSolver::new(parsed.smp(), &[parsed.initial_state()], &parsed_targets).unwrap();
    let prog_solver = PassageTimeSolver::new(
        programmatic.smp(),
        &[programmatic.initial_state()],
        &prog_targets,
    )
    .unwrap();

    for &s in &[
        Complex64::new(0.5, 0.0),
        Complex64::new(0.2, 1.5),
        Complex64::new(1.0, -3.0),
    ] {
        let a = parsed_solver.transform_at(s).unwrap().value;
        let b = prog_solver.transform_at(s).unwrap().value;
        assert!(
            (a - b).norm() < 1e-9,
            "transform mismatch at {s}: parsed {a} vs programmatic {b}"
        );
    }
}

#[test]
fn fig3_excerpt_parses_inside_a_complete_model() {
    // The paper's Fig. 3 excerpt, embedded verbatim (modulo the surrounding places)
    // in a minimal complete model.
    let source = r#"
        \constant{MM}{3}
        \place{p3}{0}
        \place{p7}{MM}
        \transition{t5}{
            \condition{p7 > MM-1}
            \action{
                next->p3 = p3 + MM;
                next->p7 = p7 - MM;
            }
            \weight{1.0}
            \priority{2}
            \sojourntimeLT{
                return (0.8 * uniformLT(1.5,10,s)
                + 0.2 * erlangLT(0.001,5,s));
            }
        }
        \transition{fail}{
            \condition{p3 > 0}
            \action{ next->p3 = p3 - 1; next->p7 = p7 + 1; }
            \sojourntimeLT{ return expLT(0.1, s); }
        }
    "#;
    let net = smp_suite::dnamaca::parse_model(source).unwrap();
    let space = StateSpace::explore(&net).unwrap();
    assert_eq!(space.num_states(), 4); // p7 ∈ {0, 1, 2, 3}
    let t5 = net.transition_index("t5").unwrap();
    let all_failed = net.initial_marking();
    assert!(net.transitions()[t5].is_net_enabled(all_failed));
}
