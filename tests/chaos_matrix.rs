//! The chaos matrix: deterministic fault schedules crossed with deployment
//! shapes, every cell demanding **bitwise** identity with the fault-free run.
//!
//! The fault layer never reads a clock or OS entropy — a [`FaultPlan`] is a
//! pure function of `(seed, op counter)` — so each cell here replays exactly:
//! the same drops, corruptions and disconnects land on the same messages on
//! every run, and the recovery machinery (requeue, re-shard, mid-point
//! snapshot resume, checksummed frame refusal) must absorb them without
//! perturbing one ulp of any reported value.
//!
//! Deployments covered: the unsharded distributed engine over a faulty
//! transport, a sharded slice fleet over faulty channels, the query service
//! behind a retrying client, and — the crash-recovery acceptance cell — a
//! master "killed" mid-solve whose restart resumes from the per-shard
//! checkpoint instead of starting cold.

mod corpus;

use corpus::measures;
use smp_suite::core::query::{Engine, MeasureReport, MeasureRequest};
use smp_suite::core::TargetSpec;
use smp_suite::laplace::{InversionMethod, SPointPlan};
use smp_suite::numeric::stats::linspace;
use smp_suite::numeric::Complex64;
use smp_suite::pipeline::checkpoint::{shard_snapshot_path, CheckpointWriter, ShardSnapshot};
use smp_suite::pipeline::server::encode_query_reply;
use smp_suite::pipeline::transport::ExecutionPlan;
use smp_suite::pipeline::wire::{read_payload, write_payload};
use smp_suite::pipeline::worker::WorkerMessage;
use smp_suite::pipeline::{
    query_with_retry, AnalyticEngine, CompiledModelSet, DistributedEngine, FaultKind, FaultPlan,
    FaultyChannel, FaultyTransport, InProcess, LoopbackSlice, ModelSpec, PipelineError,
    PipelineOptions, PoolSpec, QueryClient, QueryReply, QueryRequest, QueryServer,
    QueryServerOptions, Refusal, RefusalKind, RetryPolicy, SliceChannel, SliceFleet, SolveRecovery,
    TransformSpec, Transport, TransportReport,
};
use std::sync::Arc;
use std::time::Duration;

/// The matrix's model: the paper's voting system at 3,1,1 — small enough
/// that every cell solves in test time, structured enough that drops,
/// corruptions and disconnects all land mid-computation.
fn model() -> ModelSpec {
    ModelSpec::Voting {
        voters: 3,
        polling: 1,
        central: 1,
    }
}

fn target() -> TargetSpec {
    TargetSpec::parse("p2>=2").unwrap()
}

/// Bitwise equality: `to_bits` comparison so that −0.0 vs +0.0 and NaN
/// payload differences fail loudly instead of slipping through an `==`.
fn assert_bitwise(label: &str, faulty: &[MeasureReport], baseline: &[MeasureReport]) {
    assert_eq!(faulty.len(), baseline.len(), "{label}: report count");
    for (a, b) in faulty.iter().zip(baseline) {
        assert_eq!(a.name, b.name, "{label}: battery order");
        assert_eq!(a.points.len(), b.points.len(), "{label}: {}", a.name);
        for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {} value {i}: {x:e} vs {y:e}",
                a.name
            );
        }
        for (i, (x, y)) in a.points.iter().zip(&b.points).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: {} point {i}: {x:e} vs {y:e}",
                a.name
            );
        }
    }
}

/// A delegating handle that lets the test keep the [`FaultyTransport`] (and
/// its recovery counters) while the engine owns a `Box<dyn Transport>` view
/// of the very same instance.
struct SharedFaulty(Arc<FaultyTransport<InProcess>>);

impl Transport for SharedFaulty {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn parallelism(&self) -> usize {
        self.0.parallelism()
    }

    fn reusable(&self) -> bool {
        self.0.reusable()
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        self.0.execute(plan, on_message)
    }
}

/// Cell row 1: the unsharded distributed engine over a fault-injecting
/// transport.  Scripted drops, corruptions, delays and a seeded background
/// schedule — every schedule's full six-measure battery must equal the
/// fault-free battery bit for bit, and the schedules that swallow results
/// must visibly flow through the recovery path.
#[test]
fn faulty_transport_schedules_are_bitwise_invisible_to_the_engine() {
    let ts = linspace(2.0, 40.0, 5);
    let requests = measures("p2>=2", &ts);
    let baseline = AnalyticEngine::new(model(), InversionMethod::euler())
        .solve(&requests)
        .unwrap();

    let schedules: Vec<(&str, FaultPlan)> = vec![
        ("fault-free control", FaultPlan::none()),
        (
            "scripted drop",
            FaultPlan::scripted([(0, FaultKind::DropFrame)]),
        ),
        (
            "scripted corruption",
            FaultPlan::scripted([(1, FaultKind::CorruptByte { xor: 0x20 })]),
        ),
        (
            "scripted delay",
            FaultPlan::scripted([(2, FaultKind::Delay { millis: 1 })]),
        ),
        (
            "drop+corrupt+disconnect",
            FaultPlan::scripted([
                (0, FaultKind::DropFrame),
                (3, FaultKind::CorruptByte { xor: 0x01 }),
                (5, FaultKind::Disconnect),
            ]),
        ),
        (
            "seeded background",
            FaultPlan::seeded(0xabad_1dea, 5).with_budget(8),
        ),
    ];

    for (label, plan) in schedules {
        let lossy = !matches!(label, "fault-free control" | "scripted delay");
        let faulty = Arc::new(FaultyTransport::new(InProcess::new(2), plan));
        let engine = DistributedEngine::with_transport(
            model(),
            InversionMethod::euler(),
            PipelineOptions::with_workers(2),
            Box::new(SharedFaulty(Arc::clone(&faulty))),
        );
        let reports = engine.solve(&requests).unwrap();
        assert_bitwise(label, &reports, &baseline);
        if lossy {
            assert!(
                faulty.recovered_faults() > 0,
                "{label}: the schedule injected nothing — the cell tests no fault"
            );
            assert!(
                faulty.retried_items() > 0,
                "{label}: swallowed results must be re-executed"
            );
        }
    }
}

/// Cell row 2: a sharded slice fleet whose channels inject the plan's
/// faults.  Dropped frames poison the channel (a silent gap would desync the
/// lockstep exchange), corrupted frames are refused by the checksum, and
/// either way the fleet re-shards and redoes the point — the values must
/// match the local compiled evaluator exactly.
#[test]
fn faulty_slice_channels_leave_sharded_values_untouched() {
    let spec = TransformSpec::passage(model(), target());
    let ts = linspace(2.0, 40.0, 5);
    let plan = SPointPlan::new(InversionMethod::euler(), &ts);
    let set = CompiledModelSet::compile(std::slice::from_ref(&spec)).unwrap();
    let evaluator = set.evaluator(0).unwrap();
    let expected: Vec<Complex64> = plan
        .s_points()
        .iter()
        .map(|&s| evaluator.eval(s).unwrap())
        .collect();

    let schedules: Vec<FaultPlan> = vec![
        FaultPlan::scripted([(9, FaultKind::DropFrame)]),
        FaultPlan::scripted([(14, FaultKind::CorruptByte { xor: 0x55 })]),
        FaultPlan::scripted([(21, FaultKind::Disconnect)]),
        // A background schedule over a 4-shard fleet needs a budget under
        // the shard count: each fault can cost at most one worker.
        FaultPlan::seeded(0xdead_beef, 41).with_budget(3),
    ];
    for plan_cell in schedules {
        let shared = Arc::new(std::sync::Mutex::new(plan_cell));
        let channels: Vec<Box<dyn SliceChannel>> = (0..4)
            .map(|_| {
                Box::new(FaultyChannel::new(
                    Box::new(LoopbackSlice::new()),
                    Arc::clone(&shared),
                )) as Box<dyn SliceChannel>
            })
            .collect();
        let mut fleet = SliceFleet::from_channels(channels);
        let mut recovery = SolveRecovery {
            key: "passage".to_string(),
            snapshot_every: 4,
            ..SolveRecovery::default()
        };
        let out = fleet
            .solve_recoverable(&spec, plan.s_points(), &mut recovery)
            .unwrap();
        let injected = shared.lock().unwrap().injected();
        for (i, (got, want)) in out.values.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.re.to_bits(),
                want.re.to_bits(),
                "point {i} re under {injected} injected fault(s)"
            );
            assert_eq!(
                got.im.to_bits(),
                want.im.to_bits(),
                "point {i} im under {injected} injected fault(s)"
            );
        }
        assert!(injected > 0, "the schedule must actually fire");
        assert!(
            out.recovered_faults > 0,
            "faults must flow through recovery, not vanish"
        );
    }
}

/// Cell row 3a: a retrying client against a server that refuses twice with
/// `Busy` before answering — fully scripted, so the retry count is exact.
/// The eventual answer must be the untouched baseline and the spent retries
/// must surface in the first report's provenance.
#[test]
fn query_retries_absorb_busy_refusals_and_count_them() {
    let ts = linspace(2.0, 20.0, 3);
    let requests = vec![
        MeasureRequest::cdf(target(), &ts),
        MeasureRequest::density(target(), &ts),
    ];
    let baseline = AnalyticEngine::new(model(), InversionMethod::euler())
        .solve(&requests)
        .unwrap();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let reply = baseline.clone();
    let server = std::thread::spawn(move || {
        // Two Busy refusals, then the real answer — the deterministic stand-in
        // for a server draining its admission queue.
        for attempt in 0..3 {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_payload(&mut stream).unwrap();
            let payload = if attempt < 2 {
                encode_query_reply(&QueryReply::Refusal(Refusal {
                    kind: RefusalKind::Busy,
                    message: "admission queue full".to_string(),
                }))
            } else {
                encode_query_reply(&QueryReply::Reports(reply.clone()))
            };
            write_payload(&mut stream, &payload).unwrap();
        }
    });

    let request = QueryRequest {
        model: model(),
        engine: "analytic".to_string(),
        method: "euler".to_string(),
        deadline: None,
        t_points: ts.clone(),
        measures: vec!["cdf:p2>=2".to_string(), "density:p2>=2".to_string()],
    };
    let policy = RetryPolicy {
        retries: 5,
        backoff: Duration::from_millis(1),
    };
    let reports = query_with_retry(&addr, &request, &policy).unwrap();
    server.join().unwrap();

    assert_bitwise("busy-refusal retry", &reports, &baseline);
    assert_eq!(
        reports[0].provenance.retries, 2,
        "exactly the two scripted refusals were retried"
    );
}

/// Cell row 3b: the real query service.  The daemon binds, a retrying client
/// asks the six-measure battery, and the served values must equal a local
/// analytic solve bit for bit; a clean shutdown drains the daemon.
#[test]
fn served_queries_survive_retry_policies_without_changing_values() {
    let ts = linspace(2.0, 20.0, 3);
    let requests = vec![
        MeasureRequest::cdf(target(), &ts),
        MeasureRequest::density(target(), &ts),
    ];
    let baseline = AnalyticEngine::new(model(), InversionMethod::euler())
        .solve(&requests)
        .unwrap();

    let server = QueryServer::bind(QueryServerOptions {
        listen: "127.0.0.1:0".to_string(),
        pool: PoolSpec::InProcess(2),
        max_inflight: 1,
        max_queued: 2,
        ..QueryServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let request = QueryRequest {
        model: model(),
        engine: "analytic".to_string(),
        method: "euler".to_string(),
        deadline: None,
        t_points: ts.clone(),
        measures: vec!["cdf:p2>=2".to_string(), "density:p2>=2".to_string()],
    };
    let policy = RetryPolicy {
        retries: 10,
        backoff: Duration::from_millis(10),
    };
    let reports = query_with_retry(&addr, &request, &policy).unwrap();
    assert_bitwise("served battery", &reports, &baseline);

    QueryClient::connect(&addr).unwrap().shutdown().unwrap();
    daemon.join().unwrap().unwrap();
}

/// The crash-recovery acceptance cell: a sharded master is "killed" after
/// checkpointing two of its points (its in-flight third point has a mid-
/// iteration snapshot in the sidecar).  A fresh engine pointed at the same
/// checkpoint must redo only the missing points, resume the interrupted one
/// mid-iteration, and deliver the fault-free bits.
#[test]
fn a_killed_sharded_master_resumes_from_the_per_shard_checkpoint() {
    let ts = linspace(2.0, 40.0, 5);
    let requests = vec![MeasureRequest::cdf(target(), &ts)];
    let baseline = AnalyticEngine::new(model(), InversionMethod::euler())
        .solve(&requests)
        .unwrap();

    let plan = SPointPlan::new(InversionMethod::euler(), &ts);
    let spec = TransformSpec::passage(model(), target());
    let key = spec.encode().unwrap();

    let mut checkpoint = std::env::temp_dir();
    checkpoint.push(format!(
        "smp-chaos-killed-master-{}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&checkpoint);
    let sidecar = shard_snapshot_path(&checkpoint);
    let _ = std::fs::remove_file(&sidecar);

    // Run 1: the doomed master.  It checkpoints its first two points, then
    // dies inside the third — exactly what a kill -9 leaves on disk: a
    // checkpoint of the finished points plus a sidecar snapshot of the
    // in-flight iterate.
    {
        let mut writer = CheckpointWriter::open(&checkpoint).unwrap();
        let mut fleet = SliceFleet::loopback(3);
        let mut seen = 0usize;
        let mut on_value = |s: Complex64, value: Complex64| -> std::io::Result<()> {
            if seen == 2 {
                return Err(std::io::Error::other("simulated master kill"));
            }
            writer.record_tagged(&key, s, value)?;
            seen += 1;
            Ok(())
        };
        let mut recovery = SolveRecovery {
            key: key.clone(),
            snapshot_path: Some(sidecar.clone()),
            snapshot_every: 2,
            on_value: Some(&mut on_value),
            ..SolveRecovery::default()
        };
        let err = fleet
            .solve_recoverable(&spec, plan.s_points(), &mut recovery)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Io(_)), "{err:?}");
    }
    let seed = ShardSnapshot::load(&sidecar)
        .unwrap()
        .expect("the killed run left its in-flight iterate behind");
    assert_eq!(seed.key, key);
    assert!(seed.round > 0, "the snapshot holds a mid-iteration state");
    assert_eq!(
        seed.s.re.to_bits(),
        plan.s_points()[2].re.to_bits(),
        "the sidecar snapshots the third (interrupted) point"
    );

    // Run 2: the restarted master — same checkpoint path, fresh fleet.  It
    // must pre-seed the two finished points, resume the third from the
    // snapshot's round, and agree with the fault-free analytic run bitwise.
    let engine = DistributedEngine::sharded(
        model(),
        InversionMethod::euler(),
        PipelineOptions {
            checkpoint_path: Some(checkpoint.clone()),
            ..PipelineOptions::default()
        },
        3,
    );
    let reports = engine.solve(&requests).unwrap();
    assert_bitwise("killed-master resume", &reports, &baseline);

    let recovered = &reports[0].provenance;
    assert_eq!(
        recovered.evaluations,
        plan.len() - 2,
        "only the points the crash interrupted are redone"
    );
    assert!(
        recovered.evaluations < plan.len(),
        "a resumed run redoes fewer points than a cold run"
    );
    assert!(
        recovered.cache_hits >= 2,
        "the two checkpointed points are restored, not recomputed"
    );
    assert_eq!(
        recovered.resumed_rounds, seed.round,
        "the interrupted point resumed mid-iteration, skipping its finished rounds"
    );
    assert!(
        ShardSnapshot::load(&sidecar).unwrap().is_none(),
        "a clean completion consumes the sidecar snapshot"
    );

    std::fs::remove_file(&checkpoint).ok();
    std::fs::remove_file(&sidecar).ok();
}
