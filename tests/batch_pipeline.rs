//! Batched multi-measure pipeline runs on a real semi-Markov workload:
//! union planning, per-measure cache-hit accounting, chunked dispatch, and the
//! measure-tagged checkpoint format living next to legacy records.

use smp_suite::core::{PassageTimeSolver, SmpBuilder};
use smp_suite::distributions::Dist;
use smp_suite::laplace::{InversionMethod, SPointPlan};
use smp_suite::numeric::stats::linspace;
use smp_suite::numeric::Complex64;
use smp_suite::pipeline::checkpoint::{load_checkpoint_by_measure, CheckpointWriter};
use smp_suite::pipeline::{BatchJob, DistributedPipeline, MeasureSpec, PipelineOptions};

fn tandem_smp() -> smp_suite::core::SemiMarkovProcess {
    let mut b = SmpBuilder::new(4);
    b.add_transition(0, 1, 1.0, Dist::erlang(2.0, 2));
    b.add_transition(1, 2, 1.0, Dist::uniform(0.2, 1.0));
    b.add_transition(2, 3, 1.0, Dist::exponential(1.5));
    b.add_transition(3, 0, 1.0, Dist::deterministic(0.3));
    b.build().unwrap()
}

/// The ISSUE's acceptance criterion: M measures sharing a t-grid (with
/// distinct transforms) evaluate exactly |union of planned s-points| × M
/// points on a cold cache, and a warm rerun reports them all as cache hits.
#[test]
fn batch_evaluation_count_is_union_times_measures_and_warm_reruns_hit_cache() {
    let smp = tandem_smp();
    let to_half = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
    let to_end = PassageTimeSolver::new(&smp, &[0], &[3]).unwrap();
    let back_home = PassageTimeSolver::new(&smp, &[1], &[0]).unwrap();
    let ts = linspace(0.5, 8.0, 7);

    let mut checkpoint = std::env::temp_dir();
    checkpoint.push(format!("smp-suite-batch-ckpt-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions {
            workers: 4,
            checkpoint_path: Some(checkpoint.clone()),
            chunk_size: 16,
            ..Default::default()
        },
    );
    fn passage<'a>(
        solver: &'a PassageTimeSolver<'a>,
    ) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync + 'a {
        move |s| {
            solver
                .transform_at(s)
                .map(|p| p.value)
                .map_err(|e| e.to_string())
        }
    }
    let job = || {
        BatchJob::new()
            .with_measure(MeasureSpec::density("0->2", &ts, passage(&to_half)))
            .with_measure(MeasureSpec::density("0->3", &ts, passage(&to_end)))
            .with_measure(MeasureSpec::cdf("1->0", &ts, passage(&back_home)))
    };

    // Cold cache: |union| × M evaluations, no hits.
    let union = SPointPlan::new(InversionMethod::euler(), &ts).len();
    let cold = pipeline.run_batch(job()).unwrap();
    assert_eq!(cold.evaluations, union * 3);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.shared_hits, 0);
    for measure in &cold.measures {
        assert_eq!(measure.evaluations, union, "{}", measure.name);
        assert_eq!(measure.cache_hits, 0);
    }
    // Chunked dispatch: ceil(union × 3 / 16) chunks, counted consistently by
    // master and workers.
    assert_eq!(cold.chunk_size, 16);
    assert_eq!(cold.chunks_dispatched, (union * 3).div_ceil(16));
    let worker_messages: usize = cold.worker_stats.iter().map(|w| w.messages).sum();
    assert_eq!(worker_messages, cold.chunks_dispatched);

    // Warm rerun against the checkpoint: zero evaluations, per-measure hits.
    let warm = pipeline.run_batch(job()).unwrap();
    assert_eq!(warm.evaluations, 0);
    assert_eq!(warm.cache_hits, union * 3);
    for (cold_measure, warm_measure) in cold.measures.iter().zip(&warm.measures) {
        assert_eq!(warm_measure.cache_hits, union);
        assert_eq!(warm_measure.evaluations, 0);
        assert_eq!(warm_measure.values, cold_measure.values, "bit-identical");
    }

    // The checkpoint holds one tagged shard per measure, |union| records each.
    let shards = load_checkpoint_by_measure(&checkpoint).unwrap();
    assert_eq!(shards.len(), 3);
    for key in ["0->2", "0->3", "1->0"] {
        assert_eq!(shards[key].len(), union, "shard {key}");
    }
    std::fs::remove_file(&checkpoint).unwrap();
}

/// Batch results agree with the sequential single-measure analyses.
#[test]
fn batch_values_match_single_process_analysis() {
    use smp_suite::core::PassageTimeAnalysis;
    let smp = tandem_smp();
    let analysis = PassageTimeAnalysis::new(&smp, &[0], &[3]).unwrap();
    let solver = PassageTimeSolver::new(&smp, &[0], &[3]).unwrap();
    let ts = linspace(0.4, 10.0, 20);

    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions::with_workers(3).chunked(5),
    );
    let evaluator = |s: Complex64| {
        solver
            .transform_at(s)
            .map(|p| p.value)
            .map_err(|e| e.to_string())
    };
    let batch = pipeline
        .run_batch(
            BatchJob::new()
                .with_measure(
                    MeasureSpec::density("f", &ts, evaluator).with_transform_key("passage"),
                )
                .with_measure(MeasureSpec::cdf("F", &ts, evaluator).with_transform_key("passage")),
        )
        .unwrap();

    let density = analysis.density(InversionMethod::euler(), &ts).unwrap();
    for (a, b) in batch
        .measure("f")
        .unwrap()
        .values
        .iter()
        .zip(density.values())
    {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
    let cdf = analysis.cdf(InversionMethod::euler(), &ts).unwrap();
    for (a, b) in batch.measure("F").unwrap().values.iter().zip(cdf.values()) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
    // The shared transform key halves the work.
    assert_eq!(batch.measure("F").unwrap().evaluations, 0);
    assert_eq!(
        batch.measure("F").unwrap().shared_hits,
        batch.measure("f").unwrap().evaluations
    );
}

/// A checkpoint written partly by the legacy 4-field format and partly by the
/// measure-tagged format restores both shards — old files keep working.
#[test]
fn mixed_format_checkpoint_feeds_both_legacy_and_batch_runs() {
    let d = Dist::erlang(2.0, 2);
    let ts = linspace(0.5, 4.0, 5);
    let mut checkpoint = std::env::temp_dir();
    checkpoint.push(format!("smp-suite-mixed-ckpt-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    let pipeline = DistributedPipeline::new(
        InversionMethod::euler(),
        PipelineOptions {
            workers: 2,
            checkpoint_path: Some(checkpoint.clone()),
            ..Default::default()
        },
    );
    let evaluator = {
        let d = d.clone();
        move |s: Complex64| Ok::<_, String>(d.lst(s))
    };

    // A legacy single-measure run writes untagged records…
    let legacy = pipeline.run(&evaluator, &ts).unwrap();
    assert!(legacy.evaluations > 0);
    // …a batch run appends tagged records to the same file…
    let batch = pipeline
        .run_batch(BatchJob::new().with_measure(MeasureSpec::density("erlang", &ts, &evaluator)))
        .unwrap();
    assert_eq!(batch.evaluations, legacy.evaluations); // distinct shard: re-evaluated

    // …and both shards restore: a second legacy run and a second batch run are
    // all cache hits.
    let legacy_again = pipeline.run(&evaluator, &ts).unwrap();
    assert_eq!(legacy_again.evaluations, 0);
    assert_eq!(legacy_again.cache_hits, legacy.evaluations);
    let batch_again = pipeline
        .run_batch(BatchJob::new().with_measure(MeasureSpec::density("erlang", &ts, &evaluator)))
        .unwrap();
    assert_eq!(batch_again.evaluations, 0);
    assert_eq!(batch_again.measures[0].cache_hits, legacy.evaluations);

    let shards = load_checkpoint_by_measure(&checkpoint).unwrap();
    assert_eq!(shards.len(), 2, "legacy shard + 'erlang' shard");
    std::fs::remove_file(&checkpoint).unwrap();
}

/// Records written by hand in the old 4-field format sit next to new tagged
/// records in one file and both load with bit-exact values.
#[test]
fn old_records_load_next_to_tagged_records() {
    let mut path = std::env::temp_dir();
    path.push(format!("smp-suite-oldnew-ckpt-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let s = Complex64::new(1.5, -2.25);
    {
        // Simulate a file begun by an old version of the tool…
        use std::io::Write as _;
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(
            f,
            "{:016x} {:016x} {:016x} {:016x}",
            s.re.to_bits(),
            s.im.to_bits(),
            0.125f64.to_bits(),
            (-0.5f64).to_bits()
        )
        .unwrap();
    }
    {
        // …appended to by the new one.
        let mut w = CheckpointWriter::open(&path).unwrap();
        w.record_tagged("voters", s, Complex64::new(0.75, 0.0))
            .unwrap();
    }
    let shards = load_checkpoint_by_measure(&path).unwrap();
    assert_eq!(shards[""].get(s), Some(Complex64::new(0.125, -0.5)));
    assert_eq!(shards["voters"].get(s), Some(Complex64::new(0.75, 0.0)));
    std::fs::remove_file(&path).unwrap();
}
