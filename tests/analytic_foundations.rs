//! Cross-crate numerical validation: the iterative passage-time algorithm, the
//! Laplace inversion algorithms and the distribution library must agree with each
//! other and with closed-form ground truth when all three are composed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smp_suite::core::{PassageTimeAnalysis, SmpBuilder, TransientAnalysis};
use smp_suite::distributions::Dist;
use smp_suite::laplace::{Euler, InversionMethod, Laguerre};
use smp_suite::numeric::stats::{linspace, trapezoid};

#[test]
fn passage_density_of_exponential_tandem_is_erlang() {
    // k exponential stages in series: the passage density is Erlang(rate, k); check
    // the full chain (kernel -> iteration -> inversion) against the closed form for
    // both inversion algorithms.
    let rate = 1.5;
    let stages = 4;
    let mut builder = SmpBuilder::new(stages + 1);
    for i in 0..stages {
        builder.add_transition(i, i + 1, 1.0, Dist::exponential(rate));
    }
    builder.add_transition(stages, 0, 1.0, Dist::exponential(1.0));
    let smp = builder.build().unwrap();

    let analysis = PassageTimeAnalysis::new(&smp, &[0], &[stages]).unwrap();
    let ts = linspace(0.2, 8.0, 30);
    for method in [InversionMethod::euler(), InversionMethod::laguerre()] {
        let density = analysis.density(method, &ts).unwrap();
        for (t, f) in density.iter() {
            let expect =
                rate.powi(stages as i32) * t.powi(stages as i32 - 1) * (-rate * t).exp() / 6.0; // (k-1)! = 3! = 6
            assert!(
                (f - expect).abs() < 2e-4,
                "f({t}) = {f} vs Erlang density {expect}"
            );
        }
    }
}

#[test]
fn random_smp_densities_integrate_to_one_and_match_transform_mean() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..5 {
        let n = rng.gen_range(3..8);
        let mut builder = SmpBuilder::new(n);
        for i in 0..n {
            builder.add_transition(
                i,
                (i + 1) % n,
                1.0,
                Dist::uniform(0.1, rng.gen_range(0.5..2.0)),
            );
            if rng.gen_bool(0.6) {
                builder.add_transition(
                    i,
                    rng.gen_range(0..n),
                    rng.gen_range(0.3..1.5),
                    Dist::erlang(rng.gen_range(0.5..3.0), rng.gen_range(1..4)),
                );
            }
        }
        let smp = builder.build().unwrap();
        let target = n - 1;
        let analysis = PassageTimeAnalysis::new(&smp, &[0], &[target]).unwrap();
        let mean = analysis.mean_from_transform(1e-6).unwrap();
        assert!(mean > 0.0, "trial {trial}: non-positive mean");

        let ts = linspace(mean * 0.01, mean * 8.0, 400);
        let density = analysis.density(InversionMethod::euler(), &ts).unwrap();
        let mass = density.integral();
        assert!(
            (mass - 1.0).abs() < 0.05,
            "trial {trial}: density mass {mass}"
        );
        // First moment of the inverted density matches -L'(0).
        let weighted: Vec<f64> = ts
            .iter()
            .zip(density.values())
            .map(|(t, f)| t * f)
            .collect();
        let numeric_mean = trapezoid(&ts, &weighted);
        assert!(
            (numeric_mean - mean).abs() < 0.05 * mean + 0.05,
            "trial {trial}: numeric mean {numeric_mean} vs transform mean {mean}"
        );
    }
}

#[test]
fn euler_and_laguerre_agree_on_a_smooth_passage_density() {
    // A CTMC passage density is smooth and vanishes at infinity, so both inversion
    // methods apply and must agree.  (Transient distributions tend to a non-zero
    // steady-state constant, which the Laguerre expansion handles poorly — the paper
    // likewise reserves Laguerre for smooth, decaying densities and uses Euler
    // elsewhere.)
    let mut builder = SmpBuilder::new(3);
    builder.add_transition(0, 1, 1.0, Dist::exponential(1.0));
    builder.add_transition(1, 2, 1.0, Dist::exponential(2.0));
    builder.add_transition(2, 0, 1.0, Dist::exponential(0.5));
    let smp = builder.build().unwrap();

    let analysis = PassageTimeAnalysis::new(&smp, &[0], &[2]).unwrap();
    let ts = linspace(0.5, 10.0, 12);
    let euler_curve = analysis.density(InversionMethod::euler(), &ts).unwrap();
    let laguerre_curve = analysis.density(InversionMethod::laguerre(), &ts).unwrap();
    for ((t, a), b) in euler_curve.iter().zip(laguerre_curve.values()) {
        assert!((a - b).abs() < 5e-4, "f({t}): euler {a} vs laguerre {b}");
    }

    // The Euler-inverted transient still approaches its steady-state asymptote.
    let transient = TransientAnalysis::new(&smp, 0, &[2]).unwrap();
    let steady = transient.steady_state_value().unwrap();
    let curve = transient
        .distribution(InversionMethod::euler(), &linspace(5.0, 60.0, 6))
        .unwrap();
    assert!((curve.values().last().unwrap() - steady).abs() < 0.01);
}

#[test]
fn direct_inverters_recover_a_composed_distribution() {
    // A convolution of a mixture with a deterministic shift, inverted directly —
    // exercises the distribution algebra plus both inversion code paths without any
    // SMP in the loop.
    let d = Dist::convolution(vec![
        Dist::mixture(vec![
            (0.5, Dist::erlang(2.0, 2)),
            (0.5, Dist::exponential(0.8)),
        ]),
        Dist::erlang(4.0, 2),
    ]);
    let euler = Euler::standard();
    let laguerre = Laguerre::standard();
    let ts = linspace(0.3, 8.0, 16);
    let mass: f64 = {
        let fine = linspace(0.01, 40.0, 2000);
        let values = euler.invert_many(&d, &fine);
        trapezoid(&fine, &values)
    };
    assert!((mass - 1.0).abs() < 1e-3, "density mass {mass}");
    for &t in &ts {
        let a = euler.invert(&d, t);
        let b = laguerre.invert(&d, t);
        assert!((a - b).abs() < 1e-3, "f({t}): euler {a} vs laguerre {b}");
        assert!(a > -1e-6);
    }
}
