//! Acceptance tests for the unified measure-engine API: all three engines
//! answer the same [`MeasureRequest`]s on the voting model, the deterministic
//! pair (analytic, distributed) agree **bitwise**, the simulation engine
//! agrees within its confidence bound, and the `smpq --validate-sim` flag
//! performs the paper's validation loop end to end.

use smp_suite::core::query::{Engine, MeasureRequest, TargetSpec};
use smp_suite::laplace::InversionMethod;
use smp_suite::numeric::stats::linspace;
use smp_suite::pipeline::{
    AnalyticEngine, DistributedEngine, ModelSpec, PipelineOptions, SimulationEngine,
    SimulationOptions,
};

fn voting(voters: u32) -> ModelSpec {
    ModelSpec::Voting {
        voters,
        polling: 2,
        central: 2,
    }
}

fn target(text: &str) -> TargetSpec {
    TargetSpec::parse(text).unwrap()
}

#[test]
fn all_three_engines_serve_the_same_requests() {
    let ts = linspace(2.0, 40.0, 6);
    let requests = vec![
        MeasureRequest::cdf(target("p2>=3"), &ts),
        MeasureRequest::transient(target("p2>=3"), &ts),
        MeasureRequest::quantile(target("p2>=3"), &[0.5, 0.9, 0.99]).with_t_points(&ts),
        MeasureRequest::mean(target("p2>=3")),
    ];

    let analytic = AnalyticEngine::new(voting(5), InversionMethod::euler())
        .solve(&requests)
        .unwrap();
    let distributed = DistributedEngine::in_process(
        voting(5),
        InversionMethod::euler(),
        PipelineOptions::with_workers(4),
    )
    .solve(&requests)
    .unwrap();
    let sim = SimulationEngine::new(
        voting(5),
        SimulationOptions {
            replications: 10_000,
            threads: 2,
            ..Default::default()
        },
    )
    .solve(&requests)
    .unwrap();

    for ((a, d), s) in analytic.iter().zip(&distributed).zip(&sim) {
        // Identical shapes everywhere.
        assert_eq!(a.name, d.name);
        assert_eq!(a.name, s.name);
        assert_eq!(a.points, d.points);
        assert_eq!(a.points, s.points);

        // Analytic vs distributed: bitwise.
        assert_eq!(a.values, d.values, "{}: analytic vs distributed", a.name);

        // Simulation: within tolerance + its own reported bound.
        let bound = s.provenance.error_bound.unwrap_or(0.0);
        for ((&point, &va), &vs) in a.points.iter().zip(&a.values).zip(&s.values) {
            let allowed = 1e-2 * va.abs().max(vs.abs()).max(1.0) + bound;
            assert!(
                (va - vs).abs() <= allowed,
                "{} at {point}: analytic {va} vs sim {vs} (allowed {allowed})",
                a.name
            );
        }

        // Provenance populated on every report.
        assert_eq!(a.provenance.engine, "analytic");
        assert_eq!(d.provenance.engine, "distributed");
        assert_eq!(s.provenance.engine, "simulation");
        assert!(a.provenance.states.is_some());
        assert!(d.provenance.states.is_some());
        assert!(s.provenance.backend.contains("monte-carlo"));
        assert!(a.provenance.evaluations + a.provenance.shared_hits > 0);
    }
}

#[test]
fn smpq_validate_sim_passes_on_the_voting_model() {
    // The issue's acceptance command, driven through the CLI library:
    //   smpq --voting 5,2,2 --measure 'quantile:p2>=3@0.5,0.9,0.99' \
    //        --engine distributed --validate-sim 1e-2
    let run_with_engine = |engine: &str| -> String {
        let args: Vec<String> = [
            "--voting",
            "5,2,2",
            "--measure",
            "quantile:p2>=3@0.5,0.9,0.99",
            "--measure",
            "cdf:p2>=3",
            "--t-start",
            "2",
            "--t-stop",
            "60",
            "--t-count",
            "8",
            "--engine",
            engine,
            "--validate-sim",
            "1e-2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let options = smp_cli::parse_args(&args).unwrap();
        smp_cli::run(&options)
            .unwrap_or_else(|e| panic!("smpq --engine {engine} --validate-sim failed: {e}"))
    };

    let analytic = run_with_engine("analytic");
    let distributed = run_with_engine("distributed");
    let sim = run_with_engine("sim");
    for report in [&analytic, &distributed, &sim] {
        assert!(report.contains("validation passed"), "{report}");
        assert!(report.contains("quantile:p2>=3@0.5,0.9,0.99"), "{report}");
    }

    // Analytic and distributed render identical numbers, quantiles included.
    let numeric = |report: &str| -> Vec<String> {
        report
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with(|c: char| c.is_ascii_digit()) || t.starts_with("p =")
            })
            .map(str::to_string)
            .collect()
    };
    assert_eq!(numeric(&analytic), numeric(&distributed));
}
