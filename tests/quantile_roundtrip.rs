//! Quantile round-trip on the voting model: the `p`-quantile answers "by which
//! time does the completion probability reach `p`?", so reading the CDF back
//! at the returned quantile must recover `p` — the inverse-function property
//! that makes the paper's response-time quantiles (Fig. 5) trustworthy.

use smp_suite::core::PassageTimeSolver;
use smp_suite::laplace::{probability_of_completion_by, quantile, InversionMethod};
use smp_suite::numeric::Complex64;
use smp_suite::pipeline::{ModelSpec, ResolveTarget, TargetSpec};
use smp_suite::smspn::StateSpace;

/// The inverter's end-to-end round-trip tolerance: quantile grid resolution
/// plus inversion noise.
const TOLERANCE: f64 = 0.01;

#[test]
fn completion_probability_at_the_quantile_recovers_p() {
    // The paper's case study: the passage from the initial marking of the
    // voting system until at least 2 voters have voted.
    let model = ModelSpec::Voting {
        voters: 3,
        polling: 1,
        central: 1,
    };
    let source = model.source();
    let net = smp_suite::dnamaca::parse_model(&source).unwrap();
    let space = StateSpace::explore(&net).unwrap();
    let targets = TargetSpec::parse("p2>=2")
        .unwrap()
        .resolve(&net, &space)
        .unwrap();
    let solver = PassageTimeSolver::new(space.smp(), &[space.initial_state()], &targets).unwrap();
    // The solver's transform as a LaplaceTransform (closures implement it).
    let transform = |s: Complex64| solver.transform_at(s).expect("transform evaluates").value;

    for p in [0.5, 0.9, 0.99] {
        let q = quantile(InversionMethod::euler(), &transform, p, 1.0, 16_384.0)
            .unwrap_or_else(|| panic!("quantile p = {p} not found"));
        assert!(q > 0.0, "q({p}) = {q}");
        let recovered = probability_of_completion_by(InversionMethod::euler(), &transform, q);
        assert!(
            (recovered - p).abs() < TOLERANCE,
            "round trip p = {p}: q = {q}, F(q) = {recovered}"
        );
    }

    // Quantiles are monotone in p.
    let qs: Vec<f64> = [0.5, 0.9, 0.99]
        .iter()
        .map(|&p| quantile(InversionMethod::euler(), &transform, p, 1.0, 16_384.0).unwrap())
        .collect();
    assert!(qs.windows(2).all(|w| w[0] < w[1]), "{qs:?}");
}
