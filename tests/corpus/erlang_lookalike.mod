\place{a}{1}
\place{b}{0}
\place{c}{0}

\transition{ab}{
    \condition{a > 0}
    \action{ next->a = a - 1; next->b = b + 1; }
    \weight{1.0}
    \sojourntimeLT{ return erlangLT(2.0, 1, s); }
}
\transition{bc}{
    \condition{b > 0}
    \action{ next->b = b - 1; next->c = c + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(1.0, s); }
}
\transition{ca}{
    \condition{c > 0}
    \action{ next->c = c - 1; next->a = a + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(3.0, s); }
}
