//! The cross-engine conformance corpus: a reusable library of models with
//! known structure, shared by the conformance matrix and the quantile edge
//! tests.
//!
//! Each entry names a model, says whether every holding-time distribution is
//! *structurally* exponential (the uniformization engine's precondition), and
//! carries a target predicate plus a time window sized so the passage and
//! transient curves have visible shape on the grid.
//!
//! The `.mod` files next to this module are extended-DNAmaca sources; they
//! are embedded with `include_str!` so the corpus needs no runtime file I/O
//! and `smpq --model tests/corpus/<name>.mod` runs the very same text.

// Shared by several test binaries, each of which uses a different subset.
#![allow(dead_code)]

use smp_suite::core::query::MeasureRequest;
use smp_suite::core::TargetSpec;
use smp_suite::pipeline::ModelSpec;

/// One corpus entry: a model plus the query window the matrix drives it with.
pub struct CorpusModel {
    /// Short unique name, used in cell labels and the deltas artifact.
    pub name: &'static str,
    /// The model itself, in the engines' native spec form.
    pub spec: ModelSpec,
    /// Whether every holding time is built as `Dist::exponential` — i.e.
    /// whether the uniformization engine must accept (true) or reject (false)
    /// the model.
    pub all_exponential: bool,
    /// The target predicate all measures of this model query.
    pub target: &'static str,
    /// First output time.
    pub t_start: f64,
    /// Last output time.
    pub t_stop: f64,
}

/// The three-state all-exponential ring (rates 2, 1, 3); the uniformization
/// engine's simplest non-trivial model, with closed-form passage moments.
pub const RING_EXP: &str = include_str!("ring_exp.mod");

/// An all-exponential voting-style model: CC voters, MM voting units, a
/// joint `&&` enabling condition and competing transitions — 12 states.
pub const VOTING_EXP: &str = include_str!("voting_exp.mod");

/// The exp ring with one `erlangLT(2.0, 1, s)` holding time: distributionally
/// identical to `RING_EXP`, but *structurally* not exponential, so the
/// uniformization engine must refuse it while every other engine solves it.
pub const ERLANG_LOOKALIKE: &str = include_str!("erlang_lookalike.mod");

/// The full corpus, smallest model first.
pub fn corpus() -> Vec<CorpusModel> {
    vec![
        CorpusModel {
            name: "ring-exp",
            spec: ModelSpec::Dnamaca(RING_EXP.to_string()),
            all_exponential: true,
            target: "c>=1",
            t_start: 0.5,
            t_stop: 8.0,
        },
        CorpusModel {
            name: "voting-exp",
            spec: ModelSpec::Dnamaca(VOTING_EXP.to_string()),
            all_exponential: true,
            target: "p2>=2",
            t_start: 0.5,
            t_stop: 12.0,
        },
        CorpusModel {
            name: "ring-erlang-lookalike",
            spec: ModelSpec::Dnamaca(ERLANG_LOOKALIKE.to_string()),
            all_exponential: false,
            target: "c>=1",
            t_start: 0.5,
            t_stop: 8.0,
        },
        CorpusModel {
            name: "voting-3-1-1",
            spec: ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            all_exponential: false,
            target: "p2>=2",
            t_start: 2.0,
            t_stop: 40.0,
        },
    ]
}

/// The measure battery every corpus model is queried with: all six kinds.
pub fn measures(target: &str, ts: &[f64]) -> Vec<MeasureRequest> {
    let target = TargetSpec::parse(target).unwrap();
    vec![
        MeasureRequest::cdf(target.clone(), ts),
        MeasureRequest::transient(target.clone(), ts),
        MeasureRequest::density(target.clone(), ts),
        MeasureRequest::quantile(target.clone(), &[0.5, 0.9]).with_t_points(ts),
        MeasureRequest::mean(target.clone()),
        MeasureRequest::moment(target, 2),
    ]
}
