\constant{CC}{3}
\constant{MM}{2}

\place{p1}{CC}
\place{p2}{0}
\place{p3}{MM}
\place{p4}{0}

\transition{vote}{
    \condition{p1 > 0 && p3 > 0}
    \action{ next->p1 = p1 - 1; next->p2 = p2 + 1; next->p3 = p3 - 1; next->p4 = p4 + 1; }
    \weight{2.0}
    \sojourntimeLT{ return expLT(1.0, s); }
}
\transition{recover_unit}{
    \condition{p4 > 0}
    \action{ next->p4 = p4 - 1; next->p3 = p3 + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(0.8, s); }
}
\transition{reset_voter}{
    \condition{p2 > 0}
    \action{ next->p2 = p2 - 1; next->p1 = p1 + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(0.5, s); }
}
