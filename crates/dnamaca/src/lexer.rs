//! Tokeniser for the DNAmaca-style model language.

use std::fmt;

/// A lexical token together with its source position (1-based line / column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// The kinds of token the language uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A backslash keyword such as `\transition` (stored without the backslash).
    Keyword(String),
    /// An identifier: place name, constant name, distribution function, `next`, `s`.
    Ident(String),
    /// A numeric literal (integers are represented as floats).
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Assign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `>`
    Greater,
    /// `<`
    Less,
    /// `>=`
    GreaterEq,
    /// `<=`
    LessEq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "\\{k}"),
            TokenKind::Ident(i) => write!(f, "{i}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Greater => write!(f, ">"),
            TokenKind::Less => write!(f, "<"),
            TokenKind::GreaterEq => write!(f, ">="),
            TokenKind::LessEq => write!(f, "<="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
        }
    }
}

/// A lexical error with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lexical error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises a model source text.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut column = 1usize;

    let advance = |i: &mut usize, line: &mut usize, column: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *column = 1;
        } else {
            *column += 1;
        }
        *i += 1;
    };

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut column);
            }
            '%' => {
                // Comment to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut column);
                }
            }
            '\\' => {
                advance(&mut i, &mut line, &mut column);
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    advance(&mut i, &mut line, &mut column);
                }
                if start == i {
                    return Err(LexError {
                        message: "expected keyword after '\\'".into(),
                        line: tok_line,
                        column: tok_col,
                    });
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Keyword(word),
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_ascii_digit()
                || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    advance(&mut i, &mut line, &mut column);
                }
                let text: String = chars[start..i].iter().collect();
                let value: f64 = text.parse().map_err(|_| LexError {
                    message: format!("invalid numeric literal '{text}'"),
                    line: tok_line,
                    column: tok_col,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    advance(&mut i, &mut line, &mut column);
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(word),
                    line: tok_line,
                    column: tok_col,
                });
            }
            _ => {
                // Punctuation and operators, longest match first.
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let (kind, len) = match two.as_str() {
                    "->" => (TokenKind::Arrow, 2),
                    ">=" => (TokenKind::GreaterEq, 2),
                    "<=" => (TokenKind::LessEq, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::NotEq, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    _ => {
                        let kind = match c {
                            '{' => TokenKind::LBrace,
                            '}' => TokenKind::RBrace,
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            ',' => TokenKind::Comma,
                            ';' => TokenKind::Semicolon,
                            '=' => TokenKind::Assign,
                            '+' => TokenKind::Plus,
                            '-' => TokenKind::Minus,
                            '*' => TokenKind::Star,
                            '/' => TokenKind::Slash,
                            '>' => TokenKind::Greater,
                            '<' => TokenKind::Less,
                            '!' => TokenKind::Not,
                            other => {
                                return Err(LexError {
                                    message: format!("unexpected character '{other}'"),
                                    line: tok_line,
                                    column: tok_col,
                                })
                            }
                        };
                        (kind, 1)
                    }
                };
                for _ in 0..len {
                    advance(&mut i, &mut line, &mut column);
                }
                tokens.push(Token {
                    kind,
                    line: tok_line,
                    column: tok_col,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("\\place{p1}{18}"),
            vec![
                TokenKind::Keyword("place".into()),
                TokenKind::LBrace,
                TokenKind::Ident("p1".into()),
                TokenKind::RBrace,
                TokenKind::LBrace,
                TokenKind::Number(18.0),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn numbers_including_scientific() {
        assert_eq!(
            kinds("0.001 5 1e-3 2.5E2"),
            vec![
                TokenKind::Number(0.001),
                TokenKind::Number(5.0),
                TokenKind::Number(0.001),
                TokenKind::Number(250.0),
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a -> b >= 1 && c != 2 || !d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::GreaterEq,
                TokenKind::Number(1.0),
                TokenKind::AndAnd,
                TokenKind::Ident("c".into()),
                TokenKind::NotEq,
                TokenKind::Number(2.0),
                TokenKind::OrOr,
                TokenKind::Not,
                TokenKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("p1 % the waiting voters\n + 1"),
            vec![
                TokenKind::Ident("p1".into()),
                TokenKind::Plus,
                TokenKind::Number(1.0)
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn paper_fig3_excerpt_tokenises() {
        let src = r#"
            \transition{t5}{
                \condition{p7 > MM-1}
                \action{
                    next->p3 = p3 + MM;
                    next->p7 = p7 - MM;
                }
                \weight{1.0}
                \priority{2}
                \sojourntimeLT{
                    return (0.8 * uniformLT(1.5,10,s)
                          + 0.2 * erlangLT(0.001,5,s));
                }
            }
        "#;
        let toks = tokenize(src).unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Keyword("sojourntimeLT".into())));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident("erlangLT".into())));
    }

    #[test]
    fn bad_character_reports_position() {
        let err = tokenize("p1 @ 2").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 4);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn lone_backslash_is_an_error() {
        assert!(tokenize("\\ {").is_err());
    }
}
