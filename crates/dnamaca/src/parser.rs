//! Recursive-descent parser for the model language.

use crate::ast::{Assignment, BinOp, DistExpr, Expr, ModelAst, TransitionAst};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// Errors produced while parsing a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A lexical error.
    Lex(LexError),
    /// A grammatical error with a position and description.
    Syntax {
        /// Description of what went wrong / what was expected.
        message: String,
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        column: usize,
    },
    /// The source ended unexpectedly.
    UnexpectedEof {
        /// What the parser was expecting.
        expected: String,
    },
    /// A structurally valid model that is semantically wrong (unknown place,
    /// unknown distribution constructor, scalar sojourn expression, ...).
    Semantic(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax {
                message,
                line,
                column,
            } => write!(f, "syntax error at line {line}, column {column}: {message}"),
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input (line ?): expected {expected}")
            }
            ParseError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Distribution constructor names recognised inside `\sojourntimeLT{...}`.
pub const DIST_FUNCTIONS: &[&str] = &[
    "uniformLT",
    "erlangLT",
    "expLT",
    "exponentialLT",
    "detLT",
    "deterministicLT",
    "weibullLT",
    "immediateLT",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| (t.line, t.column))
            .unwrap_or((0, 0))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        if self.pos >= self.tokens.len() {
            return ParseError::UnexpectedEof {
                expected: message.into(),
            };
        }
        let (line, column) = self.position();
        ParseError::Syntax {
            message: message.into(),
            line,
            column,
        }
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.pos += 1;
                Ok(())
            }
            Some(k) => Err(self.error(format!("expected '{kind}', found '{k}'"))),
            None => Err(ParseError::UnexpectedEof {
                expected: kind.to_string(),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                Ok(name)
            }
            Some(k) => Err(self.error(format!("expected an identifier, found '{k}'"))),
            None => Err(ParseError::UnexpectedEof {
                expected: "identifier".into(),
            }),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_comparison()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_comparison()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Some(TokenKind::Greater) => Some(BinOp::Greater),
            Some(TokenKind::Less) => Some(BinOp::Less),
            Some(TokenKind::GreaterEq) => Some(BinOp::GreaterEq),
            Some(TokenKind::LessEq) => Some(BinOp::LessEq),
            Some(TokenKind::EqEq) => Some(BinOp::Eq),
            Some(TokenKind::NotEq) => Some(BinOp::NotEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat(&TokenKind::Not) {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Number(n))
            }
            Some(TokenKind::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Ident(name))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(other) => Err(self.error(format!("expected an expression, found '{other}'"))),
            None => Err(ParseError::UnexpectedEof {
                expected: "expression".into(),
            }),
        }
    }

    // ---- blocks ----------------------------------------------------------

    /// Parses `{ expr }`.
    fn parse_braced_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let e = self.parse_expr()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(e)
    }

    /// Parses `{ (next->place = expr ;)* }`.
    fn parse_action_block(&mut self) -> Result<Vec<Assignment>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut assignments = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            let keyword = self.expect_ident()?;
            if keyword != "next" {
                return Err(self.error(format!(
                    "action statements must start with 'next->', found '{keyword}'"
                )));
            }
            self.expect(&TokenKind::Arrow)?;
            let place = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            let value = self.parse_expr()?;
            self.expect(&TokenKind::Semicolon)?;
            assignments.push(Assignment { place, value });
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(assignments)
    }

    /// Parses `{ [return] dist-expr [;] }`.
    fn parse_sojourn_block(&mut self) -> Result<DistExpr, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        // Optional `return` keyword, as in the paper's Fig. 3.
        if let Some(TokenKind::Ident(word)) = self.peek() {
            if word == "return" {
                self.pos += 1;
            }
        }
        let expr = self.parse_expr()?;
        let _ = self.eat(&TokenKind::Semicolon);
        self.expect(&TokenKind::RBrace)?;
        dist_from_expr(&expr).map_err(ParseError::Semantic)
    }

    fn parse_transition(&mut self) -> Result<TransitionAst, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::LBrace)?;
        let mut transition = TransitionAst {
            name,
            condition: None,
            action: Vec::new(),
            weight: None,
            priority: None,
            sojourn: None,
        };
        while self.peek() != Some(&TokenKind::RBrace) {
            match self.next() {
                Some(TokenKind::Keyword(kw)) => match kw.as_str() {
                    "condition" => transition.condition = Some(self.parse_braced_expr()?),
                    "action" => transition.action = self.parse_action_block()?,
                    "weight" => transition.weight = Some(self.parse_braced_expr()?),
                    "priority" => transition.priority = Some(self.parse_braced_expr()?),
                    "sojourntimeLT" => transition.sojourn = Some(self.parse_sojourn_block()?),
                    other => {
                        self.pos -= 1;
                        return Err(self.error(format!("unknown transition attribute '\\{other}'")));
                    }
                },
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected a '\\attribute' inside the transition block"));
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(transition)
    }
}

/// Intermediate result while converting an arithmetic expression tree into a
/// distribution expression.
enum Converted {
    Scalar(Expr),
    Dist { weight: Expr, dist: DistExpr },
}

fn mul_exprs(a: Expr, b: Expr) -> Expr {
    // Constant-fold the common cases so that weights like `0.8 × 1` stay as the
    // literal `0.8` (this keeps the AST readable and lets `dist_from_expr` detect
    // unit weights).
    match (&a, &b) {
        (Expr::Number(x), _) if *x == 1.0 => b,
        (_, Expr::Number(y)) if *y == 1.0 => a,
        (Expr::Number(x), Expr::Number(y)) => Expr::Number(x * y),
        _ => Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(a),
            rhs: Box::new(b),
        },
    }
}

fn convert(expr: &Expr) -> Result<Converted, String> {
    match expr {
        Expr::Number(_) | Expr::Ident(_) | Expr::Neg(_) | Expr::Not(_) => {
            Ok(Converted::Scalar(expr.clone()))
        }
        Expr::Call { name, args } => {
            if DIST_FUNCTIONS.contains(&name.as_str()) {
                // Drop a trailing bare `s` argument (the Laplace variable in the
                // DNAmaca syntax).
                let mut args = args.clone();
                if let Some(Expr::Ident(last)) = args.last() {
                    if last == "s" {
                        args.pop();
                    }
                }
                Ok(Converted::Dist {
                    weight: Expr::Number(1.0),
                    dist: DistExpr::Call {
                        name: name.clone(),
                        args,
                    },
                })
            } else {
                Err(format!(
                    "unknown distribution constructor '{name}' (expected one of {DIST_FUNCTIONS:?})"
                ))
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = convert(lhs)?;
            let r = convert(rhs)?;
            match op {
                BinOp::Add => {
                    let mut branches = Vec::new();
                    for part in [l, r] {
                        match part {
                            Converted::Dist { weight, dist } => match dist {
                                DistExpr::Sum(inner) => {
                                    // Distribute the outer weight over an inner sum.
                                    for (w, d) in inner {
                                        branches.push((mul_exprs(weight.clone(), w), d));
                                    }
                                }
                                other => branches.push((weight, other)),
                            },
                            Converted::Scalar(_) => {
                                return Err(
                                    "cannot add a bare number to a distribution in \\sojourntimeLT"
                                        .into(),
                                )
                            }
                        }
                    }
                    Ok(Converted::Dist {
                        weight: Expr::Number(1.0),
                        dist: DistExpr::Sum(branches),
                    })
                }
                BinOp::Mul => match (l, r) {
                    (Converted::Scalar(a), Converted::Scalar(b)) => {
                        Ok(Converted::Scalar(mul_exprs(a, b)))
                    }
                    (Converted::Scalar(a), Converted::Dist { weight, dist })
                    | (Converted::Dist { weight, dist }, Converted::Scalar(a)) => {
                        Ok(Converted::Dist {
                            weight: mul_exprs(a, weight),
                            dist,
                        })
                    }
                    (
                        Converted::Dist {
                            weight: w1,
                            dist: d1,
                        },
                        Converted::Dist {
                            weight: w2,
                            dist: d2,
                        },
                    ) => Ok(Converted::Dist {
                        weight: mul_exprs(w1, w2),
                        dist: DistExpr::Product(vec![d1, d2]),
                    }),
                },
                _ => {
                    // Any other operator only makes sense between scalars.
                    match (l, r) {
                        (Converted::Scalar(_), Converted::Scalar(_)) => {
                            Ok(Converted::Scalar(expr.clone()))
                        }
                        _ => Err(format!(
                            "operator '{op:?}' cannot be applied to distributions in \\sojourntimeLT"
                        )),
                    }
                }
            }
        }
    }
}

/// Converts a parsed arithmetic expression into a distribution expression,
/// interpreting `+` as probabilistic mixture and `*` as scaling / convolution.
pub fn dist_from_expr(expr: &Expr) -> Result<DistExpr, String> {
    match convert(expr)? {
        Converted::Dist { weight, dist } => {
            if weight == Expr::Number(1.0) {
                Ok(dist)
            } else {
                Ok(DistExpr::Sum(vec![(weight, dist)]))
            }
        }
        Converted::Scalar(_) => {
            Err("\\sojourntimeLT must contain at least one distribution call".into())
        }
    }
}

/// Parses a complete model source text into its AST.
pub fn parse(source: &str) -> Result<ModelAst, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut model = ModelAst::default();
    while let Some(kind) = parser.peek().cloned() {
        match kind {
            TokenKind::Keyword(kw) => {
                parser.pos += 1;
                match kw.as_str() {
                    "constant" => {
                        parser.expect(&TokenKind::LBrace)?;
                        let name = parser.expect_ident()?;
                        parser.expect(&TokenKind::RBrace)?;
                        let value = parser.parse_braced_expr()?;
                        model.constants.push((name, value));
                    }
                    "place" => {
                        parser.expect(&TokenKind::LBrace)?;
                        let name = parser.expect_ident()?;
                        parser.expect(&TokenKind::RBrace)?;
                        let value = parser.parse_braced_expr()?;
                        model.places.push((name, value));
                    }
                    "transition" => {
                        let t = parser.parse_transition()?;
                        model.transitions.push(t);
                    }
                    other => {
                        parser.pos -= 1;
                        return Err(parser.error(format!("unknown top-level keyword '\\{other}'")));
                    }
                }
            }
            other => {
                return Err(
                    parser.error(format!("expected a top-level '\\keyword', found '{other}'"))
                )
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_constants_and_places() {
        let model = parse("\\constant{MM}{6} \\constant{RATE}{0.5} \\place{p3}{MM} \\place{p7}{0}")
            .unwrap();
        assert_eq!(model.constants.len(), 2);
        assert_eq!(model.places.len(), 2);
        assert_eq!(model.places[0].0, "p3");
        assert_eq!(model.places[0].1, Expr::Ident("MM".into()));
    }

    #[test]
    fn parses_paper_fig3_transition() {
        let src = r#"
            \constant{MM}{6}
            \place{p3}{0}
            \place{p7}{MM}
            \transition{t5}{
                \condition{p7 > MM-1}
                \action{
                    next->p3 = p3 + MM;
                    next->p7 = p7 - MM;
                }
                \weight{1.0}
                \priority{2}
                \sojourntimeLT{
                    return (0.8 * uniformLT(1.5,10,s)
                          + 0.2 * erlangLT(0.001,5,s));
                }
            }
        "#;
        let model = parse(src).unwrap();
        assert_eq!(model.transitions.len(), 1);
        let t = &model.transitions[0];
        assert_eq!(t.name, "t5");
        assert!(t.condition.is_some());
        assert_eq!(t.action.len(), 2);
        assert_eq!(t.action[0].place, "p3");
        assert_eq!(t.weight, Some(Expr::Number(1.0)));
        assert_eq!(t.priority, Some(Expr::Number(2.0)));
        match t.sojourn.as_ref().unwrap() {
            DistExpr::Sum(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0].0, Expr::Number(0.8));
                match &branches[0].1 {
                    DistExpr::Call { name, args } => {
                        assert_eq!(name, "uniformLT");
                        // The trailing `s` argument is dropped.
                        assert_eq!(args.len(), 2);
                    }
                    other => panic!("expected a call, got {other:?}"),
                }
            }
            other => panic!("expected a mixture, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_in_conditions() {
        let model = parse(
            "\\place{p}{1} \\transition{t}{ \\condition{p + 1 * 2 > 3 && p < 5} \\sojourntimeLT{expLT(1,s)} }",
        )
        .unwrap();
        let cond = model.transitions[0].condition.clone().unwrap();
        // (p + (1*2)) > 3) && (p < 5)
        match cond {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                ..
            } => match *lhs {
                Expr::Binary {
                    op: BinOp::Greater,
                    lhs,
                    ..
                } => match *lhs {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("expected addition, got {other:?}"),
                },
                other => panic!("expected comparison, got {other:?}"),
            },
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn convolution_via_product() {
        let model =
            parse("\\place{p}{1} \\transition{t}{ \\sojourntimeLT{ expLT(1,s) * detLT(2,s) } }")
                .unwrap();
        match model.transitions[0].sojourn.as_ref().unwrap() {
            DistExpr::Product(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected a product, got {other:?}"),
        }
    }

    #[test]
    fn scalar_sojourn_rejected() {
        let err = parse("\\place{p}{1} \\transition{t}{ \\sojourntimeLT{ 3.0 } }").unwrap_err();
        assert!(matches!(err, ParseError::Semantic(_)));
        assert!(err.to_string().contains("distribution"));
    }

    #[test]
    fn unknown_distribution_rejected() {
        let err = parse("\\place{p}{1} \\transition{t}{ \\sojourntimeLT{ paretoLT(1, 2, s) } }")
            .unwrap_err();
        assert!(err.to_string().contains("paretoLT"));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let err = parse("\\jellyfish{x}{1}").unwrap_err();
        assert!(err.to_string().contains("jellyfish"));
    }

    #[test]
    fn unknown_transition_attribute_rejected() {
        let err = parse("\\transition{t}{ \\speed{3} }").unwrap_err();
        assert!(err.to_string().contains("speed"));
    }

    #[test]
    fn action_requires_next_arrow() {
        let err = parse("\\transition{t}{ \\action{ p = 1; } }").unwrap_err();
        assert!(err.to_string().contains("next"));
    }

    #[test]
    fn truncated_input_reports_eof() {
        let err = parse("\\transition{t}{ \\condition{p > ").unwrap_err();
        assert!(
            matches!(err, ParseError::UnexpectedEof { .. }) || err.to_string().contains("expected")
        );
    }

    #[test]
    fn marking_dependent_distribution_arguments() {
        let model =
            parse("\\place{q}{4} \\transition{serve}{ \\sojourntimeLT{ erlangLT(2.0, q, s) } }")
                .unwrap();
        match model.transitions[0].sojourn.as_ref().unwrap() {
            DistExpr::Call { name, args } => {
                assert_eq!(name, "erlangLT");
                assert_eq!(args[1], Expr::Ident("q".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
