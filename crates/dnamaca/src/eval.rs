//! Evaluation of parsed expressions against a marking.
//!
//! Conditions, weights, priorities, initial markings and distribution parameters are
//! all arithmetic expressions over numbers, named constants and place identifiers
//! (which evaluate to the place's current token count).  Booleans are represented as
//! 0.0 / 1.0, matching the permissive style of the original DNAmaca language.

use crate::ast::{BinOp, DistExpr, Expr};
use smp_distributions::Dist;
use smp_smspn::Marking;
use std::collections::HashMap;

/// The evaluation environment: constant values and the place-name → index map.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    constants: HashMap<String, f64>,
    places: HashMap<String, usize>,
}

impl Environment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Defines (or redefines) a constant.
    pub fn define_constant(&mut self, name: impl Into<String>, value: f64) {
        self.constants.insert(name.into(), value);
    }

    /// Registers a place name at the given marking index.
    pub fn define_place(&mut self, name: impl Into<String>, index: usize) {
        self.places.insert(name.into(), index);
    }

    /// Looks up a place index by name.
    pub fn place_index(&self, name: &str) -> Option<usize> {
        self.places.get(name).copied()
    }

    /// Number of registered places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Evaluates an expression against a marking.
    ///
    /// `marking` may be `None` in marking-free contexts (constant definitions and
    /// initial-marking expressions); referencing a place there is an error.
    pub fn eval(&self, expr: &Expr, marking: Option<&Marking>) -> Result<f64, String> {
        match expr {
            Expr::Number(n) => Ok(*n),
            Expr::Ident(name) => {
                if let Some(value) = self.constants.get(name) {
                    return Ok(*value);
                }
                if let Some(&index) = self.places.get(name) {
                    return match marking {
                        Some(m) => Ok(m.get(index) as f64),
                        None => Err(format!(
                            "place '{name}' referenced in a context without a marking"
                        )),
                    };
                }
                Err(format!("unknown identifier '{name}'"))
            }
            Expr::Neg(inner) => Ok(-self.eval(inner, marking)?),
            Expr::Not(inner) => Ok(if self.eval(inner, marking)? != 0.0 {
                0.0
            } else {
                1.0
            }),
            Expr::Call { name, args } => match name.as_str() {
                "min" | "max" => {
                    if args.is_empty() {
                        return Err(format!("{name}() needs at least one argument"));
                    }
                    let mut values = Vec::with_capacity(args.len());
                    for a in args {
                        values.push(self.eval(a, marking)?);
                    }
                    Ok(values
                        .into_iter()
                        .reduce(|a, b| if name == "min" { a.min(b) } else { a.max(b) })
                        .expect("non-empty"))
                }
                other => Err(format!(
                    "function '{other}' is not available in arithmetic expressions"
                )),
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, marking)?;
                let r = self.eval(rhs, marking)?;
                Ok(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => {
                        if r == 0.0 {
                            return Err("division by zero".into());
                        }
                        l / r
                    }
                    BinOp::Greater => bool_to_f64(l > r),
                    BinOp::Less => bool_to_f64(l < r),
                    BinOp::GreaterEq => bool_to_f64(l >= r),
                    BinOp::LessEq => bool_to_f64(l <= r),
                    BinOp::Eq => bool_to_f64(l == r),
                    BinOp::NotEq => bool_to_f64(l != r),
                    BinOp::And => bool_to_f64(l != 0.0 && r != 0.0),
                    BinOp::Or => bool_to_f64(l != 0.0 || r != 0.0),
                })
            }
        }
    }

    /// Evaluates an expression as a boolean.
    pub fn eval_bool(&self, expr: &Expr, marking: Option<&Marking>) -> Result<bool, String> {
        Ok(self.eval(expr, marking)? != 0.0)
    }

    /// Builds a concrete distribution from a distribution expression, evaluating
    /// every parameter against the marking (so distributions can be
    /// marking-dependent).
    pub fn eval_dist(&self, expr: &DistExpr, marking: Option<&Marking>) -> Result<Dist, String> {
        match expr {
            DistExpr::Call { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, marking)?);
                }
                build_primitive(name, &values)
            }
            DistExpr::Sum(branches) => {
                let mut parts = Vec::with_capacity(branches.len());
                for (weight_expr, dist_expr) in branches {
                    let w = self.eval(weight_expr, marking)?;
                    if w < 0.0 {
                        return Err(format!("negative mixture weight {w}"));
                    }
                    parts.push((w, self.eval_dist(dist_expr, marking)?));
                }
                Ok(Dist::mixture(parts))
            }
            DistExpr::Product(factors) => {
                let mut parts = Vec::with_capacity(factors.len());
                for f in factors {
                    parts.push(self.eval_dist(f, marking)?);
                }
                Ok(Dist::convolution(parts))
            }
        }
    }
}

fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Builds a primitive distribution from a constructor name and evaluated arguments.
fn build_primitive(name: &str, args: &[f64]) -> Result<Dist, String> {
    let check = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            ))
        }
    };
    match name {
        "uniformLT" => {
            check(2)?;
            if !(args[0] >= 0.0 && args[1] > args[0]) {
                return Err(format!(
                    "uniformLT requires 0 <= a < b, got ({}, {})",
                    args[0], args[1]
                ));
            }
            Ok(Dist::uniform(args[0], args[1]))
        }
        "erlangLT" => {
            check(2)?;
            let phases = args[1];
            if phases < 1.0 || phases.fract() != 0.0 {
                return Err(format!(
                    "erlangLT phase count must be a positive integer, got {phases}"
                ));
            }
            if args[0] <= 0.0 {
                return Err(format!("erlangLT rate must be positive, got {}", args[0]));
            }
            Ok(Dist::erlang(args[0], phases as u32))
        }
        "expLT" | "exponentialLT" => {
            check(1)?;
            if args[0] <= 0.0 {
                return Err(format!("{name} rate must be positive, got {}", args[0]));
            }
            Ok(Dist::exponential(args[0]))
        }
        "detLT" | "deterministicLT" => {
            check(1)?;
            if args[0] < 0.0 {
                return Err(format!(
                    "{name} delay must be non-negative, got {}",
                    args[0]
                ));
            }
            Ok(Dist::deterministic(args[0]))
        }
        "weibullLT" => {
            check(2)?;
            if args[0] <= 0.0 || args[1] <= 0.0 {
                return Err("weibullLT shape and scale must be positive".into());
            }
            Ok(Dist::weibull(args[0], args[1]))
        }
        "immediateLT" => {
            check(0)?;
            Ok(Dist::immediate())
        }
        other => Err(format!("unknown distribution constructor '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env() -> Environment {
        let mut e = Environment::new();
        e.define_constant("MM", 6.0);
        e.define_place("p3", 0);
        e.define_place("p7", 1);
        e
    }

    fn expr_of(src: &str) -> Expr {
        // Wrap in a condition so the full parser can be reused.
        let model = parse(&format!("\\transition{{t}}{{ \\condition{{{src}}} }}")).unwrap();
        model.transitions[0].condition.clone().unwrap()
    }

    #[test]
    fn arithmetic_and_identifiers() {
        let e = env();
        let m = Marking::new(vec![2, 5]);
        assert_eq!(e.eval(&expr_of("p3 + p7 * 2"), Some(&m)).unwrap(), 12.0);
        assert_eq!(e.eval(&expr_of("MM - 1"), Some(&m)).unwrap(), 5.0);
        assert_eq!(e.eval(&expr_of("(p7 - p3) / 3"), Some(&m)).unwrap(), 1.0);
        assert_eq!(e.eval(&expr_of("-p3"), Some(&m)).unwrap(), -2.0);
        assert_eq!(e.eval(&expr_of("min(p3, p7, 1)"), Some(&m)).unwrap(), 1.0);
        assert_eq!(e.eval(&expr_of("max(p3, p7)"), Some(&m)).unwrap(), 5.0);
    }

    #[test]
    fn comparisons_and_logic() {
        let e = env();
        let m = Marking::new(vec![2, 6]);
        assert!(e.eval_bool(&expr_of("p7 > MM - 1"), Some(&m)).unwrap());
        assert!(!e.eval_bool(&expr_of("p7 < MM"), Some(&m)).unwrap());
        assert!(e
            .eval_bool(&expr_of("p3 == 2 && p7 >= 6"), Some(&m))
            .unwrap());
        assert!(e
            .eval_bool(&expr_of("p3 == 0 || p7 != 0"), Some(&m))
            .unwrap());
        assert!(e.eval_bool(&expr_of("!(p3 == 0)"), Some(&m)).unwrap());
    }

    #[test]
    fn errors_for_unknowns_and_missing_marking() {
        let e = env();
        let m = Marking::new(vec![0, 0]);
        assert!(e.eval(&expr_of("nonexistent"), Some(&m)).is_err());
        assert!(e.eval(&expr_of("p3"), None).is_err());
        assert!(e.eval(&expr_of("1 / 0"), Some(&m)).is_err());
        assert!(e.eval(&expr_of("sqrt(2)"), Some(&m)).is_err());
    }

    #[test]
    fn dist_expression_builds_paper_mixture() {
        let e = env();
        let model = parse(
            "\\transition{t5}{ \\sojourntimeLT{ return (0.8 * uniformLT(1.5,10,s) + 0.2 * erlangLT(0.001,5,s)); } }",
        )
        .unwrap();
        let dist = e
            .eval_dist(model.transitions[0].sojourn.as_ref().unwrap(), None)
            .unwrap();
        let expect = Dist::mixture(vec![
            (0.8, Dist::uniform(1.5, 10.0)),
            (0.2, Dist::erlang(0.001, 5)),
        ]);
        assert_eq!(dist, expect);
    }

    #[test]
    fn marking_dependent_distribution_parameters() {
        let e = env();
        let model = parse("\\transition{t}{ \\sojourntimeLT{ erlangLT(2.0, p7, s) } }").unwrap();
        let sojourn = model.transitions[0].sojourn.as_ref().unwrap();
        let m3 = Marking::new(vec![0, 3]);
        let m1 = Marking::new(vec![0, 1]);
        assert_eq!(
            e.eval_dist(sojourn, Some(&m3)).unwrap(),
            Dist::erlang(2.0, 3)
        );
        assert_eq!(
            e.eval_dist(sojourn, Some(&m1)).unwrap(),
            Dist::erlang(2.0, 1)
        );
        // A non-integer phase count is a semantic error.
        let bad = Marking::new(vec![0, 0]);
        assert!(e.eval_dist(sojourn, Some(&bad)).is_err());
    }

    #[test]
    fn convolution_distribution() {
        let e = env();
        let model =
            parse("\\transition{t}{ \\sojourntimeLT{ expLT(1.0,s) * detLT(2.0,s) } }").unwrap();
        let dist = e
            .eval_dist(model.transitions[0].sojourn.as_ref().unwrap(), None)
            .unwrap();
        assert_eq!(
            dist,
            Dist::convolution(vec![Dist::exponential(1.0), Dist::deterministic(2.0)])
        );
    }

    #[test]
    fn primitive_argument_validation() {
        assert!(build_primitive("uniformLT", &[5.0, 1.0]).is_err());
        assert!(build_primitive("erlangLT", &[1.0, 2.5]).is_err());
        assert!(build_primitive("expLT", &[-1.0]).is_err());
        assert!(build_primitive("detLT", &[-0.1]).is_err());
        assert!(build_primitive("weibullLT", &[0.0, 1.0]).is_err());
        assert!(build_primitive("expLT", &[1.0, 2.0]).is_err());
        assert!(build_primitive("mystery", &[1.0]).is_err());
        assert_eq!(
            build_primitive("immediateLT", &[]).unwrap(),
            Dist::immediate()
        );
        assert_eq!(
            build_primitive("exponentialLT", &[2.0]).unwrap(),
            Dist::exponential(2.0)
        );
        assert_eq!(
            build_primitive("deterministicLT", &[1.5]).unwrap(),
            Dist::deterministic(1.5)
        );
        assert_eq!(
            build_primitive("weibullLT", &[2.0, 3.0]).unwrap(),
            Dist::weibull(2.0, 3.0)
        );
    }
}
