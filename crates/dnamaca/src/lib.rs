//! # smp-dnamaca
//!
//! A parser and evaluator for the extended, semi-Markovian DNAmaca-style model
//! specification language used by the paper (Section 5, Fig. 3).
//!
//! The language describes an SM-SPN textually.  A model is a sequence of top-level
//! declarations:
//!
//! ```text
//! \constant{MM}{6}                  % named integer/float constants
//! \place{p3}{MM}                    % a place and its initial marking
//! \transition{t5}{                  % a transition...
//!    \condition{p7 > MM - 1}        %   ...its enabling condition,
//!    \action{                       %   ...its firing effect,
//!       next->p3 = p3 + MM;
//!       next->p7 = p7 - MM;
//!    }
//!    \weight{1.0}                   %   ...probabilistic-choice weight,
//!    \priority{2}                   %   ...priority,
//!    \sojourntimeLT{                %   ...and firing-time distribution, written as
//!       return (0.8 * uniformLT(1.5,10,s)     % a Laplace-transform expression
//!             + 0.2 * erlangLT(0.001,5,s));   % exactly as in Fig. 3.
//!    }
//! }
//! ```
//!
//! Conditions, actions, weights, priorities and distribution parameters are all
//! *marking-dependent*: they may mention place names (evaluating to the current
//! token count) and constants.  `%` starts a comment that runs to the end of line.
//!
//! The crate is organised as a conventional pipeline:
//! [`lexer`] → [`parser`] (producing the [`ast`]) → [`eval`] (expression evaluation
//! against a marking) → [`build`] (assembling an `smp_smspn::SmSpn` whose closures
//! interpret the parsed expressions).  [`parse_model`] runs the whole pipeline.

#![forbid(unsafe_code)]

pub mod ast;
pub mod build;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::ModelAst;
pub use build::build_net;
pub use parser::{parse, ParseError};

/// Parses a model source text and builds the corresponding SM-SPN.
pub fn parse_model(source: &str) -> Result<smp_smspn::SmSpn, ParseError> {
    let ast = parse(source)?;
    build::build_net(&ast).map_err(ParseError::Semantic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_minimal_model() {
        let src = r#"
            % minimal two-place ping-pong
            \place{left}{1}
            \place{right}{0}
            \transition{go}{
                \condition{left > 0}
                \action{ next->left = left - 1; next->right = right + 1; }
                \weight{1.0}
                \priority{1}
                \sojourntimeLT{ return expLT(2.0, s); }
            }
            \transition{back}{
                \condition{right > 0}
                \action{ next->left = left + 1; next->right = right - 1; }
                \sojourntimeLT{ return uniformLT(0.5, 1.5, s); }
            }
        "#;
        let net = parse_model(src).unwrap();
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 2);
        let space = smp_smspn::StateSpace::explore(&net).unwrap();
        assert_eq!(space.num_states(), 2);
    }

    #[test]
    fn syntax_errors_are_reported_with_position() {
        let err = parse_model("\\place{p}{1} \\transition{t}{").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line"), "error should cite a position: {msg}");
    }
}
