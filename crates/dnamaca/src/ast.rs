//! Abstract syntax tree of the model language.

/// Arithmetic / boolean expressions over numbers, constants and place counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// A named value: either a declared constant or a place (token count).
    Ident(String),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e`.
    Not(Box<Expr>),
    /// A function call, e.g. `uniformLT(1.5, 10, s)`.  Inside `\sojourntimeLT{...}`
    /// blocks these are distribution constructors; in arithmetic contexts only the
    /// built-ins `min` and `max` are accepted.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary operators, in one flat enum (the evaluator treats booleans as 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `>`
    Greater,
    /// `<`
    Less,
    /// `>=`
    GreaterEq,
    /// `<=`
    LessEq,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// One statement of an `\action{...}` block: `next->place = expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Name of the place being assigned.
    pub place: String,
    /// The assigned expression (evaluated against the *current* marking).
    pub value: Expr,
}

/// A firing-time distribution expression (the body of `\sojourntimeLT{...}`).
#[derive(Debug, Clone, PartialEq)]
pub enum DistExpr {
    /// A primitive distribution constructor call, e.g. `uniformLT(1.5, 10, s)`.
    /// The trailing `s` argument of the DNAmaca syntax is accepted and ignored.
    Call {
        /// Function name (`uniformLT`, `erlangLT`, `expLT`, `detLT`, `weibullLT`,
        /// `immediateLT`).
        name: String,
        /// Arguments, each an arithmetic expression (may mention places/constants).
        args: Vec<Expr>,
    },
    /// Weighted sum of distributions: probabilistic mixture.
    Sum(Vec<(Expr, DistExpr)>),
    /// Product of distributions: convolution of independent delays.
    Product(Vec<DistExpr>),
}

/// One `\transition{name}{...}` block.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionAst {
    /// Transition name.
    pub name: String,
    /// `\condition{...}` — enabling condition (defaults to `true`).
    pub condition: Option<Expr>,
    /// `\action{...}` — firing effect as a list of assignments.
    pub action: Vec<Assignment>,
    /// `\weight{...}` — probabilistic-choice weight (defaults to 1).
    pub weight: Option<Expr>,
    /// `\priority{...}` — priority (defaults to 1).
    pub priority: Option<Expr>,
    /// `\sojourntimeLT{...}` — firing-time distribution (defaults to immediate).
    pub sojourn: Option<DistExpr>,
}

/// A complete parsed model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelAst {
    /// Named constants, in declaration order.
    pub constants: Vec<(String, Expr)>,
    /// Places and their initial-marking expressions, in declaration order.
    pub places: Vec<(String, Expr)>,
    /// Transition definitions, in declaration order.
    pub transitions: Vec<TransitionAst>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_construct_and_compare() {
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Ident("p1".into())),
            rhs: Box::new(Expr::Number(1.0)),
        };
        assert_eq!(e, e.clone());
        let d = DistExpr::Sum(vec![(
            Expr::Number(0.8),
            DistExpr::Call {
                name: "uniformLT".into(),
                args: vec![Expr::Number(1.5), Expr::Number(10.0)],
            },
        )]);
        assert_ne!(
            d,
            DistExpr::Product(vec![DistExpr::Call {
                name: "expLT".into(),
                args: vec![Expr::Number(1.0)]
            }])
        );
        let model = ModelAst::default();
        assert!(model.places.is_empty());
    }
}
