//! Assembling an executable SM-SPN from a parsed model.
//!
//! Each parsed transition becomes an `smp_smspn::TransitionSpec` whose guard, action,
//! weight, priority and distribution closures interpret the corresponding AST
//! fragments against the current marking.  Constants and initial markings are
//! evaluated eagerly (they cannot depend on a marking).

use crate::ast::ModelAst;
use crate::eval::Environment;
use smp_smspn::{Marking, SmSpn, TransitionSpec};
use std::sync::Arc;

/// Builds an SM-SPN from a parsed model.
///
/// Returns a descriptive error for semantic problems: duplicate or unknown names,
/// non-integer initial markings, assignments to unknown places, and so on.
pub fn build_net(model: &ModelAst) -> Result<SmSpn, String> {
    let mut env = Environment::new();

    // Constants first (they may reference earlier constants only).
    for (name, expr) in &model.constants {
        let value = env
            .eval(expr, None)
            .map_err(|e| format!("constant '{name}': {e}"))?;
        env.define_constant(name.clone(), value);
    }

    // Places and initial markings.
    if model.places.is_empty() {
        return Err("the model declares no places".into());
    }
    let mut places = Vec::with_capacity(model.places.len());
    for (index, (name, expr)) in model.places.iter().enumerate() {
        if env.place_index(name).is_some() {
            return Err(format!("duplicate place '{name}'"));
        }
        let tokens = env
            .eval(expr, None)
            .map_err(|e| format!("initial marking of '{name}': {e}"))?;
        if tokens < 0.0 || tokens.fract() != 0.0 {
            return Err(format!(
                "initial marking of '{name}' must be a non-negative integer, got {tokens}"
            ));
        }
        env.define_place(name.clone(), index);
        places.push((name.clone(), tokens as u32));
    }

    let env = Arc::new(env);
    let mut net = SmSpn::new(places);

    if model.transitions.is_empty() {
        return Err("the model declares no transitions".into());
    }

    for t in &model.transitions {
        // Validate action targets eagerly so that typos fail at build time, not
        // during state-space exploration.
        for assignment in &t.action {
            if env.place_index(&assignment.place).is_none() {
                return Err(format!(
                    "transition '{}' assigns to unknown place '{}'",
                    t.name, assignment.place
                ));
            }
        }
        // Validate the marking-independent pieces once against the initial marking
        // so that obviously broken expressions are reported early.
        let probe = net.initial_marking().clone();
        if let Some(cond) = &t.condition {
            env.eval_bool(cond, Some(&probe))
                .map_err(|e| format!("transition '{}' condition: {e}", t.name))?;
        }

        let mut spec = TransitionSpec::new(t.name.clone());

        if let Some(cond) = t.condition.clone() {
            let env_c = Arc::clone(&env);
            spec = spec.guard(move |m| {
                env_c
                    .eval_bool(&cond, Some(m))
                    .unwrap_or_else(|e| panic!("condition evaluation failed: {e}"))
            });
        }

        if !t.action.is_empty() {
            let action = t.action.clone();
            let env_c = Arc::clone(&env);
            spec = spec.action(move |m| {
                let mut next = m.clone();
                // All right-hand sides are evaluated against the *current* marking,
                // matching the `next->p = expr;` semantics of the language.
                let mut updates = Vec::with_capacity(action.len());
                for assignment in &action {
                    let value = env_c
                        .eval(&assignment.value, Some(m))
                        .unwrap_or_else(|e| panic!("action evaluation failed: {e}"));
                    assert!(
                        value >= 0.0 && value.fract() == 0.0,
                        "action assigns non-integer or negative token count {value} to '{}'",
                        assignment.place
                    );
                    let index = env_c
                        .place_index(&assignment.place)
                        .expect("validated at build time");
                    updates.push((index, value as u32));
                }
                for (index, value) in updates {
                    next.set(index, value);
                }
                next
            });
        }

        if let Some(weight) = t.weight.clone() {
            let env_c = Arc::clone(&env);
            spec = spec.weight_fn(move |m| {
                env_c
                    .eval(&weight, Some(m))
                    .unwrap_or_else(|e| panic!("weight evaluation failed: {e}"))
            });
        }

        if let Some(priority) = t.priority.clone() {
            let env_c = Arc::clone(&env);
            spec = spec.priority_fn(move |m| {
                let value = env_c
                    .eval(&priority, Some(m))
                    .unwrap_or_else(|e| panic!("priority evaluation failed: {e}"));
                assert!(
                    value >= 0.0 && value.fract() == 0.0,
                    "priority must be a non-negative integer, got {value}"
                );
                value as u32
            });
        }

        if let Some(sojourn) = t.sojourn.clone() {
            let env_c = Arc::clone(&env);
            spec = spec.distribution_fn(move |m: &Marking| {
                env_c
                    .eval_dist(&sojourn, Some(m))
                    .unwrap_or_else(|e| panic!("sojourn-time evaluation failed: {e}"))
            });
        }

        net.add_transition(spec);
    }

    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use smp_distributions::Dist;
    use smp_smspn::StateSpace;

    fn build(src: &str) -> Result<SmSpn, String> {
        build_net(&parse(src).expect("parse"))
    }

    #[test]
    fn constants_feed_initial_markings() {
        let net = build("\\constant{N}{3} \\place{p}{N + 1} \\place{q}{0} \\transition{t}{ \\condition{p > 0} \\action{ next->p = p - 1; next->q = q + 1; } \\sojourntimeLT{expLT(1,s)} } \\transition{back}{ \\condition{q > 0} \\action{ next->p = p + 1; next->q = q - 1; } \\sojourntimeLT{expLT(1,s)} }").unwrap();
        assert_eq!(net.initial_marking().as_slice(), &[4, 0]);
        let space = StateSpace::explore(&net).unwrap();
        assert_eq!(space.num_states(), 5);
    }

    #[test]
    fn full_voting_style_transition_round_trips() {
        let src = r#"
            \constant{MM}{2}
            \place{p3}{0}
            \place{p7}{MM}
            \transition{t5}{
                \condition{p7 > MM - 1}
                \action{ next->p3 = p3 + MM; next->p7 = p7 - MM; }
                \weight{1.0}
                \priority{2}
                \sojourntimeLT{ return (0.8*uniformLT(1.5,10,s) + 0.2*erlangLT(0.001,5,s)); }
            }
            \transition{fail}{
                \condition{p3 > 0}
                \action{ next->p3 = p3 - 1; next->p7 = p7 + 1; }
                \sojourntimeLT{ expLT(0.1, s) }
            }
        "#;
        let net = build(src).unwrap();
        let space = StateSpace::explore(&net).unwrap();
        // States: p7 = 0, 1, 2 (p3 = MM - p7).
        assert_eq!(space.num_states(), 3);
        let smp = space.smp();
        // In the all-failed state only t5 is enabled (priority 2) and it carries the
        // Fig. 3 mixture.
        let all_failed = space
            .states_where(|m| m.get(1) == 2)
            .into_iter()
            .next()
            .unwrap();
        let out = smp.transitions(all_failed);
        assert_eq!(out.len(), 1);
        assert_eq!(
            smp.distribution(out[0].dist),
            &Dist::mixture(vec![
                (0.8, Dist::uniform(1.5, 10.0)),
                (0.2, Dist::erlang(0.001, 5)),
            ])
        );
    }

    #[test]
    fn duplicate_place_rejected() {
        let err =
            build("\\place{p}{1} \\place{p}{2} \\transition{t}{ \\sojourntimeLT{expLT(1,s)} }")
                .unwrap_err();
        assert!(err.contains("duplicate place"));
    }

    #[test]
    fn unknown_place_in_action_rejected() {
        let err = build(
            "\\place{p}{1} \\transition{t}{ \\action{ next->zzz = 1; } \\sojourntimeLT{expLT(1,s)} }",
        )
        .unwrap_err();
        assert!(err.contains("unknown place 'zzz'"));
    }

    #[test]
    fn fractional_initial_marking_rejected() {
        let err =
            build("\\place{p}{0.5} \\transition{t}{ \\sojourntimeLT{expLT(1,s)} }").unwrap_err();
        assert!(err.contains("non-negative integer"));
    }

    #[test]
    fn empty_models_rejected() {
        assert!(build("\\constant{X}{1}").unwrap_err().contains("no places"));
        assert!(build("\\place{p}{1}")
            .unwrap_err()
            .contains("no transitions"));
    }

    #[test]
    fn bad_condition_reported_at_build_time() {
        let err = build(
            "\\place{p}{1} \\transition{t}{ \\condition{ghost > 0} \\sojourntimeLT{expLT(1,s)} }",
        )
        .unwrap_err();
        assert!(err.contains("ghost"));
    }

    #[test]
    fn weights_and_priorities_are_marking_dependent() {
        let src = r#"
            \place{tokens}{2}
            \place{a}{0}
            \place{b}{0}
            \transition{to_a}{
                \condition{tokens > 0}
                \action{ next->tokens = tokens - 1; next->a = a + 1; }
                \weight{tokens}
                \sojourntimeLT{expLT(1,s)}
            }
            \transition{to_b}{
                \condition{tokens > 0}
                \action{ next->tokens = tokens - 1; next->b = b + 1; }
                \weight{1}
                \sojourntimeLT{expLT(1,s)}
            }
            \transition{reset}{
                \condition{tokens == 0}
                \action{ next->tokens = 2; next->a = 0; next->b = 0; }
                \sojourntimeLT{detLT(1, s)}
            }
        "#;
        let net = build(src).unwrap();
        let space = StateSpace::explore(&net).unwrap();
        let smp = space.smp();
        // In the initial state tokens = 2, so P(to_a) = 2/3.
        let initial = space.initial_state();
        let to_a_prob = smp
            .transitions(initial)
            .iter()
            .map(|t| t.probability)
            .fold(0.0f64, f64::max);
        assert!((to_a_prob - 2.0 / 3.0).abs() < 1e-12);
    }
}
