//! The SM-SPN structure: places and marking-dependent transitions.
//!
//! Formally an SM-SPN is a 4-tuple `(PN, P, W, D)` (Section 5.1 of the paper) where
//! `PN` is an ordinary place-transition net and `P`, `W`, `D` attach a
//! marking-dependent priority, weight and firing-time distribution to every
//! transition.  [`TransitionSpec`] captures one transition; the enabling condition
//! and firing effect can be given either through classic input/output arcs or through
//! arbitrary guard/action closures — the latter is what the DNAmaca-style
//! `\condition{...}` / `\action{...}` blocks compile into.

use crate::marking::Marking;
use smp_distributions::Dist;
use std::fmt;
use std::sync::Arc;

/// A marking-dependent value.
pub type MarkingFn<T> = Arc<dyn Fn(&Marking) -> T + Send + Sync>;

/// One transition of an SM-SPN.
#[derive(Clone)]
pub struct TransitionSpec {
    name: String,
    /// Tokens consumed from each place (the backward incidence function `I⁻`).
    consume: Vec<(usize, u32)>,
    /// Tokens produced into each place (the forward incidence function `I⁺`).
    produce: Vec<(usize, u32)>,
    /// Extra enabling condition evaluated on top of the arc requirements.
    guard: Option<MarkingFn<bool>>,
    /// Optional replacement firing effect; when present it overrides the arc-based
    /// consume/produce effect entirely (used by DNAmaca `\action` blocks that assign
    /// arbitrary expressions to places).
    action: Option<MarkingFn<Marking>>,
    priority: MarkingFn<u32>,
    weight: MarkingFn<f64>,
    distribution: MarkingFn<Dist>,
}

impl fmt::Debug for TransitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionSpec")
            .field("name", &self.name)
            .field("consume", &self.consume)
            .field("produce", &self.produce)
            .field("has_guard", &self.guard.is_some())
            .field("has_action", &self.action.is_some())
            .finish()
    }
}

impl TransitionSpec {
    /// Starts building a transition with the given name.  Defaults: no arcs, no
    /// guard, priority 1, weight 1.0, and an immediate (zero-delay) distribution —
    /// every builder method overrides one piece.
    pub fn new(name: impl Into<String>) -> Self {
        TransitionSpec {
            name: name.into(),
            consume: Vec::new(),
            produce: Vec::new(),
            guard: None,
            action: None,
            priority: Arc::new(|_| 1),
            weight: Arc::new(|_| 1.0),
            distribution: Arc::new(|_| Dist::immediate()),
        }
    }

    /// Adds an input arc: the transition consumes `count` tokens from `place`.
    pub fn consumes(mut self, place: usize, count: u32) -> Self {
        self.consume.push((place, count));
        self
    }

    /// Adds an output arc: the transition produces `count` tokens into `place`.
    pub fn produces(mut self, place: usize, count: u32) -> Self {
        self.produce.push((place, count));
        self
    }

    /// Sets an additional marking-dependent enabling condition.
    pub fn guard(mut self, guard: impl Fn(&Marking) -> bool + Send + Sync + 'static) -> Self {
        self.guard = Some(Arc::new(guard));
        self
    }

    /// Replaces the arc-based firing effect with an arbitrary marking transformer.
    pub fn action(mut self, action: impl Fn(&Marking) -> Marking + Send + Sync + 'static) -> Self {
        self.action = Some(Arc::new(action));
        self
    }

    /// Sets a constant priority.
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = Arc::new(move |_| priority);
        self
    }

    /// Sets a marking-dependent priority.
    pub fn priority_fn(mut self, f: impl Fn(&Marking) -> u32 + Send + Sync + 'static) -> Self {
        self.priority = Arc::new(f);
        self
    }

    /// Sets a constant weight.
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        self.weight = Arc::new(move |_| weight);
        self
    }

    /// Sets a marking-dependent weight.
    pub fn weight_fn(mut self, f: impl Fn(&Marking) -> f64 + Send + Sync + 'static) -> Self {
        self.weight = Arc::new(f);
        self
    }

    /// Sets a constant firing-time distribution.
    pub fn distribution(mut self, dist: Dist) -> Self {
        self.distribution = Arc::new(move |_| dist.clone());
        self
    }

    /// Sets a marking-dependent firing-time distribution (the paper's
    /// `\sojourntimeLT{...}` pragma with marking-dependent parameters).
    pub fn distribution_fn(mut self, f: impl Fn(&Marking) -> Dist + Send + Sync + 'static) -> Self {
        self.distribution = Arc::new(f);
        self
    }

    /// The transition's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when the transition is *net-enabled* in `m`: all input arcs are covered
    /// and the guard (if any) holds.
    pub fn is_net_enabled(&self, m: &Marking) -> bool {
        for &(place, count) in &self.consume {
            if !m.has_at_least(place, count) {
                return false;
            }
        }
        match &self.guard {
            Some(g) => g(m),
            None => true,
        }
    }

    /// The marking reached by firing the transition in `m`.
    ///
    /// # Panics
    /// Panics when fired in a marking where it is not enabled (token underflow).
    pub fn fire(&self, m: &Marking) -> Marking {
        if let Some(action) = &self.action {
            return action(m);
        }
        let mut next = m.clone();
        for &(place, count) in &self.consume {
            next.remove(place, count);
        }
        for &(place, count) in &self.produce {
            next.add(place, count);
        }
        next
    }

    /// The transition's priority in `m`.
    pub fn priority_in(&self, m: &Marking) -> u32 {
        (self.priority)(m)
    }

    /// The transition's weight in `m`.
    pub fn weight_in(&self, m: &Marking) -> f64 {
        (self.weight)(m)
    }

    /// The transition's firing-time distribution in `m`.
    pub fn distribution_in(&self, m: &Marking) -> Dist {
        (self.distribution)(m)
    }
}

/// A complete semi-Markov stochastic Petri net.
#[derive(Debug, Clone)]
pub struct SmSpn {
    place_names: Vec<String>,
    initial_marking: Marking,
    transitions: Vec<TransitionSpec>,
}

impl SmSpn {
    /// Creates a net with the given places (name, initial tokens).
    pub fn new(places: Vec<(String, u32)>) -> Self {
        let initial = Marking::new(places.iter().map(|(_, t)| *t).collect());
        SmSpn {
            place_names: places.into_iter().map(|(n, _)| n).collect(),
            initial_marking: initial,
            transitions: Vec::new(),
        }
    }

    /// Convenience constructor from `&str` place names.
    pub fn with_places(places: &[(&str, u32)]) -> Self {
        SmSpn::new(places.iter().map(|(n, t)| (n.to_string(), *t)).collect())
    }

    /// Adds a transition to the net.
    pub fn add_transition(&mut self, spec: TransitionSpec) {
        self.transitions.push(spec);
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The place names, in index order.
    pub fn place_names(&self) -> &[String] {
        &self.place_names
    }

    /// Looks up a place index by name.
    pub fn place_index(&self, name: &str) -> Option<usize> {
        self.place_names.iter().position(|n| n == name)
    }

    /// The initial marking `M₀`.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial_marking
    }

    /// Overrides the initial marking (used when exploring from a non-default start).
    pub fn set_initial_marking(&mut self, marking: Marking) {
        assert_eq!(marking.len(), self.num_places(), "marking size mismatch");
        self.initial_marking = marking;
    }

    /// The transitions of the net.
    pub fn transitions(&self) -> &[TransitionSpec] {
        &self.transitions
    }

    /// Looks up a transition index by name.
    pub fn transition_index(&self, name: &str) -> Option<usize> {
        self.transitions.iter().position(|t| t.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> SmSpn {
        // p0 --t0--> p1 --t1--> p0 (a token ping-pong)
        let mut net = SmSpn::with_places(&[("p0", 1), ("p1", 0)]);
        net.add_transition(
            TransitionSpec::new("t0")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("t1")
                .consumes(1, 1)
                .produces(0, 1)
                .distribution(Dist::uniform(0.5, 1.5)),
        );
        net
    }

    #[test]
    fn net_structure_accessors() {
        let net = simple_net();
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 2);
        assert_eq!(net.place_index("p1"), Some(1));
        assert_eq!(net.place_index("nope"), None);
        assert_eq!(net.transition_index("t1"), Some(1));
        assert_eq!(net.initial_marking().as_slice(), &[1, 0]);
        assert_eq!(net.place_names(), &["p0".to_string(), "p1".to_string()]);
    }

    #[test]
    fn arc_based_enabling_and_firing() {
        let net = simple_net();
        let m0 = net.initial_marking().clone();
        let t0 = &net.transitions()[0];
        let t1 = &net.transitions()[1];
        assert!(t0.is_net_enabled(&m0));
        assert!(!t1.is_net_enabled(&m0));
        let m1 = t0.fire(&m0);
        assert_eq!(m1.as_slice(), &[0, 1]);
        assert!(t1.is_net_enabled(&m1));
        assert_eq!(t1.fire(&m1).as_slice(), &[1, 0]);
    }

    #[test]
    fn guard_restricts_enabling() {
        let mut net = SmSpn::with_places(&[("p", 5)]);
        net.add_transition(
            TransitionSpec::new("drain")
                .consumes(0, 1)
                .guard(|m| m.get(0) > 3)
                .distribution(Dist::exponential(1.0)),
        );
        let t = &net.transitions()[0];
        assert!(t.is_net_enabled(&Marking::new(vec![5])));
        assert!(!t.is_net_enabled(&Marking::new(vec![3])));
        // Arc requirement still applies even if the guard would pass.
        let mut net2 = SmSpn::with_places(&[("p", 0)]);
        net2.add_transition(TransitionSpec::new("x").consumes(0, 1).guard(|_| true));
        assert!(!net2.transitions()[0].is_net_enabled(&Marking::new(vec![0])));
    }

    #[test]
    fn action_overrides_arcs() {
        let mut net = SmSpn::with_places(&[("p3", 0), ("p7", 6)]);
        // Mirrors the paper's t5: move MM tokens from p7 back to p3 in one firing.
        const MM: u32 = 6;
        net.add_transition(
            TransitionSpec::new("t5")
                .guard(|m| m.get(1) > MM - 1)
                .action(|m| {
                    let mut next = m.clone();
                    next.set(0, m.get(0) + MM);
                    next.set(1, m.get(1) - MM);
                    next
                })
                .weight(1.0)
                .priority(2)
                .distribution(Dist::mixture(vec![
                    (0.8, Dist::uniform(1.5, 10.0)),
                    (0.2, Dist::erlang(0.001, 5)),
                ])),
        );
        let t5 = &net.transitions()[0];
        let m = net.initial_marking().clone();
        assert!(t5.is_net_enabled(&m));
        let next = t5.fire(&m);
        assert_eq!(next.as_slice(), &[6, 0]);
        assert!(!t5.is_net_enabled(&next));
        assert_eq!(t5.priority_in(&m), 2);
        assert_eq!(t5.weight_in(&m), 1.0);
    }

    #[test]
    fn marking_dependent_weight_and_distribution() {
        let mut net = SmSpn::with_places(&[("queue", 4)]);
        net.add_transition(
            TransitionSpec::new("serve")
                .consumes(0, 1)
                .weight_fn(|m| m.get(0) as f64)
                .priority_fn(|m| if m.get(0) > 2 { 5 } else { 1 })
                .distribution_fn(|m| Dist::erlang(1.0, m.get(0).max(1))),
        );
        let t = &net.transitions()[0];
        let m = Marking::new(vec![4]);
        assert_eq!(t.weight_in(&m), 4.0);
        assert_eq!(t.priority_in(&m), 5);
        assert_eq!(t.distribution_in(&m), Dist::erlang(1.0, 4));
        let low = Marking::new(vec![1]);
        assert_eq!(t.priority_in(&low), 1);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        TransitionSpec::new("bad").weight(0.0);
    }

    #[test]
    fn set_initial_marking_checks_size() {
        let mut net = simple_net();
        net.set_initial_marking(Marking::new(vec![0, 1]));
        assert_eq!(net.initial_marking().as_slice(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "marking size mismatch")]
    fn set_initial_marking_rejects_wrong_size() {
        let mut net = simple_net();
        net.set_initial_marking(Marking::new(vec![1]));
    }

    #[test]
    fn debug_formatting_mentions_name() {
        let t = TransitionSpec::new("fire").consumes(0, 1).guard(|_| true);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("fire") && dbg.contains("has_guard"));
    }
}
