//! Reachability analysis: from an SM-SPN to its underlying semi-Markov process.
//!
//! A breadth-first exploration from the initial marking enumerates every reachable
//! marking.  Because the SM-SPN's firing rule resolves choice by weight (not by a
//! race of firing-time samples), each explored marking contributes one SMP state
//! whose outgoing kernel entries are `(probability = normalised weight, holding-time
//! distribution = the firing transition's distribution in that marking)` — the
//! direct mapping onto a semi-Markov chain the paper relies on.

use crate::enabling::firing_probabilities;
use crate::marking::Marking;
use crate::net::SmSpn;
use smp_core::{SemiMarkovProcess, SmpBuilder, SmpError};
use std::collections::{HashMap, VecDeque};

/// Options controlling the state-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct ReachabilityOptions {
    /// Hard cap on the number of markings explored; exceeded ⇒ error (guards
    /// against accidentally exploding models).
    pub max_states: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: 5_000_000,
        }
    }
}

/// Errors produced by state-space generation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReachabilityError {
    /// The exploration exceeded [`ReachabilityOptions::max_states`].
    StateSpaceTooLarge {
        /// The configured limit.
        limit: usize,
    },
    /// A reachable marking enables no transition at all (the SMP would deadlock).
    DeadlockMarking {
        /// The deadlocked marking (token counts).
        marking: Vec<u32>,
    },
    /// Converting the reachability graph into an SMP failed.
    Smp(SmpError),
}

impl std::fmt::Display for ReachabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachabilityError::StateSpaceTooLarge { limit } => {
                write!(
                    f,
                    "state space exceeds the configured limit of {limit} markings"
                )
            }
            ReachabilityError::DeadlockMarking { marking } => {
                write!(
                    f,
                    "reachable marking {marking:?} enables no transition (deadlock)"
                )
            }
            ReachabilityError::Smp(e) => write!(f, "SMP construction failed: {e}"),
        }
    }
}

impl std::error::Error for ReachabilityError {}

impl From<SmpError> for ReachabilityError {
    fn from(e: SmpError) -> Self {
        ReachabilityError::Smp(e)
    }
}

/// One edge of the reachability graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source state index.
    pub from: usize,
    /// Destination state index.
    pub to: usize,
    /// Firing probability (normalised weight).
    pub probability: f64,
    /// Index of the transition that fired.
    pub transition: usize,
}

/// The explored state space of an SM-SPN.
#[derive(Debug)]
pub struct StateSpace {
    markings: Vec<Marking>,
    index: HashMap<Marking, usize>,
    edges: Vec<Edge>,
    place_names: Vec<String>,
    smp: SemiMarkovProcess,
}

impl StateSpace {
    /// Explores the net from its initial marking and builds the underlying SMP.
    pub fn explore(net: &SmSpn) -> Result<Self, ReachabilityError> {
        Self::explore_with(net, &ReachabilityOptions::default())
    }

    /// Explores with explicit options.
    pub fn explore_with(
        net: &SmSpn,
        options: &ReachabilityOptions,
    ) -> Result<Self, ReachabilityError> {
        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut edges: Vec<Edge> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let m0 = net.initial_marking().clone();
        index.insert(m0.clone(), 0);
        markings.push(m0);
        queue.push_back(0);

        // Per-state transition records for the SMP: (from, to, prob, transition idx).
        // Built in one pass; the SmpBuilder is filled afterwards so that the
        // distribution pool can be interned per (transition, marking) pair.
        while let Some(current) = queue.pop_front() {
            let marking = markings[current].clone();
            let firings = firing_probabilities(net, &marking);
            if firings.is_empty() {
                return Err(ReachabilityError::DeadlockMarking {
                    marking: marking.as_slice().to_vec(),
                });
            }
            for (transition_idx, probability) in firings {
                let next_marking = net.transitions()[transition_idx].fire(&marking);
                let next_index = match index.get(&next_marking) {
                    Some(&i) => i,
                    None => {
                        let i = markings.len();
                        if i >= options.max_states {
                            return Err(ReachabilityError::StateSpaceTooLarge {
                                limit: options.max_states,
                            });
                        }
                        index.insert(next_marking.clone(), i);
                        markings.push(next_marking);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push(Edge {
                    from: current,
                    to: next_index,
                    probability,
                    transition: transition_idx,
                });
            }
        }

        // Assemble the SMP: the holding-time distribution of an edge is the firing
        // transition's distribution evaluated in the *source* marking.
        let mut builder = SmpBuilder::new(markings.len());
        for edge in &edges {
            let dist = net.transitions()[edge.transition].distribution_in(&markings[edge.from]);
            builder.add_transition(edge.from, edge.to, edge.probability, dist);
        }
        let smp = builder.build()?;

        Ok(StateSpace {
            markings,
            index,
            edges,
            place_names: net.place_names().to_vec(),
            smp,
        })
    }

    /// Number of reachable markings (= SMP states).
    pub fn num_states(&self) -> usize {
        self.markings.len()
    }

    /// Number of reachability-graph edges (= SMP kernel entries before merging).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The marking of a state index.
    pub fn marking(&self, state: usize) -> &Marking {
        &self.markings[state]
    }

    /// The state index of a marking, if reachable.
    pub fn state_of(&self, marking: &Marking) -> Option<usize> {
        self.index.get(marking).copied()
    }

    /// The index of the initial marking (always 0).
    pub fn initial_state(&self) -> usize {
        0
    }

    /// The edges of the reachability graph.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The place names of the originating net (indices match marking positions).
    pub fn place_names(&self) -> &[String] {
        &self.place_names
    }

    /// The underlying semi-Markov process.
    pub fn smp(&self) -> &SemiMarkovProcess {
        &self.smp
    }

    /// All state indices whose marking satisfies a predicate — the way experiment
    /// harnesses express target sets such as "all polling units failed".
    pub fn states_where(&self, mut predicate: impl FnMut(&Marking) -> bool) -> Vec<usize> {
        self.markings
            .iter()
            .enumerate()
            .filter(|(_, m)| predicate(m))
            .map(|(i, _)| i)
            .collect()
    }

    /// Token count of a named place in a state's marking (`None` if the place does
    /// not exist).
    pub fn tokens_in(&self, state: usize, place_name: &str) -> Option<u32> {
        let place = self.place_names.iter().position(|n| n == place_name)?;
        Some(self.markings[state].get(place))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TransitionSpec;
    use smp_distributions::Dist;

    fn ping_pong() -> SmSpn {
        let mut net = SmSpn::with_places(&[("p0", 1), ("p1", 0)]);
        net.add_transition(
            TransitionSpec::new("go")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::exponential(2.0)),
        );
        net.add_transition(
            TransitionSpec::new("back")
                .consumes(1, 1)
                .produces(0, 1)
                .distribution(Dist::uniform(0.0, 1.0)),
        );
        net
    }

    #[test]
    fn ping_pong_has_two_states() {
        let space = StateSpace::explore(&ping_pong()).unwrap();
        assert_eq!(space.num_states(), 2);
        assert_eq!(space.num_edges(), 2);
        assert_eq!(space.initial_state(), 0);
        assert_eq!(space.marking(0).as_slice(), &[1, 0]);
        assert_eq!(space.marking(1).as_slice(), &[0, 1]);
        assert_eq!(space.state_of(&Marking::new(vec![0, 1])), Some(1));
        assert_eq!(space.state_of(&Marking::new(vec![2, 0])), None);
        assert_eq!(space.tokens_in(1, "p1"), Some(1));
        assert_eq!(space.tokens_in(1, "zzz"), None);
    }

    #[test]
    fn smp_kernel_reflects_weights_and_distributions() {
        // One token, two competing transitions with weights 1 and 3.
        let mut net = SmSpn::with_places(&[("src", 1), ("a", 0), ("b", 0)]);
        net.add_transition(
            TransitionSpec::new("to_a")
                .consumes(0, 1)
                .produces(1, 1)
                .weight(1.0)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("to_b")
                .consumes(0, 1)
                .produces(2, 1)
                .weight(3.0)
                .distribution(Dist::deterministic(2.0)),
        );
        net.add_transition(
            TransitionSpec::new("reset_a")
                .consumes(1, 1)
                .produces(0, 1)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("reset_b")
                .consumes(2, 1)
                .produces(0, 1)
                .distribution(Dist::exponential(1.0)),
        );
        let space = StateSpace::explore(&net).unwrap();
        assert_eq!(space.num_states(), 3);
        let smp = space.smp();
        let from0 = smp.transitions(0);
        assert_eq!(from0.len(), 2);
        let a_state = space.state_of(&Marking::new(vec![0, 1, 0])).unwrap();
        let b_state = space.state_of(&Marking::new(vec![0, 0, 1])).unwrap();
        for tr in from0 {
            if tr.target == a_state {
                assert!((tr.probability - 0.25).abs() < 1e-12);
                assert_eq!(smp.distribution(tr.dist), &Dist::exponential(1.0));
            } else {
                assert_eq!(tr.target, b_state);
                assert!((tr.probability - 0.75).abs() < 1e-12);
                assert_eq!(smp.distribution(tr.dist), &Dist::deterministic(2.0));
            }
        }
    }

    #[test]
    fn marking_dependent_distribution_varies_by_state() {
        // Tokens drain one at a time; the firing distribution depends on the count.
        let mut net = SmSpn::with_places(&[("tokens", 3), ("done", 0)]);
        net.add_transition(
            TransitionSpec::new("drain")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution_fn(|m| Dist::erlang(1.0, m.get(0))),
        );
        net.add_transition(
            TransitionSpec::new("refill")
                .guard(|m| m.get(0) == 0)
                .action(|m| {
                    let mut next = m.clone();
                    next.set(0, 3);
                    next.set(1, 0);
                    next
                })
                .distribution(Dist::exponential(5.0)),
        );
        let space = StateSpace::explore(&net).unwrap();
        assert_eq!(space.num_states(), 4);
        let smp = space.smp();
        // State with 3 tokens uses Erlang-3, with 1 token Erlang-1.
        let s3 = space.state_of(&Marking::new(vec![3, 0])).unwrap();
        let s1 = space.state_of(&Marking::new(vec![1, 2])).unwrap();
        assert_eq!(
            smp.distribution(smp.transitions(s3)[0].dist),
            &Dist::erlang(1.0, 3)
        );
        assert_eq!(
            smp.distribution(smp.transitions(s1)[0].dist),
            &Dist::erlang(1.0, 1)
        );
    }

    #[test]
    fn tandem_counts_match_closed_form() {
        // K tokens circulating through 3 places: number of markings is C(K+2, 2).
        let k = 4u32;
        let mut net = SmSpn::with_places(&[("a", k), ("b", 0), ("c", 0)]);
        for (name, from, to) in [("ab", 0usize, 1usize), ("bc", 1, 2), ("ca", 2, 0)] {
            net.add_transition(
                TransitionSpec::new(name)
                    .consumes(from, 1)
                    .produces(to, 1)
                    .distribution(Dist::exponential(1.0)),
            );
        }
        let space = StateSpace::explore(&net).unwrap();
        let expect = (k + 2) * (k + 1) / 2;
        assert_eq!(space.num_states(), expect as usize);
        // Every state has between 1 and 3 outgoing edges and the SMP is well formed.
        for s in 0..space.num_states() {
            let d = space.smp().transitions(s).len();
            assert!((1..=3).contains(&d));
        }
    }

    #[test]
    fn states_where_selects_by_predicate() {
        let space = StateSpace::explore(&ping_pong()).unwrap();
        let with_token_in_p1 = space.states_where(|m| m.get(1) > 0);
        assert_eq!(with_token_in_p1, vec![1]);
    }

    #[test]
    fn deadlock_marking_detected() {
        let mut net = SmSpn::with_places(&[("p", 1), ("sink", 0)]);
        net.add_transition(
            TransitionSpec::new("once")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::exponential(1.0)),
        );
        let err = StateSpace::explore(&net).unwrap_err();
        assert!(matches!(err, ReachabilityError::DeadlockMarking { .. }));
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn state_space_limit_enforced() {
        // An unbounded counter: exploring must stop at the limit.
        let mut net = SmSpn::with_places(&[("p", 0)]);
        net.add_transition(
            TransitionSpec::new("grow")
                .produces(0, 1)
                .distribution(Dist::exponential(1.0)),
        );
        let err =
            StateSpace::explore_with(&net, &ReachabilityOptions { max_states: 100 }).unwrap_err();
        assert!(matches!(
            err,
            ReachabilityError::StateSpaceTooLarge { limit: 100 }
        ));
    }

    #[test]
    fn priorities_prune_the_state_space() {
        // A high-priority "repair" transition masks degradation whenever any unit is
        // failed, so the fully-failed marking is never reached.
        let mut net = SmSpn::with_places(&[("ok", 1), ("failed", 1)]);
        net.add_transition(
            TransitionSpec::new("degrade")
                .consumes(0, 1)
                .produces(1, 1)
                .priority(1)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("repair")
                .consumes(1, 1)
                .produces(0, 1)
                .priority(2)
                .distribution(Dist::deterministic(1.0)),
        );
        let space = StateSpace::explore(&net).unwrap();
        // In (1,1) only "repair" may fire (priority 2), so the fully-degraded
        // marking (0,2) — reachable only through the masked "degrade" — never
        // appears, while (2,0) does.
        assert_eq!(space.num_states(), 2);
        assert!(space.state_of(&Marking::new(vec![0, 2])).is_none());
        assert!(space.state_of(&Marking::new(vec![2, 0])).is_some());
    }
}
