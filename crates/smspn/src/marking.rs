//! Markings: token counts over the places of a net.

use std::fmt;
use std::ops::Index;

/// A marking assigns a token count to every place of the net.
///
/// Markings are the states of the reachability graph; they are hashed and compared
/// billions of times during state-space generation, so the representation is a plain
/// boxed slice of `u32` token counts (the paper's voting model never exceeds a few
/// hundred tokens on a place).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    tokens: Box<[u32]>,
}

impl Marking {
    /// Creates a marking from explicit token counts.
    pub fn new(tokens: Vec<u32>) -> Self {
        Marking {
            tokens: tokens.into_boxed_slice(),
        }
    }

    /// A marking of `places` places, all empty.
    pub fn empty(places: usize) -> Self {
        Marking {
            tokens: vec![0; places].into_boxed_slice(),
        }
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the net has no places (degenerate).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Token count of place `p`.
    #[inline]
    pub fn get(&self, p: usize) -> u32 {
        self.tokens[p]
    }

    /// Sets the token count of place `p` (used by firing actions).
    #[inline]
    pub fn set(&mut self, p: usize, value: u32) {
        self.tokens[p] = value;
    }

    /// Adds tokens to place `p`.
    #[inline]
    pub fn add(&mut self, p: usize, count: u32) {
        self.tokens[p] += count;
    }

    /// Removes tokens from place `p`.
    ///
    /// # Panics
    /// Panics if the place holds fewer than `count` tokens — a firing action that
    /// tries to remove missing tokens indicates an enabling-condition bug.
    #[inline]
    pub fn remove(&mut self, p: usize, count: u32) {
        assert!(
            self.tokens[p] >= count,
            "cannot remove {count} tokens from place {p} holding {}",
            self.tokens[p]
        );
        self.tokens[p] -= count;
    }

    /// Total number of tokens in the marking.
    pub fn total_tokens(&self) -> u32 {
        self.tokens.iter().sum()
    }

    /// The underlying token counts.
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }

    /// True when place `p` holds at least `count` tokens.
    #[inline]
    pub fn has_at_least(&self, p: usize, count: u32) -> bool {
        self.tokens[p] >= count
    }
}

impl Index<usize> for Marking {
    type Output = u32;
    fn index(&self, index: usize) -> &u32 {
        &self.tokens[index]
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u32>> for Marking {
    fn from(tokens: Vec<u32>) -> Self {
        Marking::new(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_access() {
        let m = Marking::new(vec![3, 0, 7]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0), 3);
        assert_eq!(m[2], 7);
        assert_eq!(m.total_tokens(), 10);
        assert!(m.has_at_least(0, 3));
        assert!(!m.has_at_least(1, 1));
        assert_eq!(m.as_slice(), &[3, 0, 7]);
        assert!(!m.is_empty());
        assert_eq!(Marking::empty(2).total_tokens(), 0);
    }

    #[test]
    fn mutation() {
        let mut m = Marking::new(vec![2, 1]);
        m.add(1, 3);
        m.remove(0, 2);
        m.set(0, 5);
        assert_eq!(m.as_slice(), &[5, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn remove_too_many_panics() {
        let mut m = Marking::new(vec![1]);
        m.remove(0, 2);
    }

    #[test]
    fn hashing_and_equality() {
        let a = Marking::new(vec![1, 2, 3]);
        let b = Marking::new(vec![1, 2, 3]);
        let c = Marking::new(vec![3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_and_from() {
        let m: Marking = vec![1, 0, 2].into();
        assert_eq!(m.to_string(), "(1,0,2)");
    }
}
