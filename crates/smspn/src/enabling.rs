//! Net-enabling and priority-enabling functions.
//!
//! The paper defines two enabling functions over a marking `m` (Section 5.1):
//!
//! * `EN(m)` — the transitions whose input arcs and guards are satisfied;
//! * `EP(m)` — the subset of `EN(m)` carrying the *highest* priority in `m`.
//!
//! Only priority-enabled transitions can fire, and the choice among them is made
//! probabilistically by weight — not by racing firing-time samples — so the
//! reachability graph maps directly onto a semi-Markov chain.

use crate::marking::Marking;
use crate::net::SmSpn;

/// The net-enabled transitions `EN(m)` (indices into `net.transitions()`).
pub fn net_enabled(net: &SmSpn, m: &Marking) -> Vec<usize> {
    net.transitions()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_net_enabled(m))
        .map(|(i, _)| i)
        .collect()
}

/// The priority-enabled transitions `EP(m)`: the net-enabled transitions whose
/// priority equals the maximum priority among net-enabled transitions.
pub fn priority_enabled(net: &SmSpn, m: &Marking) -> Vec<usize> {
    let enabled = net_enabled(net, m);
    if enabled.is_empty() {
        return enabled;
    }
    let max_priority = enabled
        .iter()
        .map(|&i| net.transitions()[i].priority_in(m))
        .max()
        .expect("non-empty enabled set");
    enabled
        .into_iter()
        .filter(|&i| net.transitions()[i].priority_in(m) == max_priority)
        .collect()
}

/// Firing probabilities of the priority-enabled transitions in `m`, as
/// `(transition index, probability)` pairs — the paper's
/// `P(t fires) = w_t(m) / Σ_{t'∈EP(m)} w_{t'}(m)`.
pub fn firing_probabilities(net: &SmSpn, m: &Marking) -> Vec<(usize, f64)> {
    let enabled = priority_enabled(net, m);
    let weights: Vec<f64> = enabled
        .iter()
        .map(|&i| net.transitions()[i].weight_in(m))
        .collect();
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 || enabled.is_empty(),
        "priority-enabled transitions have zero total weight in marking {m}"
    );
    enabled
        .into_iter()
        .zip(weights)
        .map(|(i, w)| (i, w / total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TransitionSpec;
    use smp_distributions::Dist;

    fn priority_net() -> SmSpn {
        // Three transitions competing for the same token with different priorities
        // and weights.
        let mut net = SmSpn::with_places(&[("p", 1), ("a", 0), ("b", 0), ("c", 0)]);
        net.add_transition(
            TransitionSpec::new("low")
                .consumes(0, 1)
                .produces(1, 1)
                .priority(1)
                .weight(10.0)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("high_a")
                .consumes(0, 1)
                .produces(2, 1)
                .priority(3)
                .weight(1.0)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("high_b")
                .consumes(0, 1)
                .produces(3, 1)
                .priority(3)
                .weight(3.0)
                .distribution(Dist::exponential(1.0)),
        );
        net
    }

    #[test]
    fn net_enabled_ignores_priority() {
        let net = priority_net();
        let m = net.initial_marking().clone();
        assert_eq!(net_enabled(&net, &m), vec![0, 1, 2]);
    }

    #[test]
    fn priority_enabled_keeps_only_highest() {
        let net = priority_net();
        let m = net.initial_marking().clone();
        assert_eq!(priority_enabled(&net, &m), vec![1, 2]);
    }

    #[test]
    fn firing_probabilities_normalise_weights() {
        let net = priority_net();
        let m = net.initial_marking().clone();
        let probs = firing_probabilities(&net, &m);
        assert_eq!(probs.len(), 2);
        assert_eq!(probs[0].0, 1);
        assert!((probs[0].1 - 0.25).abs() < 1e-12);
        assert!((probs[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_marking_enables_nothing() {
        let net = priority_net();
        let m = crate::Marking::new(vec![0, 0, 0, 0]);
        assert!(net_enabled(&net, &m).is_empty());
        assert!(priority_enabled(&net, &m).is_empty());
        assert!(firing_probabilities(&net, &m).is_empty());
    }

    #[test]
    fn marking_dependent_priority_switches_winner() {
        let mut net = SmSpn::with_places(&[("p", 2), ("out", 0)]);
        net.add_transition(
            TransitionSpec::new("normal")
                .consumes(0, 1)
                .produces(1, 1)
                .priority(1)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("urgent_when_two")
                .consumes(0, 1)
                .produces(1, 1)
                .priority_fn(|m| if m.get(0) >= 2 { 5 } else { 1 })
                .distribution(Dist::exponential(1.0)),
        );
        let two = crate::Marking::new(vec![2, 0]);
        let one = crate::Marking::new(vec![1, 0]);
        assert_eq!(priority_enabled(&net, &two), vec![1]);
        assert_eq!(priority_enabled(&net, &one), vec![0, 1]);
    }
}
