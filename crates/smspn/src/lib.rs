//! # smp-smspn
//!
//! Semi-Markov stochastic Petri nets (SM-SPNs) and state-space generation.
//!
//! The paper introduces SM-SPNs (Section 5.1) as its high-level modelling formalism:
//! an extension of GSPNs in which every transition carries a marking-dependent
//! *priority*, *weight* and *firing-time distribution*.  The choice among
//! priority-enabled transitions is probabilistic (by weight), **not** a race between
//! sampled firing times — which is precisely what lets the reachability graph map
//! directly onto a semi-Markov chain.
//!
//! This crate provides:
//!
//! * [`Marking`] — a token vector over the net's places;
//! * [`SmSpn`] / [`TransitionSpec`] — the 4-tuple `(PN, P, W, D)` with
//!   marking-dependent priority, weight and distribution functions, supporting both
//!   classic arc-based (consume/produce) transitions and arbitrary guard/action
//!   closures (the shape produced by the DNAmaca-style `\condition`/`\action`
//!   blocks);
//! * [`enabling`] — the net-enabling function `EN` and the stricter
//!   priority-enabling function `EP` of the paper;
//! * [`StateSpace`] — breadth-first reachability analysis producing the underlying
//!   semi-Markov process together with marking⇄state-index maps and predicate-based
//!   state-set selection (used to express "all polling units failed" as a target
//!   set).

#![forbid(unsafe_code)]

pub mod enabling;
pub mod marking;
pub mod net;
pub mod reachability;

pub use marking::Marking;
pub use net::{SmSpn, TransitionSpec};
pub use reachability::{ReachabilityOptions, StateSpace};
