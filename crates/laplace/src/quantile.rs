//! Passage-time quantiles and reliability probabilities.
//!
//! Convenience wrappers that go straight from a density transform to the two numbers
//! modellers actually quote:
//!
//! * "the probability that the system processes 175 voters in under 440 s is 0.9858"
//!   — [`probability_of_completion_by`];
//! * "the 99th-percentile response time is …" — [`quantile`].
//!
//! Both invert `L(s)/s` over an automatically refined time grid and read the value
//! off the resulting [`CdfCurve`].

use crate::cdf::CdfCurve;
use crate::splan::InversionMethod;
use smp_distributions::LaplaceTransform;
use smp_numeric::stats::linspace;

/// Probability that the passage completes by time `deadline`, i.e. `F(deadline)`.
///
/// # Example
///
/// The paper's style of reliability query — the probability that an
/// Erlang(2, 4) passage completes within 3 time units — and the matching
/// quantile look-up that inverts it:
///
/// ```
/// use smp_laplace::{probability_of_completion_by, quantile, InversionMethod};
/// use smp_distributions::Dist;
///
/// let d = Dist::erlang(2.0, 4);
/// let p = probability_of_completion_by(InversionMethod::euler(), &d, 3.0);
/// assert!((0.0..=1.0).contains(&p));
///
/// // The p-quantile asks the inverse question — by which time does the
/// // completion probability reach p? — so it recovers the deadline.
/// let t = quantile(InversionMethod::euler(), &d, p, 1.0, 64.0).unwrap();
/// assert!((t - 3.0).abs() < 0.05, "q({p}) = {t}");
/// ```
pub fn probability_of_completion_by<L: LaplaceTransform + ?Sized>(
    method: InversionMethod,
    density_transform: &L,
    deadline: f64,
) -> f64 {
    assert!(deadline > 0.0, "deadline must be positive");
    // A short grid ending at the deadline: the last point is the answer, the others
    // stabilise the monotonicity repair.
    let ts = linspace(deadline / 16.0, deadline, 16);
    let curve = CdfCurve::from_density_transform(method, density_transform, &ts);
    curve.probability_at(deadline)
}

/// The `p`-quantile of the passage time: the earliest time by which the completion
/// probability reaches `p`.
///
/// The search expands the time horizon geometrically (up to `max_horizon`) until the
/// CDF reaches `p`, then refines on a denser grid.  Returns `None` if the probability
/// is not reached within `max_horizon` (e.g. defective distributions).
pub fn quantile<L: LaplaceTransform + ?Sized>(
    method: InversionMethod,
    density_transform: &L,
    p: f64,
    initial_horizon: f64,
    max_horizon: f64,
) -> Option<f64>
where
    InversionMethod: Clone,
{
    assert!((0.0..1.0).contains(&p) || p == 1.0, "p must be in [0, 1]");
    assert!(initial_horizon > 0.0 && max_horizon >= initial_horizon);
    let mut horizon = initial_horizon;
    loop {
        let ts = linspace(horizon / 128.0, horizon, 128);
        let curve = CdfCurve::from_density_transform(method.clone(), density_transform, &ts);
        if let Some(q) = curve.quantile(p) {
            // Refine around the bracketing interval with a 10× denser local grid.
            let lo = (q - horizon / 128.0).max(horizon / 1024.0);
            let hi = q + horizon / 128.0;
            let fine = linspace(lo, hi, 64);
            let fine_curve =
                CdfCurve::from_density_transform(method.clone(), density_transform, &fine);
            return fine_curve.quantile(p).or(Some(q));
        }
        if horizon >= max_horizon {
            return None;
        }
        horizon = (horizon * 2.0).min(max_horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn completion_probability_exponential() {
        let d = Dist::exponential(1.0);
        let p = probability_of_completion_by(InversionMethod::euler(), &d, 2.0);
        let expect = 1.0 - (-2.0f64).exp();
        assert!((p - expect).abs() < 1e-5, "P = {p} vs {expect}");
    }

    #[test]
    fn quantile_exponential_median() {
        let d = Dist::exponential(2.0);
        let q = quantile(InversionMethod::euler(), &d, 0.5, 1.0, 64.0).unwrap();
        let expect = std::f64::consts::LN_2 / 2.0;
        assert!((q - expect).abs() < 0.01, "median {q} vs {expect}");
    }

    #[test]
    fn quantile_expands_horizon_when_needed() {
        // Erlang with mean 50 — the initial horizon of 1 is far too small.
        let d = Dist::erlang(0.1, 5);
        let q = quantile(InversionMethod::euler(), &d, 0.9, 1.0, 1024.0).unwrap();
        assert!(q > 50.0 && q < 150.0, "q90 = {q}");
    }

    #[test]
    fn quantile_unreachable_returns_none() {
        let d = Dist::erlang(0.001, 5); // mean 5000, far beyond the horizon cap
        assert_eq!(quantile(InversionMethod::euler(), &d, 0.99, 1.0, 8.0), None);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_bad_deadline() {
        probability_of_completion_by(InversionMethod::euler(), &Dist::exponential(1.0), 0.0);
    }
}
