//! Passage-time quantiles and reliability probabilities.
//!
//! Convenience wrappers that go straight from a density transform to the two numbers
//! modellers actually quote:
//!
//! * "the probability that the system processes 175 voters in under 440 s is 0.9858"
//!   — [`probability_of_completion_by`];
//! * "the 99th-percentile response time is …" — [`quantile`].
//!
//! Both invert `L(s)/s` over an automatically refined time grid and read the value
//! off the resulting [`CdfCurve`].

use crate::cdf::CdfCurve;
use crate::splan::InversionMethod;
use smp_distributions::LaplaceTransform;
use smp_numeric::stats::linspace;

/// Probability that the passage completes by time `deadline`, i.e. `F(deadline)`.
///
/// # Example
///
/// The paper's style of reliability query — the probability that an
/// Erlang(2, 4) passage completes within 3 time units — and the matching
/// quantile look-up that inverts it:
///
/// ```
/// use smp_laplace::{probability_of_completion_by, quantile, InversionMethod};
/// use smp_distributions::Dist;
///
/// let d = Dist::erlang(2.0, 4);
/// let p = probability_of_completion_by(InversionMethod::euler(), &d, 3.0);
/// assert!((0.0..=1.0).contains(&p));
///
/// // The p-quantile asks the inverse question — by which time does the
/// // completion probability reach p? — so it recovers the deadline.
/// let t = quantile(InversionMethod::euler(), &d, p, 1.0, 64.0).unwrap();
/// assert!((t - 3.0).abs() < 0.05, "q({p}) = {t}");
/// ```
pub fn probability_of_completion_by<L: LaplaceTransform + ?Sized>(
    method: InversionMethod,
    density_transform: &L,
    deadline: f64,
) -> f64 {
    assert!(deadline > 0.0, "deadline must be positive");
    // A short grid ending at the deadline: the last point is the answer, the others
    // stabilise the monotonicity repair.
    let ts = linspace(deadline / 16.0, deadline, 16);
    let curve = CdfCurve::from_density_transform(method, density_transform, &ts);
    curve.probability_at(deadline)
}

/// The `p`-quantile of the passage time: the earliest time by which the completion
/// probability reaches `p`.
///
/// The search expands the time horizon geometrically (up to `max_horizon`) until the
/// CDF reaches `p`, then refines on a denser grid.  Returns `None` if the probability
/// is not reached within `max_horizon` (e.g. defective distributions).
pub fn quantile<L: LaplaceTransform + ?Sized>(
    method: InversionMethod,
    density_transform: &L,
    p: f64,
    initial_horizon: f64,
    max_horizon: f64,
) -> Option<f64>
where
    InversionMethod: Clone,
{
    assert!((0.0..1.0).contains(&p) || p == 1.0, "p must be in [0, 1]");
    let result: Result<Vec<Option<f64>>, std::convert::Infallible> =
        quantiles_from_cdf(&[p], initial_horizon, max_horizon, &mut |ts: &[f64]| {
            Ok(
                CdfCurve::from_density_transform(method.clone(), density_transform, ts)
                    .values()
                    .to_vec(),
            )
        });
    match result {
        Ok(mut quantiles) => quantiles.pop().flatten(),
        Err(never) => match never {},
    }
}

/// A batched CDF evaluator: maps a strictly increasing `t`-grid to the CDF
/// values on it.  The callback form taken by [`quantiles_from_cdf`].
pub type CdfOnGrid<'a, E> = dyn FnMut(&[f64]) -> Result<Vec<f64>, E> + 'a;

/// The generic quantile search: horizon expansion plus local refinement over
/// **any** CDF-on-grid provider.
///
/// `cdf_on_grid` receives a strictly increasing time grid and returns the CDF
/// values on it — by in-process inversion ([`quantile`] wraps this function
/// that way), by a distributed pipeline run, or by anything else.  This is the
/// single home of the search policy, so every engine that layers quantiles on
/// the CDF machinery produces **identical** grids and therefore (given
/// identical CDF values) bitwise-identical quantiles.
///
/// Starting from `initial_horizon`, invert the CDF on a 128-point grid over
/// `(0, horizon]`; every still-unresolved probability that the curve reaches
/// is then refined on its own 64-point grid around the bracketing interval;
/// the horizon doubles (up to `max_horizon`) until every probability is
/// resolved.  One coarse grid per horizon level serves *all* probabilities —
/// a batch costs one sweep, not one per probability — and each probability
/// resolves at the same horizon, coarse grid and refinement grid as a
/// single-probability search would use, so batching never changes the
/// values.  The entry for a probability not reached within `max_horizon` is
/// `None` (e.g. defective distributions).
///
/// Returned values are clamped/monotone-repaired via [`CdfCurve::from_samples`]
/// (idempotent for already-repaired inputs).  Errors from `cdf_on_grid`
/// propagate immediately.
pub fn quantiles_from_cdf<E>(
    probs: &[f64],
    initial_horizon: f64,
    max_horizon: f64,
    cdf_on_grid: &mut CdfOnGrid<'_, E>,
) -> Result<Vec<Option<f64>>, E> {
    assert!(
        initial_horizon > 0.0 && max_horizon >= initial_horizon,
        "horizons must satisfy 0 < initial <= max"
    );
    assert!(
        probs.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    let mut out: Vec<Option<f64>> = vec![None; probs.len()];
    let mut pending: Vec<usize> = (0..probs.len()).collect();
    let mut horizon = initial_horizon;
    while !pending.is_empty() {
        let ts = linspace(horizon / 128.0, horizon, 128);
        let curve = CdfCurve::from_samples(ts.clone(), cdf_on_grid(&ts)?);
        let mut still_pending = Vec::with_capacity(pending.len());
        for index in pending {
            let p = probs[index];
            match curve.quantile(p) {
                Some(q) => {
                    // Refine around the bracketing interval with a 10× denser
                    // local grid.
                    let lo = (q - horizon / 128.0).max(horizon / 1024.0);
                    let hi = q + horizon / 128.0;
                    let fine = linspace(lo, hi, 64);
                    let fine_curve = CdfCurve::from_samples(fine.clone(), cdf_on_grid(&fine)?);
                    out[index] = fine_curve.quantile(p).or(Some(q));
                }
                None => still_pending.push(index),
            }
        }
        pending = still_pending;
        if horizon >= max_horizon {
            break;
        }
        horizon = (horizon * 2.0).min(max_horizon);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn completion_probability_exponential() {
        let d = Dist::exponential(1.0);
        let p = probability_of_completion_by(InversionMethod::euler(), &d, 2.0);
        let expect = 1.0 - (-2.0f64).exp();
        assert!((p - expect).abs() < 1e-5, "P = {p} vs {expect}");
    }

    #[test]
    fn quantile_exponential_median() {
        let d = Dist::exponential(2.0);
        let q = quantile(InversionMethod::euler(), &d, 0.5, 1.0, 64.0).unwrap();
        let expect = std::f64::consts::LN_2 / 2.0;
        assert!((q - expect).abs() < 0.01, "median {q} vs {expect}");
    }

    #[test]
    fn quantile_expands_horizon_when_needed() {
        // Erlang with mean 50 — the initial horizon of 1 is far too small.
        let d = Dist::erlang(0.1, 5);
        let q = quantile(InversionMethod::euler(), &d, 0.9, 1.0, 1024.0).unwrap();
        assert!(q > 50.0 && q < 150.0, "q90 = {q}");
    }

    #[test]
    fn quantile_unreachable_returns_none() {
        let d = Dist::erlang(0.001, 5); // mean 5000, far beyond the horizon cap
        assert_eq!(quantile(InversionMethod::euler(), &d, 0.99, 1.0, 8.0), None);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_bad_deadline() {
        probability_of_completion_by(InversionMethod::euler(), &Dist::exponential(1.0), 0.0);
    }

    #[test]
    fn quantiles_from_cdf_matches_the_transform_wrapper() {
        // The generic search fed by in-process inversion must agree bitwise
        // with the historical `quantile()` API, which now wraps it.
        let d = Dist::erlang(2.0, 3);
        let method = InversionMethod::euler();
        let probs = [0.25, 0.5, 0.9];
        let mut sweeps = 0usize;
        let generic: Vec<Option<f64>> = quantiles_from_cdf::<std::convert::Infallible>(
            &probs,
            1.0,
            64.0,
            &mut |ts: &[f64]| {
                sweeps += 1;
                Ok(CdfCurve::from_density_transform(method.clone(), &d, ts)
                    .values()
                    .to_vec())
            },
        )
        .unwrap();
        for (&p, &q) in probs.iter().zip(&generic) {
            let wrapped = quantile(InversionMethod::euler(), &d, p, 1.0, 64.0);
            assert_eq!(q, wrapped, "p = {p}");
            assert!(q.is_some());
        }
        // Batching shares the coarse sweeps: per horizon level one coarse grid
        // serves every probability, plus one refinement grid per probability.
        // An Erlang(2, 3) CDF tops 0.9 well within a horizon of 8, so at most
        // 4 coarse levels (1, 2, 4, 8) + 3 refinements.
        assert!(sweeps <= 7, "expected shared coarse sweeps, got {sweeps}");
    }

    #[test]
    fn quantiles_from_cdf_propagates_provider_errors() {
        let result =
            quantiles_from_cdf::<String>(
                &[0.5],
                1.0,
                8.0,
                &mut |_| Err("backend lost".to_string()),
            );
        assert_eq!(result.unwrap_err(), "backend lost");
    }

    #[test]
    fn quantiles_from_cdf_edge_probabilities() {
        // Synthetic CDF F(t) = min(1, t/2): linear ramp that reaches 1 exactly
        // at t = 2, so every edge case has a known answer.
        let mut ramp = |ts: &[f64]| -> Result<Vec<f64>, std::convert::Infallible> {
            Ok(ts.iter().map(|t| (t / 2.0).min(1.0)).collect())
        };

        // p -> 0: resolved on the first coarse grid; the answer is the first
        // point of the refinement grid, i.e. the search's resolution floor,
        // never a negative or zero time.
        let result = quantiles_from_cdf(&[0.0, 1e-12], 1.0, 16.0, &mut ramp).unwrap();
        for (p, q) in [0.0, 1e-12].iter().zip(&result) {
            let q = q.expect("tiny probabilities resolve immediately");
            assert!(q > 0.0 && q <= 1.0 / 64.0, "q({p}) = {q}");
        }

        // p = 1: reached exactly at t = 2 (the coarse grid has points past 2).
        let result = quantiles_from_cdf(&[1.0], 1.0, 16.0, &mut ramp).unwrap();
        let q = result[0].expect("the ramp reaches 1 within the horizon");
        assert!((q - 2.0).abs() < 0.1, "q(1.0) = {q}");

        // p = 1 against an asymptotic CDF that never *equals* 1 on the grid:
        // reported as unreachable, not as the horizon cap.
        let mut asymptotic = |ts: &[f64]| -> Result<Vec<f64>, std::convert::Infallible> {
            Ok(ts.iter().map(|t| 1.0 - (-t).exp()).collect())
        };
        let result = quantiles_from_cdf(&[1.0], 1.0, 16.0, &mut asymptotic).unwrap();
        assert_eq!(result[0], None);

        // Non-bracketing (far too large) initial horizon: the true median of
        // the ramp (t = 1) sits below the first coarse grid point at
        // 1024/128 = 8.  The search still resolves -- to the refinement
        // grid's floor, never below the true quantile and never above the
        // coarse cell that first crossed p.
        let result = quantiles_from_cdf(&[0.5], 1024.0, 1024.0, &mut ramp).unwrap();
        let q = result[0].expect("resolved on the oversized grid");
        assert!((1.0..=16.0).contains(&q), "q(0.5) = {q} on a 1024 horizon");

        // Non-bracketing (too small) initial horizon with no room to expand:
        // max_horizon == initial_horizon < q(p) means None, not a clamp.
        let result = quantiles_from_cdf(&[0.9], 0.25, 0.25, &mut ramp).unwrap();
        assert_eq!(result[0], None);
    }

    #[test]
    fn quantiles_from_cdf_reports_unreachable_probs_as_none() {
        // A defective CDF that tops out at 0.4: the 0.9-quantile is never
        // reached, the 0.25-quantile is.
        let result = quantiles_from_cdf::<std::convert::Infallible>(
            &[0.25, 0.9],
            1.0,
            16.0,
            &mut |ts: &[f64]| Ok(ts.iter().map(|t| 0.4 * (1.0 - (-t).exp())).collect()),
        )
        .unwrap();
        assert!(result[0].is_some());
        assert_eq!(result[1], None);
    }
}
