//! The Euler inversion algorithm of Abate & Whitt (1995).
//!
//! The method approximates the Bromwich inversion integral by the trapezoidal rule
//! along a vertical contour `Re(s) = A / (2t)` and accelerates the resulting slowly
//! converging alternating series with Euler summation (binomially weighted averages
//! of the last `m + 1` partial sums).
//!
//! For a transform `L(s)` of a real-valued function `f(t)`, the approximation is
//!
//! ```text
//!   f(t) ≈ (e^{A/2} / 2t)·Re L(A/2t)
//!        + (e^{A/2} / t)·Σ_{k≥1} (-1)^k Re L((A + 2kπi) / 2t)
//! ```
//!
//! truncated at `n + m` terms and Euler-summed over the last `m + 1` partial sums.
//! The discretisation-error parameter `A` bounds the aliasing error by roughly
//! `e^{-A}`; the default `A = 19.1` targets ~10⁻⁸, matching the convergence
//! tolerance used elsewhere in the suite.
//!
//! As the paper notes (Section 4), the number of transform evaluations is
//! `n + m + 1` per `t`-point — `k` "typically varies between 15 and 50, depending on
//! the accuracy of the inversion required".

use crate::splan::TransformValues;
use smp_distributions::LaplaceTransform;
use smp_numeric::kahan::KahanSum;
use smp_numeric::special::binomial_row;
use smp_numeric::Complex64;

/// Tuning parameters for the Euler algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EulerParams {
    /// Discretisation-error parameter `A`; the aliasing error is `O(e^{-A})`.
    pub a: f64,
    /// Number of leading terms `n` summed exactly before Euler acceleration starts.
    pub terms: usize,
    /// Number of extra terms `m` averaged by Euler summation.
    pub euler_terms: usize,
}

impl Default for EulerParams {
    fn default() -> Self {
        // 33 + 12 + 1 = 46 transform evaluations per t-point — comfortably inside the
        // paper's quoted 15–50 range and accurate to ~1e-8 on smooth densities.
        EulerParams {
            a: 19.1,
            terms: 33,
            euler_terms: 12,
        }
    }
}

impl EulerParams {
    /// Total number of transform evaluations needed per `t`-point.
    pub fn evaluations_per_t(&self) -> usize {
        self.terms + self.euler_terms + 1
    }
}

/// The Euler inversion operator.
#[derive(Debug, Clone, Default)]
pub struct Euler {
    params: EulerParams,
}

impl Euler {
    /// Creates an inverter with the given parameters.
    pub fn new(params: EulerParams) -> Self {
        assert!(params.a > 0.0, "Euler parameter A must be positive");
        assert!(params.terms >= 1, "Euler needs at least one series term");
        Euler { params }
    }

    /// Creates an inverter with default parameters (A = 19.1, n = 33, m = 12).
    pub fn standard() -> Self {
        Euler::new(EulerParams::default())
    }

    /// The parameters in use.
    pub fn params(&self) -> &EulerParams {
        &self.params
    }

    /// The `s`-points at which the transform must be evaluated to invert at time `t`.
    ///
    /// `t` must be strictly positive — the algorithm evaluates on the vertical line
    /// `Re(s) = A / (2t)`.
    pub fn s_points(&self, t: f64) -> Vec<Complex64> {
        assert!(t > 0.0, "Euler inversion requires t > 0, got {t}");
        let n_eval = self.params.evaluations_per_t();
        let re = self.params.a / (2.0 * t);
        (0..n_eval)
            .map(|k| Complex64::new(re, k as f64 * std::f64::consts::PI / t))
            .collect()
    }

    /// Inverts from precomputed transform values laid out in the order returned by
    /// [`Euler::s_points`] for the same `t`.
    pub fn invert_values(&self, values: &[Complex64], t: f64) -> f64 {
        assert!(t > 0.0, "Euler inversion requires t > 0, got {t}");
        let n = self.params.terms;
        let m = self.params.euler_terms;
        assert_eq!(
            values.len(),
            n + m + 1,
            "expected {} transform values, got {}",
            n + m + 1,
            values.len()
        );

        // Partial sums of the alternating series.
        let mut partial = Vec::with_capacity(n + m + 1);
        let mut acc = KahanSum::with_initial(0.5 * values[0].re);
        partial.push(acc.value());
        for (k, v) in values.iter().enumerate().skip(1) {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            acc.add(sign * v.re);
            partial.push(acc.value());
        }

        // Euler summation: binomially weighted average of partial sums S_n ... S_{n+m}.
        let weights = binomial_row(m as u32);
        let scale = 0.5f64.powi(m as i32);
        let mut avg = KahanSum::new();
        for (j, w) in weights.iter().enumerate() {
            avg.add(w * scale * partial[n + j]);
        }

        (self.params.a / 2.0).exp() / t * avg.value()
    }

    /// Inverts a transform directly (evaluating it at the required points).
    pub fn invert<L: LaplaceTransform + ?Sized>(&self, transform: &L, t: f64) -> f64 {
        let values: Vec<Complex64> = self
            .s_points(t)
            .into_iter()
            .map(|s| transform.lst(s))
            .collect();
        self.invert_values(&values, t)
    }

    /// Inverts a transform at many `t`-points.
    pub fn invert_many<L: LaplaceTransform + ?Sized>(&self, transform: &L, ts: &[f64]) -> Vec<f64> {
        ts.iter().map(|&t| self.invert(transform, t)).collect()
    }

    /// Inverts at many `t`-points from a pool of cached transform values (the
    /// pipeline's path: values were computed remotely against the planned points).
    pub fn invert_many_from(&self, cache: &TransformValues, ts: &[f64]) -> Vec<f64> {
        ts.iter()
            .map(|&t| {
                let values: Vec<Complex64> = self
                    .s_points(t)
                    .into_iter()
                    .map(|s| cache.get(s).expect("missing planned s-point value"))
                    .collect();
                self.invert_values(&values, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn default_params_within_paper_range() {
        let p = EulerParams::default();
        assert!(p.evaluations_per_t() >= 15 && p.evaluations_per_t() <= 51);
    }

    #[test]
    fn s_points_lie_on_vertical_line() {
        let euler = Euler::standard();
        let t = 2.5;
        let pts = euler.s_points(t);
        assert_eq!(pts.len(), euler.params().evaluations_per_t());
        let re = 19.1 / (2.0 * t);
        for (k, s) in pts.iter().enumerate() {
            assert!((s.re - re).abs() < 1e-14);
            assert!((s.im - k as f64 * std::f64::consts::PI / t).abs() < 1e-12);
        }
    }

    #[test]
    fn inverts_exponential_density() {
        let euler = Euler::standard();
        let d = Dist::exponential(1.0);
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let f = euler.invert(&d, t);
            let expect = (-t).exp();
            assert!((f - expect).abs() < 1e-7, "f({t}) = {f} vs {expect}");
        }
    }

    #[test]
    fn inverts_erlang_density() {
        let euler = Euler::standard();
        let d = Dist::erlang(2.0, 3);
        for &t in &[0.2, 0.5, 1.0, 1.5, 3.0, 6.0] {
            let f = euler.invert(&d, t);
            // Erlang(λ=2, k=3) pdf: λ^k t^{k-1} e^{-λt} / (k-1)!
            let expect = 8.0 * t * t * (-2.0 * t).exp() / 2.0;
            assert!((f - expect).abs() < 1e-7, "f({t}) = {f} vs {expect}");
        }
    }

    #[test]
    fn inverts_uniform_density_with_discontinuities() {
        // Uniform densities have jump discontinuities — exactly the case the paper
        // says requires Euler rather than Laguerre.
        // Accuracy is necessarily lower than for smooth densities (the periodised
        // Fourier series behind the method converges like 1/k at jump points), so
        // the tolerance here is looser; the high-accuracy configuration below
        // demonstrates that the error is controllable.
        let euler = Euler::standard();
        let d = Dist::uniform(1.0, 3.0);
        for &(t, expect) in &[(0.5, 0.0), (1.5, 0.5), (2.5, 0.5), (3.5, 0.0)] {
            let f = euler.invert(&d, t);
            assert!((f - expect).abs() < 0.03, "f({t}) = {f} vs {expect}");
        }
        let fine = Euler::new(EulerParams {
            a: 19.1,
            terms: 400,
            euler_terms: 40,
        });
        for &(t, expect) in &[(0.5, 0.0), (1.5, 0.5), (2.5, 0.5), (3.5, 0.0)] {
            let f = fine.invert(&d, t);
            assert!((f - expect).abs() < 3e-3, "fine f({t}) = {f} vs {expect}");
        }
    }

    #[test]
    fn inverts_deterministic_cdf() {
        // Invert L(s)/s for a point mass at 2: the CDF step function.
        let euler = Euler::standard();
        let d = Dist::deterministic(2.0);
        let cdf_transform = |s: Complex64| Dist::lst(&d, s) / s;
        // Away from the jump at t = 2 the step values are recovered; close to the
        // discontinuity the Gibbs oscillation only dies down with more series terms,
        // so the default configuration is checked far from the jump and the fine
        // configuration close to it.
        assert!(euler.invert(&cdf_transform, 1.0).abs() < 0.01);
        assert!((euler.invert(&cdf_transform, 5.0) - 1.0).abs() < 0.01);
        let fine = Euler::new(EulerParams {
            a: 19.1,
            terms: 400,
            euler_terms: 40,
        });
        assert!((fine.invert(&cdf_transform, 3.0) - 1.0).abs() < 1e-3);
        assert!(fine.invert(&cdf_transform, 1.9).abs() < 0.01);
    }

    #[test]
    fn inverts_mixture_from_paper_fig3() {
        // The t5 firing distribution: 0.8·U(1.5,10) + 0.2·Erlang(0.001,5).
        let euler = Euler::standard();
        let d = Dist::mixture(vec![
            (0.8, Dist::uniform(1.5, 10.0)),
            (0.2, Dist::erlang(0.001, 5)),
        ]);
        // Inside the uniform's support the density is dominated by 0.8/8.5.
        let f = euler.invert(&d, 5.0);
        assert!((f - 0.8 / 8.5).abs() < 1e-3, "f(5) = {f}");
        // Far outside the uniform support, only the (very long) Erlang tail remains.
        let f = euler.invert(&d, 20.0);
        assert!(f.abs() < 1e-3);
    }

    #[test]
    fn invert_values_matches_invert() {
        let euler = Euler::standard();
        let d = Dist::erlang(1.0, 2);
        let t = 1.7;
        let values: Vec<Complex64> = euler
            .s_points(t)
            .iter()
            .map(|&s| Dist::lst(&d, s))
            .collect();
        assert_eq!(euler.invert_values(&values, t), euler.invert(&d, t));
    }

    #[test]
    fn invert_many_matches_pointwise() {
        let euler = Euler::standard();
        let d = Dist::exponential(0.5);
        let ts = [0.5, 1.0, 2.0];
        let many = euler.invert_many(&d, &ts);
        for (&t, &v) in ts.iter().zip(&many) {
            assert_eq!(v, euler.invert(&d, t));
        }
    }

    #[test]
    #[should_panic(expected = "requires t > 0")]
    fn zero_time_rejected() {
        Euler::standard().s_points(0.0);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_value_count_rejected() {
        Euler::standard().invert_values(&[Complex64::ONE; 3], 1.0);
    }

    #[test]
    fn higher_accuracy_with_more_terms() {
        let coarse = Euler::new(EulerParams {
            a: 15.0,
            terms: 10,
            euler_terms: 5,
        });
        let fine = Euler::new(EulerParams {
            a: 22.0,
            terms: 45,
            euler_terms: 14,
        });
        let d = Dist::erlang(3.0, 4);
        let t: f64 = 1.2;
        // Erlang(λ=3, k=4) pdf: λ^k t^{k-1} e^{-λt} / (k-1)!
        let analytic = 81.0 * t.powi(3) * (-3.0 * t).exp() / 6.0;
        let err_coarse = (coarse.invert(&d, t) - analytic).abs();
        let err_fine = (fine.invert(&d, t) - analytic).abs();
        assert!(err_fine <= err_coarse + 1e-12);
        assert!(err_fine < 1e-9);
    }
}
