//! Cumulative distribution curves from Laplace-domain densities.
//!
//! If `L(s)` is the transform of a passage-time *density* then `L(s)/s` is the
//! transform of its *cumulative distribution function*; the paper obtains the
//! response-time quantile curve of Fig. 5 by inverting exactly that.  [`CdfCurve`]
//! wraps the inverted samples with the clamping, monotonicity repair and quantile
//! extraction needed to read probabilities and percentiles off the curve.

use crate::splan::{InversionMethod, SPointPlan, TransformValues};
use smp_distributions::LaplaceTransform;
use smp_numeric::stats::{lerp_table, quantile_from_cdf};
use smp_numeric::Complex64;

/// A sampled cumulative distribution function `F(t)` on a grid of `t`-points.
#[derive(Debug, Clone)]
pub struct CdfCurve {
    t_points: Vec<f64>,
    values: Vec<f64>,
}

impl CdfCurve {
    /// Builds a CDF curve by numerically inverting `L(s)/s` where `transform` is the
    /// Laplace transform of the density.
    pub fn from_density_transform<L: LaplaceTransform + ?Sized>(
        method: InversionMethod,
        transform: &L,
        t_points: &[f64],
    ) -> Self {
        let cdf_transform = |s: Complex64| transform.lst(s) / s;
        let plan = SPointPlan::new(method, t_points);
        let values = TransformValues::compute(&plan, &cdf_transform);
        let raw = plan.invert(&values);
        CdfCurve::from_samples(t_points.to_vec(), raw)
    }

    /// Wraps raw inverted samples, clamping them to `[0, 1]` and repairing tiny
    /// non-monotonicities caused by numerical inversion noise.
    pub fn from_samples(t_points: Vec<f64>, raw: Vec<f64>) -> Self {
        assert_eq!(t_points.len(), raw.len(), "mismatched sample lengths");
        assert!(
            t_points.windows(2).all(|w| w[0] < w[1]),
            "t-points must be strictly increasing"
        );
        let mut values = Vec::with_capacity(raw.len());
        let mut running_max: f64 = 0.0;
        for v in raw {
            let clamped = v.clamp(0.0, 1.0);
            running_max = running_max.max(clamped);
            values.push(running_max);
        }
        CdfCurve { t_points, values }
    }

    /// The time grid.
    pub fn t_points(&self) -> &[f64] {
        &self.t_points
    }

    /// The CDF values on the grid.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `P(T ≤ t)` by linear interpolation on the grid (clamped outside it).
    pub fn probability_at(&self, t: f64) -> f64 {
        lerp_table(&self.t_points, &self.values, t)
    }

    /// The `p`-quantile: the smallest gridded time by which the probability reaches
    /// `p`, or `None` if the curve never gets there.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        quantile_from_cdf(&self.t_points, &self.values, p)
    }

    /// `P(t1 < T < t2)` — the paper's definition of a passage-time quantile as the
    /// integral of the density between two time bounds.
    pub fn probability_between(&self, t1: f64, t2: f64) -> f64 {
        (self.probability_at(t2) - self.probability_at(t1)).max(0.0)
    }

    /// Iterates over `(t, F(t))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t_points
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_numeric::stats::linspace;

    #[test]
    fn exponential_cdf_curve() {
        let d = Dist::exponential(0.5);
        let ts = linspace(0.1, 12.0, 60);
        let curve = CdfCurve::from_density_transform(InversionMethod::euler(), &d, &ts);
        for (t, v) in curve.iter() {
            let expect = 1.0 - (-0.5 * t).exp();
            assert!((v - expect).abs() < 1e-6, "F({t}) = {v} vs {expect}");
        }
    }

    #[test]
    fn quantile_extraction_matches_analytic() {
        let d = Dist::exponential(1.0);
        let ts = linspace(0.05, 10.0, 400);
        let curve = CdfCurve::from_density_transform(InversionMethod::euler(), &d, &ts);
        // Median of Exp(1) is ln 2.
        let median = curve.quantile(0.5).unwrap();
        assert!(
            (median - std::f64::consts::LN_2).abs() < 0.02,
            "median {median}"
        );
        let p90 = curve.quantile(0.9).unwrap();
        assert!((p90 - 10f64.ln()).abs() < 0.02, "p90 {p90}");
    }

    #[test]
    fn probability_between_is_density_integral() {
        let d = Dist::erlang(2.0, 2);
        let ts = linspace(0.05, 10.0, 200);
        let curve = CdfCurve::from_density_transform(InversionMethod::euler(), &d, &ts);
        let p = curve.probability_between(0.5, 2.0);
        let analytic = d.cdf(2.0).unwrap() - d.cdf(0.5).unwrap();
        assert!((p - analytic).abs() < 1e-5);
    }

    #[test]
    fn curve_is_monotone_and_clamped() {
        // Erlang CDF inverted with Laguerre (smooth) must remain within [0,1] and
        // non-decreasing even in the presence of numerical wiggle.
        let d = Dist::erlang(1.0, 3);
        let ts = linspace(0.1, 20.0, 100);
        let curve = CdfCurve::from_density_transform(InversionMethod::laguerre(), &d, &ts);
        let vals = curve.values();
        for w in vals.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
        assert!(vals.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn probability_at_clamps_outside_grid() {
        let curve = CdfCurve::from_samples(vec![1.0, 2.0, 3.0], vec![0.2, 0.5, 0.9]);
        assert_eq!(curve.probability_at(0.0), 0.2);
        assert_eq!(curve.probability_at(10.0), 0.9);
        assert_eq!(curve.probability_at(2.5), 0.7);
        assert_eq!(curve.quantile(0.95), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_grid() {
        CdfCurve::from_samples(vec![1.0, 1.0], vec![0.1, 0.2]);
    }
}
