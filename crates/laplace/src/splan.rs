//! `s`-point planning — the interface between inversion and distribution.
//!
//! In the paper's architecture (Section 4) the master processor "computes in advance
//! the values of `s` at which it will need to know the value of `L_ij(s)` in order to
//! perform the inversion", places them in a global work queue, and the slaves return
//! one transform value per `s`-point.  [`SPointPlan`] is that up-front computation:
//! given an inversion method and the user's `t`-points it produces the de-duplicated
//! list of required `s`-points, and [`TransformValues`] is the resulting cache of
//! `s ↦ L(s)` values from which the master performs the final inversion.

use crate::euler::Euler;
use crate::laguerre::Laguerre;
use smp_numeric::Complex64;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which numerical inversion algorithm drives the plan.
#[derive(Debug, Clone)]
pub enum InversionMethod {
    /// Euler inversion — robust to discontinuities, `s`-points depend on each `t`.
    Euler(Euler),
    /// Laguerre inversion — smooth functions only, fixed `s`-point set.
    Laguerre(Laguerre),
}

impl InversionMethod {
    /// Default Euler configuration.
    pub fn euler() -> Self {
        InversionMethod::Euler(Euler::standard())
    }

    /// Default Laguerre configuration.
    pub fn laguerre() -> Self {
        InversionMethod::Laguerre(Laguerre::standard())
    }

    /// Human-readable name (used by the pipeline's progress reports and
    /// carried in transport job frames).
    pub fn name(&self) -> &'static str {
        match self {
            InversionMethod::Euler(_) => "euler",
            InversionMethod::Laguerre(_) => "laguerre",
        }
    }

    /// Parses a name produced by [`InversionMethod::name`] back into that
    /// method's standard configuration — the inverse a worker or CLI needs
    /// when a method arrives as a string.  Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<InversionMethod> {
        match name {
            "euler" => Some(InversionMethod::euler()),
            "laguerre" => Some(InversionMethod::laguerre()),
            _ => None,
        }
    }
}

/// Bit-exact key for a complex point.  `Ord` (over the raw bit patterns) lets
/// [`TransformValues`] live in a `BTreeMap`, so iterating a value cache visits
/// points in a platform- and insertion-order-independent order — nothing
/// downstream of an iteration can accidentally depend on hash-map ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct PointKey(u64, u64);

impl PointKey {
    fn of(s: Complex64) -> Self {
        PointKey(s.re.to_bits(), s.im.to_bits())
    }
}

/// A pre-computed evaluation plan: every `s`-point needed to invert at the given
/// `t`-points, de-duplicated.
#[derive(Debug, Clone)]
pub struct SPointPlan {
    method: InversionMethod,
    t_points: Vec<f64>,
    s_points: Vec<Complex64>,
}

impl SPointPlan {
    /// Builds the plan for a set of output `t`-points.
    ///
    /// # Panics
    /// Panics when `t_points` is empty or contains non-positive times (passage-time
    /// densities and transients are only defined for `t > 0`).
    pub fn new(method: InversionMethod, t_points: &[f64]) -> Self {
        assert!(!t_points.is_empty(), "at least one t-point is required");
        assert!(
            t_points.iter().all(|&t| t > 0.0 && t.is_finite()),
            "all t-points must be positive and finite"
        );
        let mut seen = HashMap::new();
        let mut s_points = Vec::new();
        let mut push_point = |s: Complex64, out: &mut Vec<Complex64>| {
            if seen.insert(PointKey::of(s), true).is_none() {
                out.push(s);
            }
        };
        match &method {
            InversionMethod::Euler(euler) => {
                for &t in t_points {
                    for s in euler.s_points(t) {
                        push_point(s, &mut s_points);
                    }
                }
            }
            InversionMethod::Laguerre(laguerre) => {
                for s in laguerre.s_points() {
                    push_point(s, &mut s_points);
                }
            }
        }
        SPointPlan {
            method,
            t_points: t_points.to_vec(),
            s_points,
        }
    }

    /// The inversion method of the plan.
    pub fn method(&self) -> &InversionMethod {
        &self.method
    }

    /// The user-requested output times.
    pub fn t_points(&self) -> &[f64] {
        &self.t_points
    }

    /// The de-duplicated transform evaluation points (the work queue content).
    pub fn s_points(&self) -> &[Complex64] {
        &self.s_points
    }

    /// Number of transform evaluations required.
    pub fn len(&self) -> usize {
        self.s_points.len()
    }

    /// True when no evaluations are required (never happens for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.s_points.is_empty()
    }

    /// Performs the final inversion given a complete set of transform values.
    ///
    /// Returns `f(t)` for every planned `t`-point, in order.
    pub fn invert(&self, values: &TransformValues) -> Vec<f64> {
        match &self.method {
            InversionMethod::Euler(euler) => euler.invert_many_from(values, &self.t_points),
            InversionMethod::Laguerre(laguerre) => {
                laguerre.invert_many_from(values, &self.t_points)
            }
        }
    }

    /// Verifies that a value cache covers every planned point (used before
    /// attempting inversion after a checkpoint restore).
    pub fn is_satisfied_by(&self, values: &TransformValues) -> bool {
        self.s_points.iter().all(|&s| values.get(s).is_some())
    }
}

/// Computes the de-duplicated union of the `s`-points of several plans, in
/// first-seen order.
///
/// This is the batch-job generalisation of the paper's up-front planning: when a
/// master solves *several* measures whose transforms coincide (for example the
/// density and the CDF of the same passage, or transient measures sharing a time
/// grid), the work queue should contain each required `s`-point **once**, not
/// once per measure.  The batched pipeline groups its measures by transform and
/// evaluates exactly this union per group.
pub fn union_s_points<'a>(plans: impl IntoIterator<Item = &'a SPointPlan>) -> Vec<Complex64> {
    let mut seen = HashSet::new();
    let mut union = Vec::new();
    for plan in plans {
        for &s in plan.s_points() {
            if seen.insert(PointKey::of(s)) {
                union.push(s);
            }
        }
    }
    union
}

/// A cache of computed transform values keyed by their (bit-exact) `s`-point.
///
/// Backed by a `BTreeMap` ordered on the raw bit patterns so that
/// [`TransformValues::iter`] (and anything built on it — merges, snapshots,
/// future serializers) is deterministic regardless of insertion order.
#[derive(Debug, Clone, Default)]
pub struct TransformValues {
    map: BTreeMap<PointKey, Complex64>,
}

impl TransformValues {
    /// Creates an empty cache.
    pub fn new() -> Self {
        TransformValues::default()
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts (or overwrites) the value for an `s`-point.
    pub fn insert(&mut self, s: Complex64, value: Complex64) {
        self.map.insert(PointKey::of(s), value);
    }

    /// Looks up the value computed for an `s`-point, if any.
    pub fn get(&self, s: Complex64) -> Option<Complex64> {
        self.map.get(&PointKey::of(s)).copied()
    }

    /// Returns true when a value for the point is present.
    pub fn contains(&self, s: Complex64) -> bool {
        self.map.contains_key(&PointKey::of(s))
    }

    /// Merges another cache into this one (later values win).
    pub fn merge(&mut self, other: &TransformValues) {
        for (k, v) in &other.map {
            self.map.insert(*k, *v);
        }
    }

    /// Iterates over stored `(s, value)` pairs in ascending bit-pattern order
    /// of `s` (deterministic for any insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (Complex64, Complex64)> + '_ {
        self.map
            .iter()
            .map(|(k, v)| (Complex64::new(f64::from_bits(k.0), f64::from_bits(k.1)), *v))
    }

    /// Populates the cache by evaluating a transform at every planned point
    /// (single-process convenience path; the distributed pipeline fills the cache
    /// from worker results instead).
    pub fn compute<L: smp_distributions::LaplaceTransform + ?Sized>(
        plan: &SPointPlan,
        transform: &L,
    ) -> Self {
        let mut values = TransformValues::new();
        for &s in plan.s_points() {
            values.insert(s, transform.lst(s));
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn euler_plan_scales_with_t_points_and_dedups() {
        let plan1 = SPointPlan::new(InversionMethod::euler(), &[1.0]);
        let plan5 = SPointPlan::new(InversionMethod::euler(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(plan1.len(), 46);
        // Distinct t-points need distinct contour points: n = k·m evaluations total,
        // the structure behind the paper's "165 s-point evaluations for 5 t-points".
        assert_eq!(plan5.len(), 5 * 46);
        // Repeated t-points are de-duplicated, so re-running a plan with overlapping
        // time grids does not grow the work queue.
        let plan_dup = SPointPlan::new(InversionMethod::euler(), &[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(plan_dup.len(), 2 * 46);
    }

    #[test]
    fn laguerre_plan_constant_size() {
        let plan1 = SPointPlan::new(InversionMethod::laguerre(), &[1.0]);
        let plan9 = SPointPlan::new(
            InversionMethod::laguerre(),
            &(1..=9).map(|k| k as f64).collect::<Vec<_>>(),
        );
        assert_eq!(plan1.len(), 400);
        assert_eq!(plan9.len(), 400);
    }

    #[test]
    fn plan_invert_matches_direct_inversion() {
        let d = Dist::erlang(2.0, 3);
        let ts = [0.4, 0.9, 1.7, 2.5];
        for method in [InversionMethod::euler(), InversionMethod::laguerre()] {
            let plan = SPointPlan::new(method, &ts);
            let values = TransformValues::compute(&plan, &d);
            assert!(plan.is_satisfied_by(&values));
            let inverted = plan.invert(&values);
            for (&t, &f) in ts.iter().zip(&inverted) {
                let expect = 8.0 * t * t * (-2.0 * t).exp() / 2.0;
                assert!(
                    (f - expect).abs() < 1e-5,
                    "{}: f({t}) = {f} vs {expect}",
                    plan.method().name()
                );
            }
        }
    }

    #[test]
    fn incomplete_cache_detected() {
        let plan = SPointPlan::new(InversionMethod::euler(), &[1.0]);
        let mut values = TransformValues::new();
        assert!(!plan.is_satisfied_by(&values));
        for &s in &plan.s_points()[..10] {
            values.insert(s, Complex64::ONE);
        }
        assert!(!plan.is_satisfied_by(&values));
    }

    #[test]
    fn cache_merge_and_lookup() {
        let mut a = TransformValues::new();
        let mut b = TransformValues::new();
        let s1 = Complex64::new(1.0, 2.0);
        let s2 = Complex64::new(3.0, -4.0);
        a.insert(s1, Complex64::ONE);
        b.insert(s2, Complex64::I);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(s1), Some(Complex64::ONE));
        assert_eq!(a.get(s2), Some(Complex64::I));
        assert!(!a.contains(Complex64::ZERO));
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_non_positive_t() {
        SPointPlan::new(InversionMethod::euler(), &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one t-point")]
    fn rejects_empty_t() {
        SPointPlan::new(InversionMethod::euler(), &[]);
    }

    #[test]
    fn union_of_plans_dedups_across_overlapping_grids() {
        let shared = SPointPlan::new(InversionMethod::euler(), &[1.0, 2.0]);
        let overlap = SPointPlan::new(InversionMethod::euler(), &[2.0, 3.0]);
        // Identical grids union to a single grid's points...
        let same = union_s_points([&shared, &shared]);
        assert_eq!(same.len(), shared.len());
        assert_eq!(same, shared.s_points());
        // ...overlapping grids only pay for the new t-point's contour...
        let merged = union_s_points([&shared, &overlap]);
        assert_eq!(merged.len(), 3 * 46);
        // ...and first-seen order preserves the first plan's prefix.
        assert_eq!(&merged[..shared.len()], shared.s_points());
        // A Laguerre plan contributes its fixed point set exactly once.
        let lag = SPointPlan::new(InversionMethod::laguerre(), &[1.0]);
        let lag_twice = union_s_points([&lag, &lag]);
        assert_eq!(lag_twice.len(), 400);
    }

    #[test]
    fn method_names_round_trip_through_from_name() {
        for method in [InversionMethod::euler(), InversionMethod::laguerre()] {
            let name = method.name();
            let parsed = InversionMethod::from_name(name).unwrap();
            assert_eq!(parsed.name(), name);
        }
        assert!(InversionMethod::from_name("talbot").is_none());
    }
}
