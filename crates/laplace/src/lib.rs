//! # smp-laplace
//!
//! Numerical inversion of Laplace transforms.
//!
//! The passage-time and transient results of the paper are all obtained by computing
//! a Laplace transform `L(s)` at a set of complex points and then inverting it
//! numerically to recover `f(t)` at user-chosen `t`-points.  Two inversion algorithms
//! are implemented, matching Section 4 of the paper:
//!
//! * [`Euler`] — the Euler algorithm of Abate & Whitt (1995).  Robust for densities
//!   with discontinuities or discontinuous derivatives (deterministic / uniform
//!   firing delays), at the cost of `O(k)` transform evaluations *per* `t`-point
//!   (`k` typically 15–50).
//! * [`Laguerre`] — the Laguerre method of Abate, Choudhury & Whitt (1996).  Uses a
//!   fixed set of ~400 transform evaluations *independent of the number of
//!   `t`-points*, but requires the target function to be smooth.
//!
//! The third piece, [`SPointPlan`], captures the paper's key implementation idea:
//! the master process works out *in advance* every `s`-point at which transform
//! values will be needed, deduplicates them, and farms exactly those evaluations out
//! to the workers.  Storing a distribution as its values at the planned points is
//! then a complete, constant-space representation (see `smp-distributions`'s
//! `SampledLst`).
//!
//! Finally [`cdf`] and [`mod@quantile`] post-process inverted values into cumulative
//! distribution curves, reliability quantiles and percentile look-ups (Fig. 5 of the
//! paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdf;
pub mod euler;
pub mod laguerre;
pub mod quantile;
pub mod splan;

pub use cdf::CdfCurve;
pub use euler::{Euler, EulerParams};
pub use laguerre::{Laguerre, LaguerreParams};
pub use quantile::{probability_of_completion_by, quantile, quantiles_from_cdf};
pub use splan::{union_s_points, InversionMethod, SPointPlan, TransformValues};
