//! The Laguerre inversion algorithm of Abate, Choudhury & Whitt (1996).
//!
//! The target function is expanded in Laguerre functions
//!
//! ```text
//!   f(t) = Σ_{n≥0} q_n · l_n(t),     l_n(t) = e^{-t/2} L_n(t)
//! ```
//!
//! whose coefficient generating function is
//!
//! ```text
//!   Q(z) = Σ_{n≥0} q_n zⁿ = (1 − z)⁻¹ · L( (1 + z) / (2 (1 − z)) ).
//! ```
//!
//! The coefficients `q_n` are recovered from `Q` by a Cauchy contour integral on a
//! circle of radius `r < 1`, discretised with the trapezoidal rule over `2N` points.
//! Crucially — and this is why the paper's pipeline offers it as an alternative to
//! Euler — the transform evaluation points `(1 + z_j) / (2 (1 − z_j))` depend only on
//! the algorithm parameters, *not* on the output time `t`: the default configuration
//! evaluates the transform at 400 points total, "independent of m" (the number of
//! `t`-points).
//!
//! The method requires `f` to be smooth (continuous with continuous derivatives); for
//! densities with jumps (deterministic or uniform firing delays) use
//! [`crate::Euler`] instead — the paper makes the same recommendation.

use crate::splan::TransformValues;
use smp_distributions::LaplaceTransform;
use smp_numeric::special::laguerre_functions_upto;
use smp_numeric::Complex64;

/// Tuning parameters for the Laguerre algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaguerreParams {
    /// Number of Laguerre expansion terms retained (`n_max`).
    pub terms: usize,
    /// Half the number of trapezoidal quadrature points on the contour (the total
    /// number of transform evaluations is `2 × half_points`).
    pub half_points: usize,
    /// Radius of the Cauchy contour, `0 < r < 1`.  Smaller radii damp round-off
    /// amplification at high coefficient indices at the cost of aliasing error.
    pub contour_radius: f64,
}

impl Default for LaguerreParams {
    fn default() -> Self {
        // 2 × 200 = 400 transform evaluations, exactly the figure quoted in the paper.
        LaguerreParams {
            terms: 200,
            half_points: 200,
            contour_radius: (1e-8f64).powf(1.0 / (2.0 * 200.0)),
        }
    }
}

impl LaguerreParams {
    /// Total number of transform evaluations (independent of the number of t-points).
    pub fn evaluations(&self) -> usize {
        2 * self.half_points
    }
}

/// The Laguerre inversion operator.
#[derive(Debug, Clone, Default)]
pub struct Laguerre {
    params: LaguerreParams,
}

impl Laguerre {
    /// Creates an inverter with the given parameters.
    pub fn new(params: LaguerreParams) -> Self {
        assert!(params.terms >= 1, "need at least one expansion term");
        assert!(
            params.terms <= params.half_points,
            "terms must not exceed half_points (aliasing)"
        );
        assert!(
            params.contour_radius > 0.0 && params.contour_radius < 1.0,
            "contour radius must lie in (0, 1)"
        );
        Laguerre { params }
    }

    /// Creates an inverter with the default 400-point configuration.
    pub fn standard() -> Self {
        Laguerre::new(LaguerreParams::default())
    }

    /// The parameters in use.
    pub fn params(&self) -> &LaguerreParams {
        &self.params
    }

    /// The contour points `z_j = r·e^{iπj/N}` for `j = 0 … 2N−1`.
    fn contour_points(&self) -> Vec<Complex64> {
        let n = self.params.half_points;
        let r = self.params.contour_radius;
        (0..2 * n)
            .map(|j| Complex64::from_polar(r, std::f64::consts::PI * j as f64 / n as f64))
            .collect()
    }

    /// The `s`-points at which the transform must be evaluated.  Independent of the
    /// output `t`-points.
    pub fn s_points(&self) -> Vec<Complex64> {
        self.contour_points()
            .into_iter()
            .map(|z| (Complex64::ONE + z) / ((Complex64::ONE - z) * 2.0))
            .collect()
    }

    /// Computes the Laguerre expansion coefficients `q_0 … q_{terms−1}` from transform
    /// values laid out in the order returned by [`Laguerre::s_points`].
    pub fn coefficients(&self, values: &[Complex64]) -> Vec<f64> {
        let n = self.params.half_points;
        let r = self.params.contour_radius;
        assert_eq!(
            values.len(),
            2 * n,
            "expected {} transform values, got {}",
            2 * n,
            values.len()
        );
        let contour = self.contour_points();
        // Q(z_j) = L(s_j) / (1 − z_j)
        let q_on_contour: Vec<Complex64> = values
            .iter()
            .zip(&contour)
            .map(|(&v, &z)| v / (Complex64::ONE - z))
            .collect();

        let mut coeffs = Vec::with_capacity(self.params.terms);
        for k in 0..self.params.terms {
            // Trapezoidal rule for the Cauchy integral:
            //   q_k = (1 / (2N r^k)) Σ_j Q(z_j)·e^{-iπjk/N}
            let mut acc = Complex64::ZERO;
            for (j, &q) in q_on_contour.iter().enumerate() {
                let angle = -std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += q * Complex64::from_polar(1.0, angle);
            }
            let qk = acc.scale(1.0 / (2.0 * n as f64 * r.powi(k as i32)));
            coeffs.push(qk.re);
        }
        coeffs
    }

    /// Evaluates the expansion `Σ q_n l_n(t)` at time `t`.
    pub fn evaluate(&self, coefficients: &[f64], t: f64) -> f64 {
        assert!(t >= 0.0, "Laguerre inversion requires t >= 0");
        let basis = laguerre_functions_upto(coefficients.len() as u32 - 1, t);
        coefficients.iter().zip(&basis).map(|(q, l)| q * l).sum()
    }

    /// Inverts a transform at a single `t`-point.
    pub fn invert<L: LaplaceTransform + ?Sized>(&self, transform: &L, t: f64) -> f64 {
        let values: Vec<Complex64> = self.s_points().iter().map(|&s| transform.lst(s)).collect();
        self.evaluate(&self.coefficients(&values), t)
    }

    /// Inverts a transform at many `t`-points, evaluating the transform only once.
    pub fn invert_many<L: LaplaceTransform + ?Sized>(&self, transform: &L, ts: &[f64]) -> Vec<f64> {
        let values: Vec<Complex64> = self.s_points().iter().map(|&s| transform.lst(s)).collect();
        let coeffs = self.coefficients(&values);
        ts.iter().map(|&t| self.evaluate(&coeffs, t)).collect()
    }

    /// Inverts at many `t`-points from a pool of cached transform values computed
    /// against the planned `s`-points (the distributed pipeline's path).
    pub fn invert_many_from(&self, cache: &TransformValues, ts: &[f64]) -> Vec<f64> {
        let values: Vec<Complex64> = self
            .s_points()
            .into_iter()
            .map(|s| cache.get(s).expect("missing planned s-point value"))
            .collect();
        let coeffs = self.coefficients(&values);
        ts.iter().map(|&t| self.evaluate(&coeffs, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn default_uses_400_points() {
        assert_eq!(LaguerreParams::default().evaluations(), 400);
    }

    #[test]
    fn s_points_count_independent_of_t() {
        let laguerre = Laguerre::standard();
        assert_eq!(laguerre.s_points().len(), 400);
    }

    #[test]
    fn inverts_exponential_density() {
        let laguerre = Laguerre::standard();
        let d = Dist::exponential(1.0);
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let f = laguerre.invert(&d, t);
            let expect = (-t).exp();
            assert!((f - expect).abs() < 1e-5, "f({t}) = {f} vs {expect}");
        }
    }

    #[test]
    fn inverts_erlang_density_smooth() {
        let laguerre = Laguerre::standard();
        let d = Dist::erlang(1.0, 4);
        for &t in &[0.5, 1.0, 2.0, 4.0, 8.0] {
            let f = laguerre.invert(&d, t);
            let expect = t.powi(3) * (-t).exp() / 6.0;
            assert!((f - expect).abs() < 1e-5, "f({t}) = {f} vs {expect}");
        }
    }

    #[test]
    fn invert_many_shares_transform_evaluations() {
        let laguerre = Laguerre::standard();
        let d = Dist::erlang(0.8, 2);
        let ts: Vec<f64> = (1..=10).map(|k| k as f64 * 0.5).collect();
        let batch = laguerre.invert_many(&d, &ts);
        for (&t, &v) in ts.iter().zip(&batch) {
            assert!((v - laguerre.invert(&d, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn euler_and_laguerre_agree_on_smooth_density() {
        let laguerre = Laguerre::standard();
        let euler = crate::Euler::standard();
        let d = Dist::mixture(vec![
            (0.5, Dist::erlang(2.0, 3)),
            (0.5, Dist::exponential(0.5)),
        ]);
        for &t in &[0.5, 1.0, 2.0, 4.0] {
            let a = laguerre.invert(&d, t);
            let b = euler.invert(&d, t);
            assert!((a - b).abs() < 1e-4, "t={t}: laguerre {a} vs euler {b}");
        }
    }

    #[test]
    fn coefficients_decay_for_smooth_transform() {
        let laguerre = Laguerre::standard();
        let d = Dist::exponential(1.0);
        let values: Vec<Complex64> = laguerre
            .s_points()
            .iter()
            .map(|&s| Dist::lst(&d, s))
            .collect();
        let coeffs = laguerre.coefficients(&values);
        // For Exp(1), q_n = (1/2)(1/3)^n ... more precisely decays geometrically.
        assert!(coeffs[0].abs() > coeffs[20].abs().max(1e-12));
        assert!(coeffs[150].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "terms must not exceed")]
    fn too_many_terms_rejected() {
        Laguerre::new(LaguerreParams {
            terms: 300,
            half_points: 100,
            contour_radius: 0.9,
        });
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_value_count_rejected() {
        Laguerre::standard().coefficients(&[Complex64::ONE; 3]);
    }
}
