//! Passage-time estimation by independent replications.
//!
//! Replication `i` draws from its own RNG stream derived from `(seed, i)`
//! (see [`replication_seed`]), so for a fixed seed the estimates are
//! **bitwise-identical across runs and across thread counts** — the worker
//! split only decides who executes a replication, never which random numbers
//! it sees.

use crate::engine::SimulationEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_distributions::EmpiricalDistribution;
use smp_smspn::{Marking, SmSpn};

/// The RNG seed of replication `index` under a base `seed`: a SplitMix64-style
/// mix, so per-replication streams are decorrelated and, crucially,
/// independent of how replications are partitioned across threads.
pub fn replication_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Options for passage-time simulation.
#[derive(Debug, Clone, Copy)]
pub struct PassageSimulationOptions {
    /// Number of independent replications.
    pub replications: usize,
    /// Per-replication time horizon; replications that have not reached the target
    /// by then are counted as censored and dropped (with a warning in the result).
    pub max_time: f64,
    /// Per-replication cap on the number of firings.
    pub max_steps: u64,
    /// Number of worker threads (1 = run in the calling thread).  The thread
    /// count never changes the estimates: replication `i` always draws from
    /// the stream seeded by [`replication_seed`]`(seed, i)`.
    pub threads: usize,
    /// Base RNG seed for the per-replication streams.
    pub seed: u64,
}

impl Default for PassageSimulationOptions {
    fn default() -> Self {
        PassageSimulationOptions {
            replications: 10_000,
            max_time: 1e9,
            max_steps: 10_000_000,
            threads: 1,
            seed: 0x5eed,
        }
    }
}

/// The result of a passage-time simulation.
#[derive(Debug)]
pub struct PassageSimulationResult {
    /// Empirical distribution of the observed passage times.
    pub distribution: EmpiricalDistribution,
    /// Number of replications that hit the cut-offs before reaching the target.
    pub censored: usize,
}

/// Estimates the distribution of the time to reach a target marking set from the
/// net's initial marking.
///
/// `target` is an arbitrary marking predicate (e.g. "all voters have voted" or "all
/// polling units have failed").
pub fn simulate_passage_times(
    net: &SmSpn,
    target: impl Fn(&Marking) -> bool + Send + Sync,
    options: &PassageSimulationOptions,
) -> PassageSimulationResult {
    let threads = options.threads.max(1);
    let replications = options.replications;
    if threads == 1 {
        let (samples, censored) = run_replications(net, &target, 0..replications, options);
        return PassageSimulationResult {
            distribution: EmpiricalDistribution::from_samples(samples),
            censored,
        };
    }

    // Contiguous index ranges per worker; joined in worker order the samples
    // come back in replication order, so the result is the single-thread one.
    let per_thread = replications.div_ceil(threads);
    let results: Vec<(Vec<f64>, usize)> = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let target = &target;
            let start = worker * per_thread;
            let end = ((worker + 1) * per_thread).min(replications);
            if start >= end {
                break;
            }
            handles.push(scope.spawn(move |_| run_replications(net, target, start..end, options)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation worker panicked"))
            .collect()
    })
    .expect("simulation scope failed");

    let mut samples = Vec::with_capacity(replications);
    let mut censored = 0;
    for (s, c) in results {
        samples.extend(s);
        censored += c;
    }
    PassageSimulationResult {
        distribution: EmpiricalDistribution::from_samples(samples),
        censored,
    }
}

fn run_replications(
    net: &SmSpn,
    target: &(impl Fn(&Marking) -> bool + ?Sized),
    range: std::ops::Range<usize>,
    options: &PassageSimulationOptions,
) -> (Vec<f64>, usize) {
    let mut samples = Vec::with_capacity(range.len());
    let mut censored = 0usize;
    for index in range {
        let mut rng = StdRng::seed_from_u64(replication_seed(options.seed, index as u64));
        let mut engine = SimulationEngine::new(net);
        match engine.run_until(&mut rng, |m| target(m), options.max_time, options.max_steps) {
            Some(t) => samples.push(t),
            None => censored += 1,
        }
    }
    (samples, censored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_smspn::TransitionSpec;

    fn erlang_chain(stages: usize, rate: f64) -> SmSpn {
        // A token moves through `stages` places, each with an Exp(rate) delay; the
        // passage to the last place is Erlang(rate, stages).
        let mut places: Vec<(String, u32)> = (0..=stages).map(|i| (format!("s{i}"), 0)).collect();
        places[0].1 = 1;
        let mut net = SmSpn::new(places);
        for i in 0..stages {
            net.add_transition(
                TransitionSpec::new(format!("t{i}"))
                    .consumes(i, 1)
                    .produces(i + 1, 1)
                    .distribution(Dist::exponential(rate)),
            );
        }
        // Return transition keeps the model deadlock-free.
        net.add_transition(
            TransitionSpec::new("reset")
                .consumes(stages, 1)
                .produces(0, 1)
                .distribution(Dist::exponential(1.0)),
        );
        net
    }

    #[test]
    fn erlang_passage_mean_and_cdf() {
        let net = erlang_chain(3, 2.0);
        let options = PassageSimulationOptions {
            replications: 30_000,
            threads: 1,
            ..Default::default()
        };
        let result = simulate_passage_times(&net, |m| m.get(3) == 1, &options);
        assert_eq!(result.censored, 0);
        let d = &result.distribution;
        assert_eq!(d.len(), 30_000);
        // Erlang(2, 3): mean 1.5, CDF known in closed form.
        assert!((d.mean() - 1.5).abs() < 4.0 * d.ci95_half_width());
        let analytic_cdf = Dist::erlang(2.0, 3).cdf(1.5).unwrap();
        assert!((d.cdf(1.5) - analytic_cdf).abs() < 0.02);
    }

    #[test]
    fn multithreaded_is_bitwise_identical_to_single_thread() {
        // Per-replication seeding makes the thread count an execution detail:
        // the multi-threaded run is *the same* estimate, not merely a
        // statistically compatible one.
        let net = erlang_chain(2, 1.0);
        let single = simulate_passage_times(
            &net,
            |m| m.get(2) == 1,
            &PassageSimulationOptions {
                replications: 20_000,
                threads: 1,
                ..Default::default()
            },
        );
        let multi = simulate_passage_times(
            &net,
            |m| m.get(2) == 1,
            &PassageSimulationOptions {
                replications: 20_000,
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(multi.distribution.len(), 20_000);
        assert_eq!(single.distribution.samples(), multi.distribution.samples());
        assert_eq!(single.censored, multi.censored);
    }

    #[test]
    fn censoring_counts_unreached_targets() {
        let net = erlang_chain(2, 1.0);
        let result = simulate_passage_times(
            &net,
            |m| m.get(2) == 5, // impossible: only one token
            &PassageSimulationOptions {
                replications: 50,
                max_steps: 100,
                ..Default::default()
            },
        );
        assert_eq!(result.censored, 50);
        assert!(result.distribution.is_empty());
    }

    #[test]
    fn immediate_target_gives_zero_passage() {
        let net = erlang_chain(2, 1.0);
        let result = simulate_passage_times(
            &net,
            |m| m.get(0) == 1, // already true in the initial marking
            &PassageSimulationOptions {
                replications: 10,
                ..Default::default()
            },
        );
        assert_eq!(result.distribution.len(), 10);
        assert_eq!(result.distribution.max(), 0.0);
    }
}
