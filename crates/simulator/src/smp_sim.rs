//! Simulation driven directly off a generated semi-Markov process.
//!
//! Simulating the SM-SPN and simulating the SMP produced by its reachability
//! analysis must give statistically identical answers; running both is a strong
//! end-to-end check on the state-space generator and is also useful when a model is
//! specified directly at the state level.

use rand::Rng;
use smp_core::{SemiMarkovProcess, StateSet};
use smp_distributions::EmpiricalDistribution;

/// Simulates one passage from `source` into `targets`, returning the elapsed time.
///
/// Returns `None` if the passage has not completed within `max_steps` transitions.
pub fn sample_passage<R: Rng + ?Sized>(
    smp: &SemiMarkovProcess,
    source: usize,
    targets: &StateSet,
    max_steps: u64,
    rng: &mut R,
) -> Option<f64> {
    let mut state = source;
    let mut clock = 0.0;
    for _ in 0..max_steps {
        let (next, delay) = smp.sample_step(state, rng);
        clock += delay;
        state = next;
        if targets.contains(state) {
            return Some(clock);
        }
    }
    None
}

/// Estimates the passage-time distribution from `source` into `targets` with
/// `replications` independent passages.
pub fn simulate_smp_passage_times<R: Rng + ?Sized>(
    smp: &SemiMarkovProcess,
    source: usize,
    targets: &StateSet,
    replications: usize,
    max_steps: u64,
    rng: &mut R,
) -> EmpiricalDistribution {
    let mut samples = Vec::with_capacity(replications);
    for _ in 0..replications {
        if let Some(t) = sample_passage(smp, source, targets, max_steps, rng) {
            samples.push(t);
        }
    }
    EmpiricalDistribution::from_samples(samples)
}

/// Estimates `P(Z(t) ∈ targets | Z(0) = source)` on a time grid.
pub fn simulate_smp_transient<R: Rng + ?Sized>(
    smp: &SemiMarkovProcess,
    source: usize,
    targets: &StateSet,
    t_points: &[f64],
    replications: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(t_points.windows(2).all(|w| w[0] < w[1]));
    let horizon = *t_points.last().expect("non-empty grid");
    let mut hits = vec![0u64; t_points.len()];
    for _ in 0..replications {
        let mut state = source;
        let mut clock = 0.0;
        let mut grid_index = 0usize;
        while grid_index < t_points.len() && clock <= horizon {
            let (next, delay) = smp.sample_step(state, rng);
            let new_clock = clock + delay;
            while grid_index < t_points.len() && new_clock > t_points[grid_index] {
                if targets.contains(state) {
                    hits[grid_index] += 1;
                }
                grid_index += 1;
            }
            state = next;
            clock = new_clock;
        }
    }
    hits.into_iter()
        .map(|h| h as f64 / replications as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smp_core::SmpBuilder;
    use smp_distributions::Dist;

    fn chain() -> SemiMarkovProcess {
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        b.build().unwrap()
    }

    #[test]
    fn smp_passage_matches_erlang() {
        let smp = chain();
        let targets = StateSet::new(3, &[2]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let d = simulate_smp_passage_times(&smp, 0, &targets, 30_000, 1_000, &mut rng);
        assert_eq!(d.len(), 30_000);
        assert!((d.mean() - 1.0).abs() < 4.0 * d.ci95_half_width());
        let analytic = Dist::erlang(2.0, 2).cdf(1.0).unwrap();
        assert!((d.cdf(1.0) - analytic).abs() < 0.02);
    }

    #[test]
    fn unreachable_passage_returns_empty() {
        // Two disjoint cycles.
        let mut b = SmpBuilder::new(4);
        b.add_transition(0, 1, 1.0, Dist::exponential(1.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        b.add_transition(2, 3, 1.0, Dist::exponential(1.0));
        b.add_transition(3, 2, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let targets = StateSet::new(4, &[2]).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        assert!(sample_passage(&smp, 0, &targets, 500, &mut rng).is_none());
        let d = simulate_smp_passage_times(&smp, 0, &targets, 20, 200, &mut rng);
        assert!(d.is_empty());
    }

    #[test]
    fn smp_transient_matches_analytic_ctmc() {
        let mut b = SmpBuilder::new(2);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let targets = StateSet::new(2, &[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let ts = vec![0.3, 0.8, 2.0];
        let probs = simulate_smp_transient(&smp, 0, &targets, &ts, 40_000, &mut rng);
        for (&t, &p) in ts.iter().zip(&probs) {
            let expect = 1.0 / 3.0 + 2.0 / 3.0 * (-3.0f64 * t).exp();
            assert!((p - expect).abs() < 0.02, "P({t}) = {p} vs {expect}");
        }
    }
}
