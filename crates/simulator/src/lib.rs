//! # smp-simulator
//!
//! Discrete-event simulation of SM-SPNs and semi-Markov processes.
//!
//! The paper validates every analytic result against "a simulation derived from the
//! same high-level model" (the "Simulation" curves of Figs. 4 and 6).  This crate is
//! that simulator: it executes the SM-SPN semantics directly — priority-enabled
//! transitions chosen probabilistically by weight, holding times sampled from the
//! chosen transition's firing distribution — and estimates passage-time densities,
//! CDFs and transient state probabilities from independent replications.
//!
//! * [`engine`] — a single trajectory stepper over an `SmSpn`;
//! * [`passage`] — passage-time sampling (optionally multi-threaded) producing an
//!   [`smp_distributions::EmpiricalDistribution`];
//! * [`transient`] — transient state-probability estimation on a time grid;
//! * [`smp_sim`] — the same measurements driven directly off a `SemiMarkovProcess`
//!   (used to cross-validate the state-space generator: simulating the net and
//!   simulating its generated SMP must agree).

pub mod engine;
pub mod passage;
pub mod smp_sim;
pub mod transient;

pub use engine::{SimulationEngine, Step};
pub use passage::{simulate_passage_times, PassageSimulationOptions};
pub use transient::{simulate_transient, TransientSimulationOptions};
