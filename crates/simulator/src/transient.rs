//! Transient state-probability estimation by independent replications.
//!
//! Like [`crate::passage`], replication `i` draws from its own RNG stream
//! derived from `(seed, i)`, so for a fixed seed the estimates are
//! bitwise-identical across runs and thread counts.

use crate::engine::SimulationEngine;
use crate::passage::replication_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smp_smspn::{Marking, SmSpn};

/// Options for transient simulation.
#[derive(Debug, Clone, Copy)]
pub struct TransientSimulationOptions {
    /// Number of independent replications.
    pub replications: usize,
    /// Per-replication cap on the number of firings.
    pub max_steps: u64,
    /// Base RNG seed for the per-replication streams.
    pub seed: u64,
    /// Number of worker threads (1 = run in the calling thread).  The thread
    /// count never changes the estimates.
    pub threads: usize,
}

impl Default for TransientSimulationOptions {
    fn default() -> Self {
        TransientSimulationOptions {
            replications: 10_000,
            max_steps: 10_000_000,
            seed: 0xd1ce,
            threads: 1,
        }
    }
}

/// Estimates `P(Z(t) ∈ target)` at each time of `t_points` by simulating
/// `replications` independent trajectories from the net's initial marking and
/// recording, for each grid time, whether the trajectory's marking satisfied the
/// target predicate at that instant.
///
/// `t_points` must be sorted in increasing order.
pub fn simulate_transient(
    net: &SmSpn,
    target: impl Fn(&Marking) -> bool + Send + Sync,
    t_points: &[f64],
    options: &TransientSimulationOptions,
) -> Vec<f64> {
    assert!(!t_points.is_empty(), "at least one t-point is required");
    assert!(
        t_points.windows(2).all(|w| w[0] < w[1]),
        "t-points must be strictly increasing"
    );
    let threads = options.threads.max(1);
    let replications = options.replications;

    let hits = if threads == 1 {
        run_transient_replications(net, &target, t_points, 0..replications, options)
    } else {
        let per_thread = replications.div_ceil(threads);
        let partial: Vec<Vec<u64>> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for worker in 0..threads {
                let target = &target;
                let start = worker * per_thread;
                let end = ((worker + 1) * per_thread).min(replications);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move |_| {
                    run_transient_replications(net, target, t_points, start..end, options)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("transient simulation worker panicked"))
                .collect()
        })
        .expect("transient simulation scope failed");
        // Integer hit counts: summation order cannot change the result.
        let mut total = vec![0u64; t_points.len()];
        for part in partial {
            for (slot, h) in total.iter_mut().zip(part) {
                *slot += h;
            }
        }
        total
    };

    hits.into_iter()
        .map(|h| h as f64 / options.replications as f64)
        .collect()
}

/// Runs the replications of one index range, returning per-grid-point hit
/// counts.
fn run_transient_replications(
    net: &SmSpn,
    target: &(impl Fn(&Marking) -> bool + ?Sized),
    t_points: &[f64],
    range: std::ops::Range<usize>,
    options: &TransientSimulationOptions,
) -> Vec<u64> {
    let horizon = *t_points.last().expect("non-empty");
    let mut hits = vec![0u64; t_points.len()];
    for index in range {
        let mut rng = StdRng::seed_from_u64(replication_seed(options.seed, index as u64));
        let mut engine = SimulationEngine::new(net);
        let mut grid_index = 0usize;
        let mut previous_marking = engine.marking().clone();
        // Walk the trajectory; whenever the clock passes grid points, the state that
        // was occupied across each of them is the marking *before* the jump.
        while grid_index < t_points.len()
            && engine.clock() <= horizon
            && engine.steps() < options.max_steps
        {
            previous_marking = engine.marking().clone();
            if engine.step(&mut rng).is_none() {
                break;
            }
            while grid_index < t_points.len() && engine.clock() > t_points[grid_index] {
                if target(&previous_marking) {
                    hits[grid_index] += 1;
                }
                grid_index += 1;
            }
        }
        // If the trajectory ended (deadlock or step cap) before the horizon, the
        // last marking persists for all remaining grid points.
        while grid_index < t_points.len() {
            if target(&previous_marking) {
                hits[grid_index] += 1;
            }
            grid_index += 1;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_numeric::stats::linspace;
    use smp_smspn::TransitionSpec;

    /// Two-state CTMC as an SM-SPN: rates λ = 2 (a→b), μ = 1 (b→a).
    fn two_state_net() -> SmSpn {
        let mut net = SmSpn::with_places(&[("a", 1), ("b", 0)]);
        net.add_transition(
            TransitionSpec::new("ab")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::exponential(2.0)),
        );
        net.add_transition(
            TransitionSpec::new("ba")
                .consumes(1, 1)
                .produces(0, 1)
                .distribution(Dist::exponential(1.0)),
        );
        net
    }

    #[test]
    fn matches_ctmc_closed_form() {
        let net = two_state_net();
        let ts = vec![0.25, 0.5, 1.0, 2.0, 4.0];
        let probs = simulate_transient(
            &net,
            |m| m.get(0) == 1,
            &ts,
            &TransientSimulationOptions {
                replications: 40_000,
                ..Default::default()
            },
        );
        for (&t, &p) in ts.iter().zip(&probs) {
            let expect = 1.0 / 3.0 + 2.0 / 3.0 * (-3.0f64 * t).exp();
            assert!((p - expect).abs() < 0.02, "P(a at {t}) = {p} vs {expect}");
        }
    }

    #[test]
    fn probabilities_start_at_one_for_initial_state() {
        let net = two_state_net();
        let probs = simulate_transient(
            &net,
            |m| m.get(0) == 1,
            &[1e-6],
            &TransientSimulationOptions {
                replications: 2_000,
                ..Default::default()
            },
        );
        assert!(probs[0] > 0.99);
    }

    #[test]
    fn complementary_targets_sum_to_one() {
        let net = two_state_net();
        let ts = linspace(0.2, 3.0, 8);
        let opts = TransientSimulationOptions {
            replications: 5_000,
            ..Default::default()
        };
        let in_a = simulate_transient(&net, |m| m.get(0) == 1, &ts, &opts);
        let in_b = simulate_transient(&net, |m| m.get(1) == 1, &ts, &opts);
        for (pa, pb) in in_a.iter().zip(&in_b) {
            // Per-replication seeding means both runs walk the *same* trajectories,
            // so complementary targets partition every hit exactly (up to the
            // two divisions' rounding).
            assert!((pa + pb - 1.0).abs() < 1e-12, "{pa} + {pb}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_estimate() {
        let net = two_state_net();
        let ts = linspace(0.2, 3.0, 6);
        let single = simulate_transient(
            &net,
            |m| m.get(0) == 1,
            &ts,
            &TransientSimulationOptions {
                replications: 4_000,
                threads: 1,
                ..Default::default()
            },
        );
        let multi = simulate_transient(
            &net,
            |m| m.get(0) == 1,
            &ts,
            &TransientSimulationOptions {
                replications: 4_000,
                threads: 3,
                ..Default::default()
            },
        );
        assert_eq!(single, multi);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_grid_rejected() {
        let net = two_state_net();
        simulate_transient(
            &net,
            |_| true,
            &[1.0, 0.5],
            &TransientSimulationOptions::default(),
        );
    }
}
