//! Single-trajectory execution of an SM-SPN.

use rand::Rng;
use smp_smspn::enabling::firing_probabilities;
use smp_smspn::{Marking, SmSpn};

/// One executed firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Index of the transition that fired.
    pub transition: usize,
    /// The sampled holding time before the firing.
    pub delay: f64,
    /// The marking reached after the firing.
    pub marking: Marking,
}

/// Executes one trajectory of an SM-SPN.
///
/// The engine follows the SM-SPN semantics of the paper exactly: in each marking the
/// *priority-enabled* transitions compete by weight (probabilistic choice, not a
/// race), and the sojourn in the marking is drawn from the *chosen* transition's
/// firing-time distribution evaluated in that marking.
#[derive(Debug)]
pub struct SimulationEngine<'a> {
    net: &'a SmSpn,
    marking: Marking,
    clock: f64,
    steps: u64,
}

impl<'a> SimulationEngine<'a> {
    /// Starts a trajectory from the net's initial marking.
    pub fn new(net: &'a SmSpn) -> Self {
        SimulationEngine {
            net,
            marking: net.initial_marking().clone(),
            clock: 0.0,
            steps: 0,
        }
    }

    /// Starts a trajectory from an explicit marking.
    pub fn from_marking(net: &'a SmSpn, marking: Marking) -> Self {
        assert_eq!(marking.len(), net.num_places(), "marking size mismatch");
        SimulationEngine {
            net,
            marking,
            clock: 0.0,
            steps: 0,
        }
    }

    /// The current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The current simulation time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The number of firings executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one firing.  Returns `None` when no transition is enabled (the net
    /// deadlocks), leaving the state unchanged.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Step> {
        let choices = firing_probabilities(self.net, &self.marking);
        if choices.is_empty() {
            return None;
        }
        // Probabilistic choice by weight.
        let mut u: f64 = rng.gen_range(0.0..1.0);
        let mut chosen = choices[choices.len() - 1].0;
        for (transition, probability) in &choices {
            if u < *probability {
                chosen = *transition;
                break;
            }
            u -= probability;
        }
        let spec = &self.net.transitions()[chosen];
        let delay = spec.distribution_in(&self.marking).sample(rng);
        self.clock += delay;
        self.marking = spec.fire(&self.marking);
        self.steps += 1;
        Some(Step {
            transition: chosen,
            delay,
            marking: self.marking.clone(),
        })
    }

    /// Runs until `predicate` holds on the current marking, the clock passes
    /// `max_time`, or `max_steps` firings have happened.  Returns the clock value at
    /// which the predicate first held, or `None` if the run was cut off first.
    pub fn run_until<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        mut predicate: impl FnMut(&Marking) -> bool,
        max_time: f64,
        max_steps: u64,
    ) -> Option<f64> {
        if predicate(&self.marking) {
            return Some(self.clock);
        }
        while self.clock <= max_time && self.steps < max_steps {
            self.step(rng)?;
            if predicate(&self.marking) {
                return Some(self.clock);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smp_distributions::Dist;
    use smp_numeric::stats::RunningStats;
    use smp_smspn::TransitionSpec;

    fn ping_pong() -> SmSpn {
        let mut net = SmSpn::with_places(&[("a", 1), ("b", 0)]);
        net.add_transition(
            TransitionSpec::new("go")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::exponential(2.0)),
        );
        net.add_transition(
            TransitionSpec::new("back")
                .consumes(1, 1)
                .produces(0, 1)
                .distribution(Dist::deterministic(0.5)),
        );
        net
    }

    #[test]
    fn steps_advance_clock_and_marking() {
        let net = ping_pong();
        let mut rng = StdRng::seed_from_u64(1);
        let mut engine = SimulationEngine::new(&net);
        assert_eq!(engine.clock(), 0.0);
        let s1 = engine.step(&mut rng).unwrap();
        assert_eq!(s1.transition, 0);
        assert_eq!(engine.marking().as_slice(), &[0, 1]);
        assert!(engine.clock() > 0.0);
        let s2 = engine.step(&mut rng).unwrap();
        assert_eq!(s2.transition, 1);
        assert_eq!(s2.delay, 0.5);
        assert_eq!(engine.marking().as_slice(), &[1, 0]);
        assert_eq!(engine.steps(), 2);
    }

    #[test]
    fn run_until_returns_hitting_time() {
        let net = ping_pong();
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            let mut engine = SimulationEngine::new(&net);
            let t = engine
                .run_until(&mut rng, |m| m.get(1) == 1, 1e9, 1_000)
                .unwrap();
            stats.push(t);
        }
        // Hitting time of "token in b" is Exp(2): mean 0.5.
        assert!((stats.mean() - 0.5).abs() < 4.0 * stats.ci95_half_width());
    }

    #[test]
    fn run_until_respects_cutoffs() {
        let net = ping_pong();
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = SimulationEngine::new(&net);
        // Impossible predicate with tiny step budget.
        assert_eq!(
            engine.run_until(&mut rng, |m| m.get(0) == 99, 1e9, 10),
            None
        );
        assert_eq!(engine.steps(), 10);
    }

    #[test]
    fn deadlocked_net_returns_none() {
        let mut net = SmSpn::with_places(&[("p", 1), ("q", 0)]);
        net.add_transition(
            TransitionSpec::new("once")
                .consumes(0, 1)
                .produces(1, 1)
                .distribution(Dist::deterministic(1.0)),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut engine = SimulationEngine::new(&net);
        assert!(engine.step(&mut rng).is_some());
        assert!(engine.step(&mut rng).is_none());
        assert_eq!(engine.marking().as_slice(), &[0, 1]);
    }

    #[test]
    fn weights_respected_in_choice() {
        let mut net = SmSpn::with_places(&[("src", 1), ("a", 0), ("b", 0)]);
        net.add_transition(
            TransitionSpec::new("to_a")
                .consumes(0, 1)
                .produces(1, 1)
                .weight(1.0)
                .distribution(Dist::exponential(1.0)),
        );
        net.add_transition(
            TransitionSpec::new("to_b")
                .consumes(0, 1)
                .produces(2, 1)
                .weight(4.0)
                .distribution(Dist::exponential(1.0)),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut to_b = 0;
        let n = 50_000;
        for _ in 0..n {
            let mut engine = SimulationEngine::new(&net);
            engine.step(&mut rng).unwrap();
            if engine.marking().get(2) == 1 {
                to_b += 1;
            }
        }
        let frac = to_b as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "fraction to b: {frac}");
    }

    #[test]
    fn from_marking_starts_elsewhere() {
        let net = ping_pong();
        let engine = SimulationEngine::from_marking(&net, Marking::new(vec![0, 1]));
        assert_eq!(engine.marking().as_slice(), &[0, 1]);
    }
}
