//! Seed-determinism regression tests: the simulator is the reference the
//! analytic engines are validated against, so its estimates must be exactly
//! reproducible — same seed ⇒ bitwise-identical passage and transient
//! estimates across runs *and across thread counts*.

use smp_distributions::Dist;
use smp_numeric::stats::linspace;
use smp_simulator::passage::replication_seed;
use smp_simulator::{
    simulate_passage_times, simulate_transient, PassageSimulationOptions,
    TransientSimulationOptions,
};
use smp_smspn::{SmSpn, TransitionSpec};

/// A small open-ended net: a token walks a 3-stage chain with mixed
/// distributions and resets, so trajectories have real branching and
/// non-exponential holding times.
fn mixed_chain() -> SmSpn {
    let mut net = SmSpn::with_places(&[("s0", 1), ("s1", 0), ("s2", 0), ("s3", 0)]);
    net.add_transition(
        TransitionSpec::new("t0")
            .consumes(0, 1)
            .produces(1, 1)
            .distribution(Dist::erlang(2.0, 2)),
    );
    net.add_transition(
        TransitionSpec::new("t1")
            .consumes(1, 1)
            .produces(2, 1)
            .distribution(Dist::uniform(0.2, 1.0)),
    );
    net.add_transition(
        TransitionSpec::new("t1-back")
            .consumes(1, 1)
            .produces(0, 1)
            .distribution(Dist::exponential(0.5)),
    );
    net.add_transition(
        TransitionSpec::new("t2")
            .consumes(2, 1)
            .produces(3, 1)
            .distribution(Dist::exponential(1.5)),
    );
    net.add_transition(
        TransitionSpec::new("reset")
            .consumes(3, 1)
            .produces(0, 1)
            .distribution(Dist::deterministic(0.3)),
    );
    net
}

#[test]
fn passage_estimates_are_bitwise_identical_across_runs_and_thread_counts() {
    let net = mixed_chain();
    let mut reference: Option<(Vec<f64>, usize)> = None;
    // Two repeats at each thread count: identical across *runs* and across
    // *threads* (including a count that does not divide the replications).
    for &threads in &[1usize, 1, 2, 3, 4] {
        let result = simulate_passage_times(
            &net,
            |m| m.get(3) == 1,
            &PassageSimulationOptions {
                replications: 5_000,
                threads,
                seed: 0xfeed,
                ..Default::default()
            },
        );
        let key = (result.distribution.samples().to_vec(), result.censored);
        match &reference {
            None => reference = Some(key),
            Some(expect) => {
                assert_eq!(expect.0, key.0, "samples differ with {threads} thread(s)");
                assert_eq!(
                    expect.1, key.1,
                    "censoring differs with {threads} thread(s)"
                );
            }
        }
    }
    // A different seed genuinely changes the draw.
    let other = simulate_passage_times(
        &net,
        |m| m.get(3) == 1,
        &PassageSimulationOptions {
            replications: 5_000,
            threads: 2,
            seed: 0xbeef,
            ..Default::default()
        },
    );
    assert_ne!(reference.unwrap().0, other.distribution.samples());
}

#[test]
fn transient_estimates_are_bitwise_identical_across_runs_and_thread_counts() {
    let net = mixed_chain();
    let ts = linspace(0.25, 8.0, 12);
    let mut reference: Option<Vec<f64>> = None;
    for &threads in &[1usize, 1, 2, 5] {
        let probs = simulate_transient(
            &net,
            |m| m.get(0) == 1,
            &ts,
            &TransientSimulationOptions {
                replications: 3_000,
                threads,
                seed: 0xfeed,
                ..Default::default()
            },
        );
        match &reference {
            None => reference = Some(probs),
            Some(expect) => assert_eq!(expect, &probs, "differs with {threads} thread(s)"),
        }
    }
    let other = simulate_transient(
        &net,
        |m| m.get(0) == 1,
        &ts,
        &TransientSimulationOptions {
            replications: 3_000,
            threads: 2,
            seed: 0xbeef,
            ..Default::default()
        },
    );
    assert_ne!(reference.unwrap(), other);
}

#[test]
fn replication_seed_is_a_pure_decorrelating_mix() {
    // Deterministic…
    assert_eq!(replication_seed(7, 42), replication_seed(7, 42));
    // …distinct across replications and base seeds…
    assert_ne!(replication_seed(7, 0), replication_seed(7, 1));
    assert_ne!(replication_seed(7, 0), replication_seed(8, 0));
    // …and not trivially sequential (adjacent indices land far apart).
    let a = replication_seed(7, 1);
    let b = replication_seed(7, 2);
    assert!(a.abs_diff(b) > 1 << 32, "{a} vs {b}");
}
