//! # smp-pipeline
//!
//! The distributed master–worker analysis pipeline of Section 4 of the paper.
//!
//! The paper's architecture: the master computes in advance the `s`-values at which
//! the passage-time transform must be known, places them in a **global work queue**,
//! and slave processors repeatedly request the next available `s`-value, build the
//! matrices `U` and `U'`, run the iterative algorithm to convergence and return the
//! transform value.  Results are cached in memory **and on disk** (checkpointing);
//! once every value has arrived, the master performs the final Laplace inversion.
//! Because no inter-slave communication is needed, the pipeline scales almost
//! linearly (Table 2).
//!
//! ## Transports
//!
//! The original tool ran on a cluster of PCs over 100 Mbps Ethernet via a
//! master–slave message-passing harness.  That layer is abstracted behind the
//! [`transport::Transport`] trait, so one planning/caching/checkpointing core
//! ([`DistributedPipeline::execute`]) drives three interchangeable backends:
//!
//! * [`transport::InProcess`] (default) — worker threads stand in for slave
//!   processors, a shared lock-protected queue is the global work queue;
//! * [`transport::SimulatedLatency`] — the same threads plus a configurable
//!   per-message delay and wire-byte accounting, for Table-2 style scalability
//!   measurements with a network in the loop;
//! * [`transport::TcpTransport`] — real worker **processes** over
//!   length-prefixed frames on TCP sockets (`smpq worker --connect`), which
//!   rebuild their evaluators from serializable [`transform::TransformSpec`]s
//!   and survive mid-run disconnects by requeueing outstanding chunks.
//!
//! The scheduling, caching, checkpointing and convergence code paths are
//! identical across backends — a TCP run inverts from bit-identical transform
//! values — and the closure-based [`DistributedPipeline::run`] remains as an
//! in-process-only convenience (closures cannot cross a process boundary; see
//! the workspace `README.md` for the two-terminal walkthrough).
//!
//! ## Batch jobs
//!
//! The paper amortises transform evaluations across many time points and
//! measures, caching values "both within and across successive queries".  The
//! pipeline therefore solves whole [`BatchJob`]s: N [`MeasureSpec`]s (densities,
//! CDFs via the `/s` trick, transients) over shared or distinct time grids, with
//! per-transform union planning, a measure-keyed cache/checkpoint, and chunked
//! work dispatch so channel and lock traffic is one round-trip per *chunk*, not
//! per point.  Single-measure [`DistributedPipeline::run`] /
//! [`DistributedPipeline::run_cdf`] are thin wrappers over the same machinery.
//!
//! * [`work`] — the global chunked `s`-point work queue;
//! * [`batch`] — measure and batch-job specifications and their results;
//! * [`transform`] — serializable evaluator descriptions ([`TransformSpec`])
//!   and their reconstruction into solvers on a worker;
//! * [`transport`] — the pluggable master⇄worker backends;
//! * [`wire`] — the shared field/frame encoding (checkpoint records and TCP
//!   frames are built from the same primitives);
//! * [`cache`] — the measure-keyed in-memory result cache shared between
//!   workers and master;
//! * [`checkpoint`] — append-only on-disk checkpoint files (legacy and
//!   measure-tagged records) and their recovery;
//! * [`worker`] — the slave loop: pull a chunk, evaluate, (optionally delay),
//!   push one result message;
//! * [`master`] — the orchestrating [`DistributedPipeline`];
//! * [`shard`] — row-sharded distributed SpMV sessions: each worker holds
//!   one contiguous `O(N/shards)` row block of the state space and the
//!   Laplace-domain iteration runs as lockstep sparse products with a
//!   per-round boundary (halo) exchange — bitwise identical to the
//!   single-machine solve for any worker count;
//! * [`server`] — the always-on query daemon behind `smpq serve`: the
//!   request/reply protocol, fingerprint-keyed caches, admission control
//!   and the standing worker pool;
//! * [`client`] — the matching client side (`smpq query` / `smpq shutdown`);
//! * [`metrics`] — timing, speedup and efficiency reporting (Table 2).

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod client;
pub mod engine;
pub mod master;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod transform;
pub mod transport;
pub mod wire;
pub mod work;
pub mod worker;

pub use batch::{BatchJob, BatchResult, MeasureKind, MeasureResult, MeasureSpec};
pub use client::{query_with_retry, QueryClient, QueryError, RetryPolicy};
pub use engine::{
    uniformization_applies, AnalyticEngine, DistributedEngine, PhaseChainCache, ShardBackend,
    SimulationEngine, SimulationOptions, UniformizationEngine,
};
pub use master::{
    DistributedPipeline, PipelineError, PipelineOptions, PipelineResult, RUN_CDF_TRANSFORM_KEY,
};
pub use metrics::{run_scalability_sweep, ScalabilityRow};
pub use server::{
    PoolHealth, PoolSpec, QueryReply, QueryRequest, QueryServer, QueryServerOptions, Refusal,
    RefusalKind, SHUTDOWN_ACK, SHUTDOWN_REQUEST,
};
pub use shard::{
    serve_slices, FaultyChannel, LoopbackSlice, ShardedOutcome, SliceChannel, SliceFleet,
    SliceServeSummary, SliceWorkerSession, SolveRecovery, TcpSliceChannel,
};
pub use transform::{
    model_fingerprint, CompareOp, CompiledModelSet, CompiledSetCache, DistSpec, ModelSpec,
    ResolveTarget, TargetResolveError, TargetSpec, TransformSpec,
};
pub use transport::{
    run_tcp_worker, splitmix64, Backoff, FaultKind, FaultPlan, FaultyStream, FaultyTransport,
    InProcess, SimulatedLatency, TcpTransport, TcpWorkerOptions, TcpWorkerSummary, Transport,
    TransportReport,
};
