//! # smp-pipeline
//!
//! The distributed master–worker analysis pipeline of Section 4 of the paper.
//!
//! The paper's architecture: the master computes in advance the `s`-values at which
//! the passage-time transform must be known, places them in a **global work queue**,
//! and slave processors repeatedly request the next available `s`-value, build the
//! matrices `U` and `U'`, run the iterative algorithm to convergence and return the
//! transform value.  Results are cached in memory **and on disk** (checkpointing);
//! once every value has arrived, the master performs the final Laplace inversion.
//! Because no inter-slave communication is needed, the pipeline scales almost
//! linearly (Table 2).
//!
//! ## Substitution note
//!
//! The original tool ran on a cluster of PCs over 100 Mbps Ethernet via a
//! master–slave message-passing harness.  Rust MPI bindings are not mature enough to
//! depend on here, and the algorithm requires no inter-worker communication, so this
//! crate reproduces the architecture **in-process**: worker threads stand in for
//! slave processors, a shared lock-protected queue is the global work queue, and an
//! optional, configurable per-result latency simulates the network round-trip.  The
//! scheduling, caching, checkpointing and convergence code paths are identical to
//! what a multi-host deployment would execute; only the transport differs (see
//! the workspace `README.md`).
//!
//! * [`work`] — the global `s`-point work queue;
//! * [`cache`] — the in-memory result cache shared between workers and master;
//! * [`checkpoint`] — append-only on-disk checkpoint files and their recovery;
//! * [`worker`] — the slave loop: pull, evaluate, (optionally delay), push result;
//! * [`master`] — the orchestrating [`DistributedPipeline`];
//! * [`metrics`] — timing, speedup and efficiency reporting (Table 2).

pub mod cache;
pub mod checkpoint;
pub mod master;
pub mod metrics;
pub mod work;
pub mod worker;

pub use master::{DistributedPipeline, PipelineOptions, PipelineResult};
pub use metrics::{run_scalability_sweep, ScalabilityRow};
