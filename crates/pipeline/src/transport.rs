//! Pluggable master⇄worker transports.
//!
//! The paper's pipeline ran on a cluster of PCs: the master placed `s`-point
//! evaluations in a global work queue and slave processors collected them over
//! a message-passing layer.  This module abstracts that layer behind the
//! [`Transport`] trait so the *same* planning, caching, checkpointing and
//! inversion code drives three deployments:
//!
//! * [`InProcess`] — worker threads and crossbeam channels (the default; the
//!   substitution documented in the crate root),
//! * [`SimulatedLatency`] — in-process threads plus a configurable per-message
//!   delay and wire-size accounting, standing in for the cluster's network
//!   round-trips when measuring Table-2 style scalability,
//! * [`TcpTransport`] — real worker *processes* on real sockets: the master
//!   listens, each `smpq worker --connect HOST:PORT` dials in, receives the
//!   job's [`TransformSpec`]s, rebuilds the evaluators from bytes and answers
//!   chunks until the queue drains.  A worker that disconnects mid-run loses
//!   nothing: its outstanding chunk is requeued and the surviving workers
//!   finish it.
//!
//! All three speak about the same [`ExecutionPlan`]; only [`TcpTransport`]
//! requires every measure to carry a serializable spec (closures cannot cross
//! a process boundary — that is the whole point of [`TransformSpec`]).

use crate::master::PipelineError;
use crate::transform::{CompiledEvaluator, CompiledModelSet, CompiledSetCache, TransformSpec};
use crate::wire::{frame_wire_size, read_frame, write_frame, Frame, WIRE_VERSION};
use crate::work::{WorkItem, WorkQueue};
use crate::worker::{run_batch_worker, TransformFn, WorkItemOutcome, WorkerMessage, WorkerStats};
use crossbeam::channel::unbounded;
use smp_numeric::Complex64;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How one measure of a plan is evaluated.
pub enum Evaluator<'a> {
    /// A live in-process closure (cannot cross a process boundary).
    Closure(&'a TransformFn<'a>),
    /// A serializable description a remote worker can rebuild.
    Spec(&'a TransformSpec),
}

impl std::fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Evaluator::Closure(_) => f.write_str("Evaluator::Closure(..)"),
            Evaluator::Spec(spec) => f.debug_tuple("Evaluator::Spec").field(spec).finish(),
        }
    }
}

impl Clone for Evaluator<'_> {
    fn clone(&self) -> Self {
        *self
    }
}

impl Copy for Evaluator<'_> {}

impl std::fmt::Debug for ExecutionPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionPlan")
            .field("evaluators", &self.evaluators)
            .field("items", &self.items.len())
            .field("chunk_size", &self.chunk_size)
            .field("method", &self.method)
            .finish()
    }
}

/// Everything a transport needs to run one distributed evaluation: the
/// per-measure evaluators, the outstanding work items, and the dispatch chunk
/// size.  Produced by `DistributedPipeline::execute` after planning and cache
/// dedup.
pub struct ExecutionPlan<'a> {
    /// Per-measure evaluators, indexed by [`WorkItem::measure`].
    pub evaluators: Vec<Evaluator<'a>>,
    /// The work items still to evaluate (cache misses only).
    pub items: Vec<WorkItem>,
    /// Work items dispatched per request; the final chunk may be shorter.
    pub chunk_size: usize,
    /// Name of the inversion method driving the plan (diagnostics only).
    pub method: String,
}

/// What a transport reports back after draining a plan.
#[derive(Debug, Clone, Default)]
pub struct TransportReport {
    /// Per-worker accounting, in worker-id order.
    pub worker_stats: Vec<WorkerStats>,
    /// Number of protocol messages exchanged (chunk requests + results for
    /// socket-backed transports; result messages for in-process ones).
    pub messages: usize,
    /// Bytes put on (or, for [`SimulatedLatency`], bytes that *would* go on)
    /// the wire.  Zero for [`InProcess`] — shared memory ships no bytes.
    pub bytes_on_wire: u64,
    /// Number of workers that disconnected or failed before the queue drained.
    pub disconnects: usize,
    /// Reachable markings of the state space, when this backend explored it
    /// in-process (`None` for the TCP backend, whose workers explore it on
    /// their side of the wire).
    pub states: Option<usize>,
    /// Aggregate symbolic/numeric-split counters of the backend's local
    /// evaluators (zero for the TCP backend — its workers count on their own
    /// side of the wire).
    pub hotpath: smp_core::HotPathStats,
    /// Compiled model sets this run served from a shared
    /// [`CompiledSetCache`] without
    /// re-exploring (zero when the backend has no cache attached).
    pub model_cache_hits: usize,
    /// Compiled model sets this run had to compile — each one a state-space
    /// exploration per distinct model in the plan.
    pub model_cache_misses: usize,
}

/// A pluggable master⇄worker message-passing backend.
pub trait Transport {
    /// Short backend name for reports (`in-process`, `sim-latency`, `tcp`).
    fn name(&self) -> &'static str;

    /// How many workers the backend runs in parallel — the master's hint for
    /// automatic chunk sizing.
    fn parallelism(&self) -> usize;

    /// True when [`Transport::execute`] may be called repeatedly on the same
    /// instance (in-process backends).  The TCP backend returns `false`: its
    /// rendezvous listeners serve one worker connection per run, so
    /// multi-round computations (the distributed engine's quantile
    /// refinement) must fall back to master-side evaluation rather than
    /// expecting workers to dial in again.
    fn reusable(&self) -> bool {
        true
    }

    /// Drains the plan, delivering every [`WorkerMessage`] to `on_message` as
    /// it arrives (the master caches and checkpoints inside the callback).
    ///
    /// A transport returns `Ok` when the run ended in an orderly way even if
    /// individual evaluations failed — per-point failures travel inside the
    /// messages.  `Err` means the backend itself broke (could not compile a
    /// spec, lost every worker, I/O on the checkpoint socket…).
    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError>;
}

fn transport_error(message: impl Into<String>) -> PipelineError {
    PipelineError::Transport {
        message: message.into(),
    }
}

/// Encodes every measure of a plan into its wire spec line, rejecting plans
/// with closure-based measures (they cannot cross a process boundary).  Shared
/// by the TCP rendezvous backend and the query server's standing worker pool.
pub(crate) fn encode_plan_specs(
    evaluators: &[Evaluator<'_>],
) -> Result<Vec<String>, PipelineError> {
    evaluators
        .iter()
        .map(|evaluator| match evaluator {
            Evaluator::Spec(spec) => spec
                .encode()
                .map_err(|e| transport_error(format!("unencodable transform spec: {e}"))),
            Evaluator::Closure(_) => Err(transport_error(
                "closure-based measures cannot cross a process boundary; \
                 build the batch from TransformSpecs to use the TCP backend",
            )),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// In-process backends
// ---------------------------------------------------------------------------

/// The default backend: worker threads inside the master process, one shared
/// lock-protected queue, crossbeam result channels.
#[derive(Debug, Clone)]
pub struct InProcess {
    /// Number of worker threads; 0 or 1 means a single worker.
    pub workers: usize,
    compiled_cache: Option<Arc<CompiledSetCache>>,
}

impl InProcess {
    /// An in-process backend with `workers` threads.
    pub fn new(workers: usize) -> Self {
        InProcess {
            workers,
            compiled_cache: None,
        }
    }

    /// Serves compiled model sets from `cache` instead of re-exploring the
    /// state space on every run — the query server shares one cache across
    /// all requests.
    pub fn with_compiled_cache(mut self, cache: Arc<CompiledSetCache>) -> Self {
        self.compiled_cache = Some(cache);
        self
    }
}

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn parallelism(&self) -> usize {
        self.workers.max(1)
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        run_threaded(
            self.workers,
            plan,
            None,
            false,
            self.compiled_cache.as_deref(),
            on_message,
        )
    }
}

/// In-process evaluation plus a simulated per-message network round-trip and
/// wire-size accounting that mirrors the TCP backend's frame traffic: each
/// chunk costs a request *and* a response frame, and (for spec-expressible
/// plans) every worker also pays the hello/job/done handshake — so the
/// report's messages/bytes columns are directly comparable to a real
/// [`TcpTransport`] run.  Closure-based plans have no wire form for the job
/// frame, so only their chunk/result traffic is counted.  This replaces the
/// ad-hoc sleep injection the scalability sweep used to thread through the
/// pipeline options.
#[derive(Debug, Clone)]
pub struct SimulatedLatency {
    /// Number of worker threads.
    pub workers: usize,
    /// Delay applied per result message (chunking amortises it).
    pub latency: Duration,
    compiled_cache: Option<Arc<CompiledSetCache>>,
}

impl SimulatedLatency {
    /// A simulated-latency backend with `workers` threads and `latency` per
    /// message.
    pub fn new(workers: usize, latency: Duration) -> Self {
        SimulatedLatency {
            workers,
            latency,
            compiled_cache: None,
        }
    }

    /// Serves compiled model sets from `cache` instead of re-exploring the
    /// state space on every run.
    pub fn with_compiled_cache(mut self, cache: Arc<CompiledSetCache>) -> Self {
        self.compiled_cache = Some(cache);
        self
    }
}

impl Transport for SimulatedLatency {
    fn name(&self) -> &'static str {
        "sim-latency"
    }

    fn parallelism(&self) -> usize {
        self.workers.max(1)
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        run_threaded(
            self.workers,
            plan,
            Some(self.latency),
            true,
            self.compiled_cache.as_deref(),
            on_message,
        )
    }
}

/// The shared thread-backed engine behind [`InProcess`] and
/// [`SimulatedLatency`].
fn run_threaded(
    workers: usize,
    plan: ExecutionPlan<'_>,
    latency: Option<Duration>,
    account_wire_bytes: bool,
    compiled_cache: Option<&CompiledSetCache>,
    on_message: &mut dyn FnMut(WorkerMessage),
) -> Result<TransportReport, PipelineError> {
    let workers = workers.max(1);

    // Compile every spec-based measure locally: one state-space exploration
    // per distinct model, exactly what a remote worker would do on receipt of
    // the job frame.  With a cache attached, a repeated spec list reuses the
    // explored state space instead.
    let specs: Vec<TransformSpec> = plan
        .evaluators
        .iter()
        .filter_map(|e| match e {
            Evaluator::Spec(spec) => Some((*spec).clone()),
            Evaluator::Closure(_) => None,
        })
        .collect();
    let (compiled_set, cache_hit) = match compiled_cache {
        Some(cache) => cache.get_or_compile(&specs).map_err(transport_error)?,
        None => (
            Arc::new(CompiledModelSet::compile(&specs).map_err(transport_error)?),
            false,
        ),
    };
    let (model_cache_hits, model_cache_misses) = if cache_hit {
        (compiled_set.num_models(), 0)
    } else {
        (0, compiled_set.num_models())
    };
    let states = (compiled_set.num_models() > 0).then(|| compiled_set.num_states());
    let compiled: Vec<CompiledEvaluator<'_>> =
        compiled_set.evaluators().map_err(transport_error)?;

    // Per-measure evaluation closures: live closures pass straight through,
    // spec measures call their compiled evaluator.
    let mut next_spec = 0usize;
    let boxed: Vec<Box<TransformFn<'_>>> = plan
        .evaluators
        .iter()
        .map(|evaluator| match evaluator {
            Evaluator::Closure(f) => {
                let f = *f;
                Box::new(move |s: Complex64| f(s)) as Box<TransformFn<'_>>
            }
            Evaluator::Spec(_) => {
                let compiled = &compiled[next_spec];
                next_spec += 1;
                Box::new(move |s: Complex64| compiled.eval(s)) as Box<TransformFn<'_>>
            }
        })
        .collect();
    let evaluators: Vec<&TransformFn<'_>> = boxed.iter().map(|b| b.as_ref()).collect();

    // For wire accounting: the handshake frames a TCP run would ship, when
    // the plan is spec-expressible at all.
    let spec_lines: Option<Vec<String>> = plan
        .evaluators
        .iter()
        .map(|e| match e {
            Evaluator::Spec(spec) => spec.encode().ok(),
            Evaluator::Closure(_) => None,
        })
        .collect();

    let queue = WorkQueue::with_chunk_size(plan.items, plan.chunk_size.max(1));
    let (tx, rx) = unbounded::<WorkerMessage>();
    let mut messages = 0usize;
    let mut bytes_on_wire = 0u64;
    if account_wire_bytes {
        if let Some(lines) = &spec_lines {
            for worker in 0..workers {
                let hello = Frame::Hello {
                    version: WIRE_VERSION,
                };
                let job = Frame::Job {
                    version: WIRE_VERSION,
                    worker,
                    method: plan.method.clone(),
                    specs: lines.clone(),
                };
                bytes_on_wire += frame_wire_size(&hello).unwrap_or(0)
                    + frame_wire_size(&job).unwrap_or(0)
                    + frame_wire_size(&Frame::Done).unwrap_or(0);
                messages += 3;
            }
        }
    }

    let worker_stats: Vec<WorkerStats> = crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let queue = &queue;
            let evaluators = &evaluators;
            let tx = tx.clone();
            handles
                .push(scope.spawn(move |_| run_batch_worker(id, queue, evaluators, latency, &tx)));
        }
        drop(tx);

        // The master-side collection loop (where a cluster deployment would
        // read from the network instead of a channel).
        for message in rx {
            if account_wire_bytes {
                // A chunk round-trip is two wire messages: request out,
                // result back — exactly how the TCP backend counts.
                messages += 2;
                bytes_on_wire += simulated_wire_bytes(&message);
            } else {
                messages += 1;
            }
            on_message(message);
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("transport scope failed");

    let hotpath = compiled
        .iter()
        .map(|evaluator| evaluator.hotpath_stats())
        .fold(smp_core::HotPathStats::default(), |acc, s| acc.merged(s));
    Ok(TransportReport {
        worker_stats,
        messages,
        bytes_on_wire,
        disconnects: 0,
        states,
        hotpath,
        model_cache_hits,
        model_cache_misses,
    })
}

/// The bytes the TCP backend would have spent on one request/response pair for
/// this chunk: the chunk frame out plus the result frame back.  Encodes from
/// references — this runs on the master's collection path during timed
/// scalability runs, so it must not clone the message.
fn simulated_wire_bytes(message: &WorkerMessage) -> u64 {
    let chunk = Frame::Chunk {
        items: message.results.iter().map(|o| o.item).collect(),
    };
    let result_bytes = crate::wire::encode_worker_message(message, 0)
        .map(|payload| 4 + payload.len() as u64)
        .unwrap_or(0);
    frame_wire_size(&chunk).unwrap_or(0) + result_bytes
}

// ---------------------------------------------------------------------------
// TCP backend — master side
// ---------------------------------------------------------------------------

/// Binds a TCP listener with `SO_REUSEADDR` set *before* the bind — the
/// crash-restart precondition of every fixed rendezvous endpoint.
///
/// A master killed mid-solve (`kill -9`) leaves its accepted sockets'
/// `TIME_WAIT` entries parked on the listener's port; a plain
/// `TcpListener::bind` by the restarted master is then refused with
/// `EADDRINUSE` for up to a minute — longer than any reconnecting worker's
/// redial budget.  Linux honours an immediate re-bind only when *both*
/// generations of socket carry `SO_REUSEADDR` (accepted sockets inherit the
/// flag from their listener), and the flag must be set between `socket()`
/// and `bind()`, a window `std` does not expose — hence this small libc
/// shim.  Non-Linux targets keep the plain bind.
#[cfg(target_os = "linux")]
pub(crate) fn bind_reusable(addr: &SocketAddr) -> std::io::Result<TcpListener> {
    use std::os::fd::FromRawFd;

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    // `struct sockaddr_in` / `sockaddr_in6`, byte for byte: the family is a
    // host-endian u16; ports, addresses and the v6 flow label travel in
    // network byte order; the v6 scope id stays host-endian.
    let (family, raw): (i32, Vec<u8>) = match addr {
        SocketAddr::V4(v4) => {
            let mut raw = Vec::with_capacity(16);
            raw.extend_from_slice(&(AF_INET as u16).to_ne_bytes());
            raw.extend_from_slice(&v4.port().to_be_bytes());
            raw.extend_from_slice(&v4.ip().octets());
            raw.resize(16, 0); // sin_zero padding
            (AF_INET, raw)
        }
        SocketAddr::V6(v6) => {
            let mut raw = Vec::with_capacity(28);
            raw.extend_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            raw.extend_from_slice(&v6.port().to_be_bytes());
            raw.extend_from_slice(&v6.flowinfo().to_be_bytes());
            raw.extend_from_slice(&v6.ip().octets());
            raw.extend_from_slice(&v6.scope_id().to_ne_bytes());
            (AF_INET6, raw)
        }
    };

    // SAFETY: the fd is owned by this function until `from_raw_fd` transfers
    // it to the returned listener (or `close` reclaims it on error), and the
    // sockaddr bytes outlive every call that reads them.
    unsafe {
        let fd = socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, (&one as *const i32).cast(), 4) != 0
            || bind(fd, raw.as_ptr(), raw.len() as u32) != 0
            || listen(fd, BACKLOG) != 0
        {
            let error = std::io::Error::last_os_error();
            close(fd);
            return Err(error);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Fallback for non-Linux targets: the portable bind, without the
/// crash-restart `SO_REUSEADDR` guarantee.
#[cfg(not(target_os = "linux"))]
pub(crate) fn bind_reusable(addr: &SocketAddr) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// [`bind_reusable`] over anything address-like: each candidate the name
/// resolves to is tried in order, exactly as `TcpListener::bind` would.
pub(crate) fn bind_reusable_to<A: ToSocketAddrs>(addr: A) -> std::io::Result<TcpListener> {
    let mut last: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match bind_reusable(&candidate) {
            Ok(listener) => return Ok(listener),
            Err(error) => last = Some(error),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to no socket addresses",
        )
    }))
}

/// The bundle [`TcpTransport::accept_slice_channels`] returns: one
/// handshaken channel per worker, plus the handshake's message and byte
/// counts so the caller's wire accounting starts from the true totals.
pub type AcceptedSliceChannels = (Vec<Box<dyn crate::shard::SliceChannel>>, usize, u64);

/// Real multi-process distribution over TCP.
///
/// The master binds one listener per expected worker (so each worker has an
/// unambiguous rendezvous address) and hands each accepted connection its own
/// handler thread.  Handlers pull chunks from the shared [`WorkQueue`] — the
/// same global queue the thread backends use — so work naturally balances
/// across workers of different speeds, and a dead worker's outstanding chunk
/// is pushed back for the survivors.
pub struct TcpTransport {
    listeners: Vec<TcpListener>,
    accept_timeout: Duration,
    io_timeout: Duration,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addrs", &self.local_addrs())
            .field("accept_timeout", &self.accept_timeout)
            .field("io_timeout", &self.io_timeout)
            .finish()
    }
}

impl TcpTransport {
    /// Binds one listener per address (use port `0` for an ephemeral port and
    /// read the real one back with [`TcpTransport::local_addrs`]).  Each
    /// listener serves exactly one worker connection per run.
    ///
    /// Listeners are bound with `SO_REUSEADDR` (see [`bind_reusable`]): a
    /// master restarted after a crash re-binds its advertised rendezvous
    /// endpoints immediately instead of waiting out its predecessor's
    /// `TIME_WAIT` quarantine.
    pub fn bind<A: ToSocketAddrs>(addrs: &[A]) -> std::io::Result<TcpTransport> {
        let listeners: Vec<TcpListener> = addrs
            .iter()
            .map(bind_reusable_to)
            .collect::<std::io::Result<_>>()?;
        Ok(TcpTransport {
            listeners,
            accept_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(600),
        })
    }

    /// Overrides how long `execute` waits for each worker to dial in.
    pub fn with_accept_timeout(mut self, timeout: Duration) -> Self {
        self.accept_timeout = timeout;
        self
    }

    /// Overrides the per-read socket timeout on accepted connections.  A
    /// worker that connects but goes silent — a SIGSTOPped process, a
    /// network partition with no RST — must not hang the run forever: after
    /// this long without a frame the handler declares the worker lost and
    /// requeues its outstanding chunk.  Size it above the slowest expected
    /// chunk evaluation (default: 10 minutes).
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// The bound rendezvous addresses, in worker-id order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.listeners
            .iter()
            .filter_map(|l| l.local_addr().ok())
            .collect()
    }

    /// Number of workers this transport expects.
    pub fn num_workers(&self) -> usize {
        self.listeners.len()
    }

    /// Accepts every expected worker connection (dial-in plus `Hello`
    /// handshake) and wraps each stream as a [`crate::shard::SliceChannel`]
    /// ready for a row-sharded session ([`crate::shard::SliceFleet`]).
    /// Returns the channels plus the handshake's message and byte counts so
    /// the caller's wire accounting starts from the true totals.
    pub fn accept_slice_channels(&self) -> Result<AcceptedSliceChannels, PipelineError> {
        // The sentinel never reaches zero: a sharded session needs every
        // worker, so an absent one is a timeout error, not an unused address.
        let pending = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let mut channels: Vec<Box<dyn crate::shard::SliceChannel>> =
            Vec::with_capacity(self.num_workers());
        let mut messages = 0usize;
        let mut bytes = 0u64;
        for index in 0..self.num_workers() {
            let mut stream = self
                .accept_one(index, &pending)
                .map_err(|e| transport_error(format!("worker {index} failed to connect: {e}")))?
                .expect("a non-zero sentinel never skips the accept");
            let n = expect_hello(&mut stream)
                .map_err(|e| transport_error(format!("worker {index} handshake failed: {e}")))?;
            messages += 1;
            bytes += n;
            channels.push(Box::new(crate::shard::TcpSliceChannel::new(stream)));
        }
        Ok((channels, messages, bytes))
    }

    /// Accepts this listener's worker.  `Ok(None)` means the run finished
    /// (every item answered by the other workers) before anyone dialed in —
    /// not a failure, just an unused rendezvous address; without this check a
    /// spare address would stall the completed run for the full accept
    /// timeout and then be misreported as a disconnect.
    fn accept_one(
        &self,
        index: usize,
        remaining: &std::sync::atomic::AtomicUsize,
    ) -> std::io::Result<Option<TcpStream>> {
        let listener = &self.listeners[index];
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + self.accept_timeout;
        // Once the run is finished (remaining == 0) this worker is not
        // needed, but one may already be dialing — its connection would land
        // in the listener backlog, never be accepted, and die with an error
        // when the listener drops.  A short grace window (longer than the
        // worker-side dial retry delay) lets such a worker be accepted,
        // handshaked and released cleanly with a `done` frame instead.
        let mut grace_deadline: Option<Instant> = None;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    return Ok(Some(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if remaining.load(std::sync::atomic::Ordering::SeqCst) == 0 {
                        let grace = *grace_deadline
                            .get_or_insert_with(|| Instant::now() + Duration::from_millis(400));
                        if Instant::now() >= grace {
                            return Ok(None);
                        }
                    } else if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("no worker connected within {:?}", self.accept_timeout),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Everything one connection handler reports back to `execute`.  Shared with
/// the query server's standing worker pool, which runs the same dispatch loop
/// over sockets it keeps alive across requests.
pub(crate) struct HandlerOutcome {
    pub(crate) stats: WorkerStats,
    pub(crate) messages: usize,
    pub(crate) bytes: u64,
    pub(crate) failure: Option<String>,
}

impl HandlerOutcome {
    pub(crate) fn new(worker_id: usize) -> Self {
        HandlerOutcome {
            stats: WorkerStats {
                id: worker_id,
                evaluated: 0,
                messages: 0,
                busy: Duration::ZERO,
            },
            messages: 0,
            bytes: 0,
            failure: None,
        }
    }
}

/// Reads one frame and checks it is a version-compatible hello.  Returns the
/// bytes read so the caller can account them.
pub(crate) fn expect_hello(stream: &mut TcpStream) -> std::io::Result<u64> {
    let (frame, n) = read_frame(stream)?;
    match frame {
        Frame::Hello { version } if version == WIRE_VERSION => Ok(n),
        Frame::Hello { version } => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("worker speaks wire version {version}, master speaks {WIRE_VERSION}"),
        )),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected hello frame, got {other:?}"),
        )),
    }
}

/// Writes the job header (worker id, method, one spec line per measure) that
/// opens every dispatch round.  Returns the bytes written.
pub(crate) fn send_job(
    stream: &mut TcpStream,
    worker_id: usize,
    method: &str,
    specs: &[String],
) -> std::io::Result<u64> {
    write_frame(
        stream,
        &Frame::Job {
            version: WIRE_VERSION,
            worker: worker_id,
            method: method.to_string(),
            specs: specs.to_vec(),
        },
    )
}

/// The post-handshake dispatch loop: stream chunks to one connected worker and
/// forward its results until the queue drains (or the optional deadline
/// passes), then release the worker with a `done` frame.  On any I/O failure
/// the outstanding chunk goes back into the queue, `outcome.failure` is set,
/// and the function returns with the stream out of protocol sync.
///
/// Returns `true` when the connection is still in sync afterwards (the `done`
/// frame was delivered) — the standing pool uses this to decide whether the
/// worker can be kept for the next request.
pub(crate) fn drive_connected_worker(
    stream: &mut TcpStream,
    queue: &WorkQueue,
    remaining: &std::sync::atomic::AtomicUsize,
    deadline: Option<Instant>,
    results: &crossbeam::channel::Sender<WorkerMessage>,
    outcome: &mut HandlerOutcome,
) -> bool {
    use std::sync::atomic::Ordering;
    loop {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                // Nothing from this handler is in flight at a check point, so
                // there is nothing to requeue — stop taking new chunks and
                // release the worker in protocol (the `done` below), leaving
                // the unanswered items in the queue for the caller to count.
                outcome.failure = Some("request deadline exceeded".to_string());
                break;
            }
        }
        let Some(chunk) = queue.pop_chunk() else {
            if remaining.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Another worker's chunk is still in flight; its failure would
            // requeue it here.  Idle briefly and look again.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        let roundtrip = (|| -> std::io::Result<(WorkerMessage, u64)> {
            let frame = Frame::Chunk {
                items: chunk.clone(),
            };
            outcome.bytes += write_frame(stream, &frame)?;
            outcome.messages += 1;
            let (reply, n) = read_frame(stream)?;
            outcome.bytes += n;
            outcome.messages += 1;
            match reply {
                // A result must answer exactly the dispatched chunk, item for
                // item — anything else would corrupt the outstanding-item
                // accounting, or (worse) cache a value under the wrong
                // measure's transform key and poison the checkpoint file.
                Frame::Result {
                    message,
                    busy_nanos,
                } if message.results.len() == chunk.len()
                    && message
                        .results
                        .iter()
                        .zip(&chunk)
                        .all(|(outcome, sent)| outcome.item == *sent) =>
                {
                    Ok((message, busy_nanos))
                }
                Frame::Result { message, .. } => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "worker answered {} item(s) that do not match the {} dispatched",
                        message.results.len(),
                        chunk.len()
                    ),
                )),
                Frame::Fatal { message } => {
                    Err(std::io::Error::other(format!("worker reported: {message}")))
                }
                other => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected result frame, got {other:?}"),
                )),
            }
        })();
        match roundtrip {
            Ok((message, busy_nanos)) => {
                outcome.stats.evaluated += message.results.len();
                outcome.stats.messages += 1;
                outcome.stats.busy += Duration::from_nanos(busy_nanos);
                remaining.fetch_sub(chunk.len(), Ordering::SeqCst);
                if results.send(message).is_err() {
                    break; // master collection loop has gone away
                }
            }
            Err(e) => {
                // The chunk was sent but never (fully) answered: every item in
                // it is still outstanding.  Requeue and retire this handler.
                for item in chunk {
                    queue.push(item);
                }
                outcome.failure = Some(format!("connection lost mid-run: {e}"));
                return false;
            }
        }
    }

    // Release the worker.  Its socket may already be gone if it crashed right
    // after its last result — nothing is outstanding either way.
    match write_frame(stream, &Frame::Done) {
        Ok(n) => {
            outcome.bytes += n;
            outcome.messages += 1;
            true
        }
        Err(_) => false,
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn parallelism(&self) -> usize {
        self.listeners.len().max(1)
    }

    fn reusable(&self) -> bool {
        // One rendezvous per listener per run: a second execute() would wait
        // for workers that have already been released.
        false
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        // Closures cannot be shipped; every measure must carry a spec.
        let specs = encode_plan_specs(&plan.evaluators)?;

        let total_items = plan.items.len();
        let queue = WorkQueue::with_chunk_size(plan.items, plan.chunk_size.max(1));
        // Items not yet answered by *any* worker.  Handlers stay on duty while
        // this is non-zero even when the queue is momentarily empty: a chunk
        // in flight at a dying worker will be requeued, and someone must
        // still be around to pick it up.
        let remaining = std::sync::atomic::AtomicUsize::new(total_items);
        let (tx, rx) = unbounded::<WorkerMessage>();
        let method = plan.method.clone();

        let outcomes: Vec<HandlerOutcome> = crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(self.listeners.len());
            for worker_id in 0..self.listeners.len() {
                let queue = &queue;
                let specs = &specs;
                let method = &method;
                let remaining = &remaining;
                let tx = tx.clone();
                handles.push(scope.spawn(move |_| {
                    serve_worker_connection(self, worker_id, queue, specs, method, remaining, &tx)
                }));
            }
            drop(tx);

            for message in rx {
                on_message(message);
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("tcp handler thread panicked"))
                .collect()
        })
        .expect("tcp transport scope failed");

        let mut report = TransportReport::default();
        let mut failures = Vec::new();
        for outcome in outcomes {
            report.messages += outcome.messages;
            report.bytes_on_wire += outcome.bytes;
            if let Some(failure) = outcome.failure {
                report.disconnects += 1;
                failures.push(format!("worker {}: {failure}", outcome.stats.id));
            }
            report.worker_stats.push(outcome.stats);
        }

        // Losing workers is survivable as long as every item was answered;
        // losing *all* of them with work outstanding is not.
        let undone = remaining.load(std::sync::atomic::Ordering::SeqCst);
        if undone > 0 {
            return Err(transport_error(format!(
                "{undone} work item(s) left undone: {}",
                failures.join("; ")
            )));
        }
        Ok(report)
    }
}

/// Runs one master-side connection: accept, handshake, stream chunks, forward
/// results.  On any I/O failure the outstanding chunk goes back into the queue
/// and the handler retires — the remaining workers absorb the load.  A handler
/// whose queue pop comes up empty does **not** retire while other handlers
/// still have chunks in flight: if one of those workers dies, its requeued
/// chunk must find someone still on duty.
fn serve_worker_connection(
    transport: &TcpTransport,
    worker_id: usize,
    queue: &WorkQueue,
    specs: &[String],
    method: &str,
    remaining: &std::sync::atomic::AtomicUsize,
    results: &crossbeam::channel::Sender<WorkerMessage>,
) -> HandlerOutcome {
    let mut outcome = HandlerOutcome::new(worker_id);

    let mut stream = match transport.accept_one(worker_id, remaining) {
        Ok(Some(stream)) => stream,
        Ok(None) => return outcome, // run finished without needing this worker
        Err(e) => {
            outcome.failure = Some(format!("accept failed: {e}"));
            return outcome;
        }
    };

    // Handshake: the worker announces its wire version, the master answers
    // with the job header (worker id, method, one spec line per measure).
    let handshake = (|| -> std::io::Result<()> {
        outcome.bytes += expect_hello(&mut stream)?;
        outcome.messages += 1;
        outcome.bytes += send_job(&mut stream, worker_id, method, specs)?;
        outcome.messages += 1;
        Ok(())
    })();
    if let Err(e) = handshake {
        outcome.failure = Some(format!("handshake failed: {e}"));
        return outcome;
    }

    drive_connected_worker(&mut stream, queue, remaining, None, results, &mut outcome);
    outcome
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// SplitMix64: the stateless mixing function under every deterministic
/// decision in the fault layer (fault schedules, backoff jitter).  Keyed by
/// `(seed, op counter)` or `(seed, attempt)` — never by a clock — so a
/// failure schedule replays bit-for-bit on every run.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One scripted misbehaviour of the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No fault: the operation proceeds untouched.
    Pass,
    /// The frame/message vanishes in transit (the sender believes it went
    /// out; the receiver never sees it).
    DropFrame,
    /// One payload byte is XORed with this (nonzero) mask after the checksum
    /// was computed — the receiver must detect and refuse it.
    CorruptByte {
        /// The nonzero mask applied to one deterministic payload byte.
        xor: u8,
    },
    /// The link dies at this operation (connection-aborted error).
    Disconnect,
    /// The operation is delayed by this many milliseconds, then proceeds —
    /// models a congested or partitioned link that heals.
    Delay {
        /// Injected latency in milliseconds.
        millis: u64,
    },
}

/// A deterministic, replayable schedule of faults, consulted once per
/// intercepted operation.
///
/// Two layers compose: *scripted* ops (an explicit `op index → fault` map,
/// for pinpoint tests) and a *seeded* background schedule (every op hashes
/// `(seed, op counter)` through [`splitmix64`]; when the hash says "fault",
/// the next hash bits pick the kind).  No wall clock, no OS entropy: the
/// same plan over the same traffic injects the same faults in the same
/// places, which is what lets the chaos matrix demand bitwise-identical
/// results.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    scripted: std::collections::BTreeMap<u64, FaultKind>,
    seeded: Option<(u64, u64)>,
    budget: Option<u64>,
    counter: u64,
    injected: u64,
}

impl FaultPlan {
    /// A plan that never injects anything (the fault-free control cell).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from explicit `(op index, fault)` pairs; all other ops pass.
    pub fn scripted(ops: impl IntoIterator<Item = (u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            scripted: ops.into_iter().collect(),
            ..FaultPlan::default()
        }
    }

    /// A pseudo-random background schedule: roughly one op in `every` faults
    /// (drop, corrupt or disconnect — never delay, which only scripts can
    /// inject), decided purely by `splitmix64(seed ^ op)`.
    pub fn seeded(seed: u64, every: u64) -> FaultPlan {
        FaultPlan {
            seeded: Some((seed, every.max(1))),
            ..FaultPlan::default()
        }
    }

    /// Adds one scripted op to any plan (builder style).
    pub fn with_op(mut self, op: u64, kind: FaultKind) -> FaultPlan {
        self.scripted.insert(op, kind);
        self
    }

    /// Caps the total faults the plan will inject; ops past the budget pass
    /// untouched.  A chaos schedule over an `n`-shard fleet needs a budget
    /// `< n` to be survivable by construction — each injected fault can cost
    /// at most one worker.
    pub fn with_budget(mut self, budget: u64) -> FaultPlan {
        self.budget = Some(budget);
        self
    }

    /// Decides the fault for the next operation and advances the op counter.
    pub fn next_op(&mut self) -> FaultKind {
        let op = self.counter;
        self.counter += 1;
        if self.budget.is_some_and(|budget| self.injected >= budget) {
            return FaultKind::Pass;
        }
        let kind = match self.scripted.get(&op) {
            Some(&kind) => kind,
            None => match self.seeded {
                Some((seed, every)) if splitmix64(seed ^ op).is_multiple_of(every) => {
                    let h = splitmix64(seed ^ op ^ 0x5bf0_3635);
                    match h % 3 {
                        0 => FaultKind::DropFrame,
                        1 => FaultKind::CorruptByte {
                            xor: ((h >> 8) as u8) | 1,
                        },
                        _ => FaultKind::Disconnect,
                    }
                }
                _ => FaultKind::Pass,
            },
        };
        if kind != FaultKind::Pass {
            self.injected += 1;
        }
        kind
    }

    /// Operations consulted so far.
    pub fn ops_seen(&self) -> u64 {
        self.counter
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

/// Proves that a frame with one payload byte flipped is *refused* by the
/// frame reader, exactly as a receiver would refuse it on a real link.
/// Returns the refusing error (panics if the corrupted bytes were accepted —
/// that would mean the checksum failed at its one job).
pub(crate) fn prove_corruption_detected(frame: &Frame, xor: u8) -> std::io::Error {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, frame).expect("encodable frame");
    let header = crate::wire::FRAME_HEADER_BYTES as usize;
    let payload_len = bytes.len() - header;
    let index =
        (header + (xor as usize).wrapping_mul(7919) % payload_len.max(1)).min(bytes.len() - 1);
    bytes[index] ^= if xor == 0 { 0xff } else { xor };
    match read_frame(&mut std::io::Cursor::new(bytes)) {
        Err(error) => error,
        Ok((decoded, _)) => panic!(
            "injected corruption went undetected: flipped byte {index} yet decoded {decoded:?}"
        ),
    }
}

/// A [`Transport`] wrapper that injects the plan's faults into the message
/// stream and then *recovers*: dropped, corrupted or disconnected result
/// messages are requeued and re-executed on the inner transport until the
/// plan is drained, so a run under faults produces exactly the messages a
/// fault-free run produces (corrupted ones are first proven to be refused by
/// the wire layer).  Requires a reusable inner transport (the in-process
/// backends); the TCP path injects faults at the worker (`exit_after_chunks`)
/// and slice-channel layers instead.
pub struct FaultyTransport<T> {
    inner: T,
    plan: std::sync::Mutex<FaultPlan>,
    recovered: std::sync::atomic::AtomicU64,
    retried: std::sync::atomic::AtomicU64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps a transport with a fault plan.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan: std::sync::Mutex::new(plan),
            recovered: std::sync::atomic::AtomicU64::new(0),
            retried: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Faults injected *and absorbed* so far (each one re-executed to the
    /// fault-free answer).
    pub fn recovered_faults(&self) -> u64 {
        self.recovered.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Work items re-executed because a fault swallowed their results.
    pub fn retried_items(&self) -> u64 {
        self.retried.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn parallelism(&self) -> usize {
        self.inner.parallelism()
    }

    fn reusable(&self) -> bool {
        self.inner.reusable()
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        let ExecutionPlan {
            evaluators,
            mut items,
            chunk_size,
            method,
        } = plan;
        let mut total: Option<TransportReport> = None;
        // Each pass re-executes only the items whose results a fault
        // swallowed; the plan keeps advancing (one consult per message), so
        // a scripted schedule addresses retry traffic too.
        loop {
            let round = ExecutionPlan {
                evaluators: evaluators.clone(),
                items,
                chunk_size,
                method: method.clone(),
            };
            let mut swallowed: Vec<WorkItem> = Vec::new();
            let report = self.inner.execute(round, &mut |message: WorkerMessage| {
                let kind = match self.plan.lock() {
                    Ok(mut plan) => plan.next_op(),
                    Err(_) => FaultKind::Pass,
                };
                match kind {
                    FaultKind::Pass => on_message(message),
                    FaultKind::Delay { millis } => {
                        std::thread::sleep(Duration::from_millis(millis));
                        on_message(message);
                    }
                    FaultKind::CorruptByte { xor } => {
                        // The corrupted bytes must be *refused* by the wire
                        // layer — then recovery treats the message as lost.
                        let frame = Frame::Result {
                            message: message.clone(),
                            busy_nanos: 0,
                        };
                        let _refusal = prove_corruption_detected(&frame, xor);
                        self.recovered
                            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        swallowed.extend(message.results.into_iter().map(|o| o.item));
                    }
                    FaultKind::DropFrame | FaultKind::Disconnect => {
                        self.recovered
                            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        swallowed.extend(message.results.into_iter().map(|o| o.item));
                    }
                }
            })?;
            total = Some(match total.take() {
                None => report,
                Some(mut sum) => {
                    sum.worker_stats.extend(report.worker_stats);
                    sum.messages += report.messages;
                    sum.bytes_on_wire += report.bytes_on_wire;
                    sum.disconnects += report.disconnects;
                    sum.states = sum.states.or(report.states);
                    sum.hotpath = sum.hotpath.merged(report.hotpath);
                    sum.model_cache_hits += report.model_cache_hits;
                    sum.model_cache_misses += report.model_cache_misses;
                    sum
                }
            });
            if swallowed.is_empty() {
                return Ok(total.unwrap_or_default());
            }
            if !self.inner.reusable() {
                return Err(transport_error(
                    "fault plan swallowed results on a non-reusable transport; \
                     nothing can re-execute them",
                ));
            }
            self.retried
                .fetch_add(swallowed.len() as u64, std::sync::atomic::Ordering::SeqCst);
            items = swallowed;
        }
    }
}

/// A `Read + Write` stream wrapper that applies a [`FaultPlan`] at *frame*
/// granularity on the write side: bytes are buffered until `flush` (the wire
/// layer flushes exactly once per frame), and the flush consults the plan —
/// pass the frame through, corrupt one byte (after the checksum was
/// computed, so the receiver must refuse it), drop it silently, delay it, or
/// kill the link.  Reads pass straight through.
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    buffered: Vec<u8>,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps a stream with a per-frame fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            buffered: Vec::new(),
            dead: false,
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.plan.injected()
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: std::io::Read> std::io::Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: std::io::Write> std::io::Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "link killed by fault plan",
            ));
        }
        self.buffered.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "link killed by fault plan",
            ));
        }
        let frame = std::mem::take(&mut self.buffered);
        match self.plan.next_op() {
            FaultKind::Pass => {}
            FaultKind::DropFrame => return Ok(()), // vanished in transit
            FaultKind::Delay { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            FaultKind::Disconnect => {
                self.dead = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "link killed by fault plan",
                ));
            }
            FaultKind::CorruptByte { xor } => {
                let header = crate::wire::FRAME_HEADER_BYTES as usize;
                if frame.len() > header {
                    let index = header + (xor as usize).wrapping_mul(7919) % (frame.len() - header);
                    let mut corrupted = frame;
                    corrupted[index] ^= if xor == 0 { 0xff } else { xor };
                    self.inner.write_all(&corrupted)?;
                    return self.inner.flush();
                }
            }
        }
        self.inner.write_all(&frame)?;
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// Deterministic-jitter backoff
// ---------------------------------------------------------------------------

/// Exponential backoff with *deterministic* jitter: delay `k` is
/// `min(base·2ᵏ, max) · (½ + splitmix64(seed ^ k)/2⁶⁵)` — the jitter factor
/// lives in `[0.5, 1.0)` and is a pure function of `(seed, attempt)`, so
/// retry schedules replay exactly and never read a clock for randomness.
/// Seeding by a stable per-endpoint key (see [`Backoff::for_endpoint`])
/// de-synchronizes a fleet of workers hammering one master without
/// sacrificing replayability.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A backoff schedule from a base delay, a cap, and a jitter seed.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            max,
            seed,
            attempt: 0,
        }
    }

    /// A backoff seeded by an endpoint string (FNV-1a of its bytes): every
    /// process retrying `10.0.0.5:9000` jitters identically run over run,
    /// while distinct endpoints de-synchronize.
    pub fn for_endpoint(base: Duration, max: Duration, endpoint: &str) -> Backoff {
        Backoff::new(
            base,
            max,
            crate::wire::frame_checksum(endpoint.len() as u32, endpoint.as_bytes()),
        )
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let attempt = self.attempt;
        self.attempt = self.attempt.saturating_add(1);
        let doubled = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max);
        // splitmix64 → [0.5, 1.0): take 53 mantissa bits, halve, offset.
        let jitter = 0.5
            + (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        doubled.mul_f64(jitter)
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

// ---------------------------------------------------------------------------
// TCP backend — worker side
// ---------------------------------------------------------------------------

/// Options for a worker process's connection loop.
#[derive(Debug, Clone)]
pub struct TcpWorkerOptions {
    /// How many times to retry the initial dial (the master may still be
    /// binding when the worker starts).
    pub connect_attempts: u32,
    /// Delay between dial attempts.
    pub retry_delay: Duration,
    /// How long to wait for the master's next frame before declaring it lost
    /// and exiting — the mirror image of the master's io timeout, so a
    /// SIGSTOPped or partitioned master cannot leave zombie workers behind.
    /// `None` waits forever.  An idle worker legitimately waits while its
    /// peers finish the tail of the queue, so size this above the expected
    /// run length (default: 10 minutes, matching the master's default).
    pub idle_timeout: Option<Duration>,
    /// Drop the connection (without farewell) after evaluating this many
    /// chunks — an operational fault-injection hook, used by the disconnect
    /// recovery tests.
    pub exit_after_chunks: Option<usize>,
    /// How many times to *redial* after the link closes (0 = exit on close,
    /// today's one-shot behaviour).  A reconnecting worker treats every link
    /// end except an explicit outer `done` frame as "the master may be
    /// restarting" — a `kill -9`'d master and a clean release both present as
    /// EOF, so only the farewell frame distinguishes them — and redials with
    /// deterministic-jitter backoff.  This is what lets a recovering master
    /// find its fleet waiting at the rendezvous.
    pub reconnect_attempts: u32,
}

impl Default for TcpWorkerOptions {
    fn default() -> Self {
        TcpWorkerOptions {
            connect_attempts: 40,
            retry_delay: Duration::from_millis(250),
            idle_timeout: Some(Duration::from_secs(600)),
            exit_after_chunks: None,
            reconnect_attempts: 0,
        }
    }
}

/// What a worker process did during one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpWorkerSummary {
    /// The id the master assigned in the most recent job frame.
    pub worker_id: usize,
    /// Jobs served to completion (`done` frames received).  A one-shot run
    /// serves exactly one; a worker resident behind a query server serves one
    /// per request it participated in.
    pub jobs: usize,
    /// Chunks evaluated and answered, across all jobs.
    pub chunks: usize,
    /// Individual `s`-points evaluated, across all jobs.
    pub evaluated: usize,
    /// True when the worker dropped the link early via
    /// [`TcpWorkerOptions::exit_after_chunks`].
    pub dropped_early: bool,
    /// True when the master's run finished before this worker was assigned
    /// any job: the link closed cleanly between the hello and the first job
    /// frame.  Not a failure — the queue simply drained without this worker.
    pub released_before_work: bool,
    /// Dial attempts that failed and were retried (initial connect and every
    /// reconnect round).
    pub dial_retries: u64,
    /// Sessions re-established after a link loss (only under
    /// [`TcpWorkerOptions::reconnect_attempts`] > 0).
    pub reconnects: u32,
}

/// Runs one worker process end to end: dial the master, handshake, rebuild
/// the evaluators from the job's [`TransformSpec`]s, answer chunks until the
/// master says `done` (or the fault-injection limit drops the link).
///
/// The worker is **resident**: after a `done` frame it stays connected and
/// waits for the next job, so a long-running master (the query server) can
/// reuse it across requests without a fresh rendezvous.  The one-shot master
/// closes the socket after its single run, which the worker sees as a clean
/// end-of-stream and exits on — so `smpq worker --connect` behaves exactly as
/// before against a batch run.  The last compiled model set is memoized:
/// back-to-back jobs over the same specs (the common case behind a server)
/// skip the parse + state-space exploration entirely.
///
/// This is what `smpq worker --connect HOST:PORT` executes.
pub fn run_tcp_worker(
    connect: &str,
    options: &TcpWorkerOptions,
) -> Result<TcpWorkerSummary, String> {
    let mut summary = TcpWorkerSummary {
        worker_id: 0,
        jobs: 0,
        chunks: 0,
        evaluated: 0,
        dropped_early: false,
        released_before_work: false,
        dial_retries: 0,
        reconnects: 0,
    };
    // The last job's spec lines and their compiled model set.  A resident
    // worker behind a query daemon sees the same model for most jobs, and a
    // repeat job must not pay the exploration again.  The cache survives
    // reconnects: a worker that outlives a crashed master keeps its compiled
    // state space for the resumed run.
    let mut cached: Option<(Vec<String>, CompiledModelSet)> = None;
    let mut redial = Backoff::for_endpoint(
        options.retry_delay.max(Duration::from_millis(1)),
        options.retry_delay.max(Duration::from_millis(1)) * 8,
        connect,
    );

    loop {
        let mut stream = match dial(connect, options, &mut summary.dial_retries) {
            Ok(stream) => stream,
            // A reconnecting worker that already served work and now cannot
            // find the master again has outlived the computation — that is a
            // clean end, not a failure.  The very first dial failing is still
            // an error either way.
            Err(e) if summary.reconnects > 0 => {
                let _ = e;
                return Ok(summary);
            }
            Err(e) => return Err(e),
        };

        match run_worker_session(&mut stream, options, &mut summary, &mut cached) {
            // Only an explicit outer `done` (or the fault-injection exit)
            // ends a reconnecting worker: every other link end could be a
            // master mid-restart.
            Ok(SessionEnd::Done) | Ok(SessionEnd::DroppedEarly) => return Ok(summary),
            Ok(SessionEnd::Released) => {
                if summary.reconnects >= options.reconnect_attempts {
                    summary.released_before_work = summary.jobs == 0;
                    return Ok(summary);
                }
            }
            Ok(SessionEnd::Lost(message)) => {
                if summary.reconnects >= options.reconnect_attempts {
                    return Err(message);
                }
            }
            // Protocol-level refusals (wire version skew, bad specs, unknown
            // frames) are never retried: redialling cannot fix them.
            Err(protocol) => return Err(protocol),
        }
        summary.reconnects += 1;
        std::thread::sleep(redial.next_delay());
    }
}

/// How one worker⇄master session ended, seen from the worker.
enum SessionEnd {
    /// The link closed cleanly (EOF) or went idle — a released worker, a
    /// finished one-shot master, or a `kill -9`'d master: indistinguishable
    /// at the socket, which is exactly why a reconnecting worker redials on
    /// this and exits only on [`SessionEnd::Done`].
    Released,
    /// The master said `done` at the outer level — an explicit farewell.
    Done,
    /// The worker dropped the link itself via
    /// [`TcpWorkerOptions::exit_after_chunks`].
    DroppedEarly,
    /// The link failed abruptly mid-work; the message is the error a
    /// non-reconnecting worker reports.
    Lost(String),
}

/// One connected session: handshake, then serve jobs until the link ends.
/// Protocol errors (the master speaking a different dialect) are `Err` and
/// never retried; every way the *link* can end is a [`SessionEnd`].
fn run_worker_session(
    stream: &mut TcpStream,
    options: &TcpWorkerOptions,
    summary: &mut TcpWorkerSummary,
    cached: &mut Option<(Vec<String>, CompiledModelSet)>,
) -> Result<SessionEnd, String> {
    if let Err(e) = write_frame(
        stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    ) {
        return Ok(SessionEnd::Lost(format!("handshake write failed: {e}")));
    }

    // Report a failure the master must hear about (it would otherwise wait on
    // a result that never comes), then fail the worker with the same message.
    fn fatal(stream: &mut TcpStream, message: String) -> String {
        let _ = write_frame(
            stream,
            &Frame::Fatal {
                message: message.clone(),
            },
        );
        // Half-close and drain: the master may already have a chunk frame in
        // flight, and closing a socket with unread data sends an RST that can
        // destroy the fatal frame before the master reads it.  Shut down the
        // write half (the master sees orderly EOF after the fatal) and sink
        // incoming data until the master closes or goes quiet.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let mut sink = [0u8; 1024];
        use std::io::Read;
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        message
    }

    loop {
        let job = match read_frame(stream) {
            Ok((job, _)) => job,
            // A link that closes while no job is in progress means the master
            // released this worker: either its queue drained without the
            // worker ever being assigned work (a warm run, or a faster peer
            // took everything), or a long-running master shut down after some
            // number of jobs.  Both are clean exits, not failures — exiting
            // non-zero here made `smpq worker` flaky whenever it lost the
            // race for the last chunk.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                return Ok(SessionEnd::Released);
            }
            // A read timeout *between* jobs is an idle release: the master is
            // merely quiet, but a worker cannot idle forever (that is what
            // `idle_timeout` bounds).  Only the very first job wait treats a
            // timeout as an error — a master that never sends any job within
            // the window is indistinguishable from a hung one.
            Err(e)
                if summary.jobs > 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(SessionEnd::Released);
            }
            Err(e) => return Ok(SessionEnd::Lost(format!("job read failed: {e}"))),
        };
        let (worker_id, method, spec_lines) = match job {
            Frame::Job {
                version,
                worker,
                method,
                specs,
            } if version == WIRE_VERSION => (worker, method, specs),
            Frame::Job { version, .. } => {
                return Err(format!(
                    "master speaks wire version {version}, this worker speaks {WIRE_VERSION}"
                ))
            }
            // A sharded session: this worker becomes one row slice of the
            // state space and serves lockstep SpMV rounds until the master's
            // `done`, then waits for the next assignment.  The chunk-level
            // fault-injection limit doubles as the slice-response limit, so
            // `smpq worker --exit-after` can kill a shard mid-run too.
            Frame::SliceJob { worker, .. } => {
                summary.worker_id = worker;
                match crate::shard::serve_slices(stream, &job, options.exit_after_chunks) {
                    Ok(sliced) => {
                        summary.jobs += 1;
                        summary.chunks += sliced.responses;
                        summary.evaluated += sliced.points;
                        if sliced.exited_early {
                            summary.dropped_early = true;
                            return Ok(SessionEnd::DroppedEarly);
                        }
                        continue;
                    }
                    // The master vanishing mid-session is how a one-shot
                    // sharded master releases its workers (and how a lost —
                    // or `kill -9`'d — master manifests): both are clean
                    // session ends here, and a reconnecting worker redials to
                    // offer itself to the resumed run.
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::UnexpectedEof
                                | std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::WouldBlock
                                | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        return Ok(SessionEnd::Released);
                    }
                    Err(e) => return Ok(SessionEnd::Lost(format!("slice session failed: {e}"))),
                }
            }
            // An explicit outer-level `done` releases a resident worker — the
            // one link end a reconnecting worker does *not* retry.
            Frame::Done => return Ok(SessionEnd::Done),
            // Outer-level liveness probe (the query server's pool heartbeat).
            Frame::Ping { nonce } => {
                if let Err(e) = write_frame(stream, &Frame::Pong { nonce }) {
                    return Ok(SessionEnd::Lost(format!("heartbeat reply failed: {e}")));
                }
                continue;
            }
            other => return Err(format!("expected job frame, got {other:?}")),
        };
        summary.worker_id = worker_id;

        // The s-points arrive explicitly in chunks, but a method this build
        // does not know signals a master from a future protocol era — refuse
        // loudly rather than compute something subtly incompatible.
        if smp_laplace::InversionMethod::from_name(&method).is_none() {
            return Err(fatal(
                stream,
                format!("unknown inversion method '{method}'"),
            ));
        }

        // Rebuild the evaluators from bytes unless this job repeats the
        // previous one verbatim.  A compile failure is reported to the master
        // as a fatal frame so the run fails with a message, not a timeout.
        let needs_compile = match &cached {
            Some((lines, _)) => *lines != spec_lines,
            None => true,
        };
        if needs_compile {
            let specs: Result<Vec<TransformSpec>, _> = spec_lines
                .iter()
                .map(|l| TransformSpec::decode(l))
                .collect();
            let compiled = specs
                .map_err(|e| e.to_string())
                .and_then(|specs| CompiledModelSet::compile(&specs));
            match compiled {
                Ok(set) => *cached = Some((spec_lines, set)),
                Err(message) => {
                    return Err(format!("spec compile failed: {}", fatal(stream, message)))
                }
            }
        }
        let Some((_, compiled_set)) = &cached else {
            return Err("internal error: no compiled model set after compile".to_string());
        };
        let evaluators = match compiled_set.evaluators() {
            Ok(evaluators) => evaluators,
            Err(message) => {
                return Err(format!(
                    "evaluator construction failed: {}",
                    fatal(stream, message)
                ))
            }
        };

        // One job's chunk loop: evaluate until the master says `done`.
        loop {
            let (frame, _) = match read_frame(stream) {
                Ok(ok) => ok,
                Err(e) => return Ok(SessionEnd::Lost(format!("master connection lost: {e}"))),
            };
            match frame {
                Frame::Chunk { items } => {
                    let started = Instant::now();
                    let results: Vec<WorkItemOutcome> = items
                        .into_iter()
                        .map(|item| WorkItemOutcome {
                            outcome: match evaluators.get(item.measure) {
                                Some(evaluator) => evaluator.eval(item.s),
                                None => Err(format!(
                                    "work item references measure {} but the job has {}",
                                    item.measure,
                                    evaluators.len()
                                )),
                            },
                            item,
                        })
                        .collect();
                    let busy_nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    summary.evaluated += results.len();
                    summary.chunks += 1;
                    let reply = Frame::Result {
                        message: WorkerMessage {
                            worker: worker_id,
                            results,
                        },
                        busy_nanos,
                    };
                    if let Err(e) = write_frame(stream, &reply) {
                        return Ok(SessionEnd::Lost(format!("result write failed: {e}")));
                    }
                    if let Some(limit) = options.exit_after_chunks {
                        if summary.chunks >= limit {
                            // Fault injection: vanish without a farewell,
                            // exactly like a crashed slave processor.
                            summary.dropped_early = true;
                            return Ok(SessionEnd::DroppedEarly);
                        }
                    }
                }
                Frame::Done => break,
                Frame::Ping { nonce } => {
                    if let Err(e) = write_frame(stream, &Frame::Pong { nonce }) {
                        return Ok(SessionEnd::Lost(format!("heartbeat reply failed: {e}")));
                    }
                }
                other => return Err(format!("unexpected frame from master: {other:?}")),
            }
        }
        summary.jobs += 1;
    }
}

/// Dials the master with deterministic-jitter exponential backoff (seeded by
/// the endpoint string, so the schedule replays run over run and distinct
/// endpoints de-synchronize).  `retries` counts failed attempts that were
/// retried.
fn dial(connect: &str, options: &TcpWorkerOptions, retries: &mut u64) -> Result<TcpStream, String> {
    let attempts = options.connect_attempts.max(1);
    let base = options.retry_delay.max(Duration::from_millis(1));
    let mut backoff = Backoff::for_endpoint(base, base * 8, connect);
    let mut last_error = String::new();
    for attempt in 0..attempts {
        match TcpStream::connect(connect) {
            Ok(stream) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| format!("set_nodelay failed: {e}"))?;
                stream
                    .set_read_timeout(options.idle_timeout)
                    .map_err(|e| format!("set_read_timeout failed: {e}"))?;
                return Ok(stream);
            }
            Err(e) => {
                last_error = e.to_string();
                if attempt + 1 < attempts {
                    *retries += 1;
                    std::thread::sleep(backoff.next_delay());
                }
            }
        }
    }
    Err(format!(
        "could not connect to master at {connect} after {attempts} attempt(s): {last_error}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{DistSpec, ModelSpec, TargetSpec};
    use smp_distributions::Dist;

    fn items_for(points: &[Complex64], measure: usize) -> Vec<WorkItem> {
        points
            .iter()
            .enumerate()
            .map(|(index, &s)| WorkItem { measure, index, s })
            .collect()
    }

    fn collect(
        transport: &dyn Transport,
        plan: ExecutionPlan<'_>,
    ) -> (Vec<WorkItemOutcome>, TransportReport) {
        let mut outcomes = Vec::new();
        let report = transport
            .execute(plan, &mut |message| outcomes.extend(message.results))
            .unwrap();
        outcomes.sort_by_key(|o| o.item.index);
        (outcomes, report)
    }

    #[test]
    fn in_process_closure_plan_evaluates_everything() {
        let points: Vec<Complex64> = (1..=9).map(|k| Complex64::new(k as f64, 0.5)).collect();
        let square = |s: Complex64| -> Result<Complex64, String> { Ok(s * s) };
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Closure(&square)],
            items: items_for(&points, 0),
            chunk_size: 2,
            method: "euler".to_string(),
        };
        let transport = InProcess::new(3);
        assert_eq!(transport.name(), "in-process");
        let (outcomes, report) = collect(&transport, plan);
        assert_eq!(outcomes.len(), 9);
        for outcome in &outcomes {
            assert_eq!(
                outcome.outcome.clone().unwrap(),
                outcome.item.s * outcome.item.s
            );
        }
        assert_eq!(report.bytes_on_wire, 0, "shared memory ships no bytes");
        assert_eq!(report.disconnects, 0);
        let evaluated: usize = report.worker_stats.iter().map(|w| w.evaluated).sum();
        assert_eq!(evaluated, 9);
        assert_eq!(
            report.messages,
            report
                .worker_stats
                .iter()
                .map(|w| w.messages)
                .sum::<usize>()
        );
    }

    #[test]
    fn in_process_spec_plan_matches_the_analytic_transform() {
        let spec = TransformSpec::Analytic(DistSpec::Erlang {
            rate: 2.0,
            phases: 3,
        });
        let points: Vec<Complex64> = (1..=5)
            .map(|k| Complex64::new(0.3 * k as f64, 1.0))
            .collect();
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&points, 0),
            chunk_size: 3,
            method: "euler".to_string(),
        };
        let (outcomes, _) = collect(&InProcess::new(2), plan);
        let d = Dist::erlang(2.0, 3);
        for outcome in outcomes {
            assert_eq!(outcome.outcome.unwrap(), d.lst(outcome.item.s));
        }
    }

    #[test]
    fn simulated_latency_accounts_wire_bytes() {
        let points: Vec<Complex64> = (1..=6).map(|k| Complex64::new(k as f64, 2.0)).collect();
        let identity = |s: Complex64| -> Result<Complex64, String> { Ok(s) };
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Closure(&identity)],
            items: items_for(&points, 0),
            chunk_size: 3,
            method: "euler".to_string(),
        };
        let transport = SimulatedLatency::new(2, Duration::from_millis(1));
        assert_eq!(transport.name(), "sim-latency");
        let (outcomes, report) = collect(&transport, plan);
        assert_eq!(outcomes.len(), 6);
        assert!(
            report.bytes_on_wire > 0,
            "simulated backend reports the bytes a network would ship"
        );
        // 6 points at chunk size 3 → 2 request/response pairs, counted in
        // both directions like the TCP backend (no job frame: closure plan).
        assert_eq!(report.messages, 4);
    }

    #[test]
    fn tcp_transport_rejects_closure_plans() {
        let transport = TcpTransport::bind(&["127.0.0.1:0"]).unwrap();
        let f = |s: Complex64| -> Result<Complex64, String> { Ok(s) };
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Closure(&f)],
            items: Vec::new(),
            chunk_size: 1,
            method: "euler".to_string(),
        };
        let error = transport.execute(plan, &mut |_| {}).unwrap_err();
        assert!(error.to_string().contains("process boundary"), "{error}");
    }

    #[test]
    fn tcp_round_trip_with_in_process_worker_threads() {
        // A miniature cluster inside one test: the master side binds two
        // listeners, two "processes" (threads running the real worker loop)
        // dial in, and the whole frame protocol runs over real sockets.
        let spec = TransformSpec::Analytic(DistSpec::Exponential { rate: 1.5 });
        let points: Vec<Complex64> = (1..=20)
            .map(|k| Complex64::new(0.2 * k as f64, -1.0))
            .collect();
        let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(10));
        assert_eq!(transport.name(), "tcp");
        assert_eq!(transport.num_workers(), 2);
        let addrs = transport.local_addrs();

        let workers: Vec<std::thread::JoinHandle<Result<TcpWorkerSummary, String>>> = addrs
            .iter()
            .map(|addr| {
                let connect = addr.to_string();
                std::thread::spawn(move || run_tcp_worker(&connect, &TcpWorkerOptions::default()))
            })
            .collect();

        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&points, 0),
            chunk_size: 4,
            method: "euler".to_string(),
        };
        let (outcomes, report) = collect(&transport, plan);
        assert_eq!(outcomes.len(), 20);
        let d = Dist::exponential(1.5);
        for outcome in &outcomes {
            assert_eq!(
                outcome.outcome.clone().unwrap(),
                d.lst(outcome.item.s),
                "bit-exact through the wire"
            );
        }
        assert!(report.bytes_on_wire > 0);
        assert_eq!(report.disconnects, 0);
        let by_workers: usize = report.worker_stats.iter().map(|w| w.evaluated).sum();
        assert_eq!(by_workers, 20);

        let mut total = 0;
        for handle in workers {
            let summary = handle.join().unwrap().unwrap();
            assert!(!summary.dropped_early);
            total += summary.evaluated;
        }
        assert_eq!(total, 20);
    }

    fn sharded_spec_and_points() -> (TransformSpec, Vec<Complex64>, Vec<Complex64>) {
        let spec = TransformSpec::passage(
            crate::transform::ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            smp_core::query::TargetSpec::parse("p2>=2").unwrap(),
        );
        let points = vec![
            Complex64::new(0.9, 0.0),
            Complex64::new(0.4, 1.3),
            Complex64::new(1.7, -0.8),
        ];
        let set = CompiledModelSet::compile(std::slice::from_ref(&spec)).unwrap();
        let evaluator = set.evaluator(0).unwrap();
        let expected = points.iter().map(|&s| evaluator.eval(s).unwrap()).collect();
        (spec, points, expected)
    }

    #[test]
    fn sharded_tcp_session_matches_the_local_evaluator_bitwise() {
        // Three real worker loops over real sockets, each holding one row
        // slice; the master folds their lockstep SpMV rounds.
        let (spec, points, expected) = sharded_spec_and_points();
        let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(10));
        let addrs = transport.local_addrs();
        let workers: Vec<std::thread::JoinHandle<Result<TcpWorkerSummary, String>>> = addrs
            .iter()
            .map(|addr| {
                let connect = addr.to_string();
                std::thread::spawn(move || run_tcp_worker(&connect, &TcpWorkerOptions::default()))
            })
            .collect();

        let (channels, messages, bytes) = transport.accept_slice_channels().unwrap();
        assert_eq!(messages, 3, "one hello per worker");
        assert!(bytes > 0);
        let mut fleet = crate::shard::SliceFleet::from_channels(channels);
        let out = fleet.solve(&spec, &points).unwrap();
        assert_eq!(out.values, expected, "bit-exact through the wire");
        assert_eq!(out.disconnects, 0);
        assert_eq!(out.shard_states.len(), 3);
        assert_eq!(out.shard_states.iter().sum::<usize>(), out.num_states);
        assert!(out.halo_bytes > 0, "boundary exchange shipped real bytes");
        fleet.release();

        for handle in workers {
            let summary = handle.join().unwrap().unwrap();
            assert_eq!(summary.jobs, 1, "one slice session served");
            assert_eq!(summary.evaluated, points.len(), "every point refilled");
            assert!(!summary.dropped_early);
        }
    }

    #[test]
    fn sharded_tcp_worker_kill_is_resharded_onto_survivors() {
        let (spec, points, expected) = sharded_spec_and_points();
        let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(10));
        let addrs = transport.local_addrs();

        // Worker 1 vanishes mid-point after five slice responses; the master
        // re-shards the session across the two survivors and redoes the
        // in-flight point — the values cannot tell the difference because
        // the block boundaries are a pure function of N and the shard count.
        let flaky_addr = addrs[1].to_string();
        let flaky = std::thread::spawn(move || {
            run_tcp_worker(
                &flaky_addr,
                &TcpWorkerOptions {
                    exit_after_chunks: Some(5),
                    ..Default::default()
                },
            )
        });
        let steady: Vec<std::thread::JoinHandle<Result<TcpWorkerSummary, String>>> =
            [&addrs[0], &addrs[2]]
                .iter()
                .map(|addr| {
                    let connect = addr.to_string();
                    std::thread::spawn(move || {
                        run_tcp_worker(&connect, &TcpWorkerOptions::default())
                    })
                })
                .collect();

        let (channels, _, _) = transport.accept_slice_channels().unwrap();
        let mut fleet = crate::shard::SliceFleet::from_channels(channels);
        let out = fleet.solve(&spec, &points).unwrap();
        assert_eq!(out.values, expected, "requeue preserves bitwise identity");
        assert_eq!(out.disconnects, 1);
        assert_eq!(fleet.shards(), 2);
        assert_eq!(out.shard_states.len(), 2, "memory model tracks survivors");
        fleet.release();

        let flaky_summary = flaky.join().unwrap().unwrap();
        assert!(flaky_summary.dropped_early);
        for handle in steady {
            handle.join().unwrap().unwrap();
        }
    }

    #[test]
    fn worker_disconnect_requeues_its_outstanding_chunk() {
        let spec = TransformSpec::Analytic(DistSpec::Exponential { rate: 1.0 });
        let points: Vec<Complex64> = (1..=12)
            .map(|k| Complex64::new(0.5 * k as f64, 1.0))
            .collect();
        let transport = TcpTransport::bind(&["127.0.0.1:0", "127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(10));
        let addrs = transport.local_addrs();

        // Worker 0 vanishes after a single chunk; worker 1 is healthy.
        let flaky_addr = addrs[0].to_string();
        let flaky = std::thread::spawn(move || {
            run_tcp_worker(
                &flaky_addr,
                &TcpWorkerOptions {
                    exit_after_chunks: Some(1),
                    ..Default::default()
                },
            )
        });
        let healthy_addr = addrs[1].to_string();
        let healthy =
            std::thread::spawn(move || run_tcp_worker(&healthy_addr, &TcpWorkerOptions::default()));

        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&points, 0),
            chunk_size: 2,
            method: "euler".to_string(),
        };
        let (outcomes, report) = collect(&transport, plan);
        // Every point was evaluated exactly once despite the disconnect…
        assert_eq!(outcomes.len(), 12);
        let d = Dist::exponential(1.0);
        for outcome in &outcomes {
            assert_eq!(outcome.outcome.clone().unwrap(), d.lst(outcome.item.s));
        }
        // …and the report records the casualty.
        assert_eq!(report.disconnects, 1);
        let flaky_summary = flaky.join().unwrap().unwrap();
        assert!(flaky_summary.dropped_early);
        assert_eq!(flaky_summary.chunks, 1);
        healthy.join().unwrap().unwrap();
    }

    #[test]
    fn worker_reports_fatal_on_uncompilable_specs() {
        let bad = TransformSpec::passage(
            ModelSpec::Voting {
                voters: 2,
                polling: 1,
                central: 1,
            },
            TargetSpec::parse("nosuchplace>=1").unwrap(),
        );
        let transport = TcpTransport::bind(&["127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(10));
        let addr = transport.local_addrs()[0].to_string();
        let worker =
            std::thread::spawn(move || run_tcp_worker(&addr, &TcpWorkerOptions::default()));

        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&bad)],
            items: items_for(&[Complex64::ONE], 0),
            chunk_size: 1,
            method: "euler".to_string(),
        };
        let error = transport.execute(plan, &mut |_| {}).unwrap_err();
        assert!(error.to_string().contains("nosuchplace"), "{error}");
        let summary = worker.join().unwrap();
        assert!(summary.unwrap_err().contains("nosuchplace"));
    }

    #[test]
    fn silent_connected_worker_times_out_instead_of_hanging_the_run() {
        // A client that dials the rendezvous port and never speaks (a port
        // scanner, a SIGSTOPped worker) must not hang execute() forever: the
        // per-read io timeout declares it lost and the run fails cleanly.
        let spec = TransformSpec::Analytic(DistSpec::Exponential { rate: 1.0 });
        let transport = TcpTransport::bind(&["127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_secs(5))
            .with_io_timeout(Duration::from_millis(200));
        let addr = transport.local_addrs()[0];
        let mute = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_secs(3));
            drop(stream);
        });
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&[Complex64::ONE], 0),
            chunk_size: 1,
            method: "euler".to_string(),
        };
        let started = Instant::now();
        let error = transport.execute(plan, &mut |_| {}).unwrap_err();
        assert!(error.to_string().contains("left undone"), "{error}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "timed out via io timeout, not by luck: {:?}",
            started.elapsed()
        );
        mute.join().unwrap();
    }

    #[test]
    fn accept_timeout_fails_cleanly_when_no_worker_dials_in() {
        let spec = TransformSpec::Analytic(DistSpec::Exponential { rate: 1.0 });
        let transport = TcpTransport::bind(&["127.0.0.1:0"])
            .unwrap()
            .with_accept_timeout(Duration::from_millis(100));
        let plan = ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&[Complex64::ONE], 0),
            chunk_size: 1,
            method: "euler".to_string(),
        };
        let error = transport.execute(plan, &mut |_| {}).unwrap_err();
        assert!(error.to_string().contains("left undone"), "{error}");
    }

    #[test]
    fn fault_plans_replay_deterministically() {
        // Scripted ops fire at exactly their index.
        let mut plan = FaultPlan::scripted([
            (2, FaultKind::DropFrame),
            (5, FaultKind::CorruptByte { xor: 0x10 }),
        ]);
        let fired: Vec<FaultKind> = (0..8).map(|_| plan.next_op()).collect();
        assert_eq!(fired[2], FaultKind::DropFrame);
        assert_eq!(fired[5], FaultKind::CorruptByte { xor: 0x10 });
        assert_eq!(
            fired.iter().filter(|k| **k != FaultKind::Pass).count(),
            2,
            "nothing fires off-script"
        );
        assert_eq!(plan.ops_seen(), 8);
        assert_eq!(plan.injected(), 2);

        // Seeded schedules are pure functions of (seed, op): two instances
        // replay identically, a different seed diverges somewhere.
        let mut a = FaultPlan::seeded(42, 5);
        let mut b = FaultPlan::seeded(42, 5);
        let run_a: Vec<FaultKind> = (0..200).map(|_| a.next_op()).collect();
        let run_b: Vec<FaultKind> = (0..200).map(|_| b.next_op()).collect();
        assert_eq!(run_a, run_b, "same seed must replay exactly");
        assert!(a.injected() > 0, "a 1-in-5 schedule over 200 ops fires");
        assert!(
            run_a.iter().all(|k| !matches!(k, FaultKind::Delay { .. })),
            "seeded schedules never delay (tests must stay fast)"
        );

        // A budget caps total injections.
        let mut capped = FaultPlan::seeded(42, 5).with_budget(3);
        for _ in 0..200 {
            capped.next_op();
        }
        assert_eq!(capped.injected(), 3);
    }

    #[test]
    fn backoff_schedules_are_deterministic_jittered_and_capped() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let mut a = Backoff::for_endpoint(base, max, "10.0.0.5:9000");
        let mut b = Backoff::for_endpoint(base, max, "10.0.0.5:9000");
        let delays_a: Vec<Duration> = (0..10).map(|_| a.next_delay()).collect();
        let delays_b: Vec<Duration> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(delays_a, delays_b, "same endpoint → same schedule");
        assert_eq!(a.attempts(), 10);
        for (k, &d) in delays_a.iter().enumerate() {
            // Jitter lives in [0.5, 1.0): never less than half the doubled
            // base, never at or above the cap × 1.0.
            let ceiling = base.saturating_mul(1 << k.min(16) as u32).min(max);
            assert!(d >= ceiling / 2, "attempt {k}: {d:?} under the floor");
            assert!(d < ceiling, "attempt {k}: {d:?} at or over the ceiling");
        }
        // A different endpoint de-synchronizes.
        let mut c = Backoff::for_endpoint(base, max, "10.0.0.6:9000");
        let delays_c: Vec<Duration> = (0..10).map(|_| c.next_delay()).collect();
        assert_ne!(delays_a, delays_c, "distinct endpoints must not stampede");
    }

    #[test]
    fn faulty_transport_recovers_to_bitwise_identical_outcomes() {
        let spec = TransformSpec::Analytic(DistSpec::Erlang {
            rate: 1.25,
            phases: 4,
        });
        let points: Vec<Complex64> = (1..=12)
            .map(|k| Complex64::new(0.15 * k as f64, 0.4 * k as f64 - 2.0))
            .collect();
        let make_plan = || ExecutionPlan {
            evaluators: vec![Evaluator::Spec(&spec)],
            items: items_for(&points, 0),
            chunk_size: 2,
            method: "euler".to_string(),
        };
        let (clean, _) = collect(&InProcess::new(2), make_plan());
        let schedules = [
            FaultPlan::scripted([(1, FaultKind::DropFrame)]),
            FaultPlan::scripted([(0, FaultKind::CorruptByte { xor: 0x20 })]),
            FaultPlan::scripted([
                (2, FaultKind::DropFrame),
                (4, FaultKind::CorruptByte { xor: 0x01 }),
                (7, FaultKind::Disconnect),
            ]),
            FaultPlan::seeded(7, 4).with_budget(5),
        ];
        for plan in schedules {
            let faulty = FaultyTransport::new(InProcess::new(2), plan);
            assert_eq!(faulty.name(), "faulty");
            assert!(faulty.reusable());
            let (outcomes, _) = collect(&faulty, make_plan());
            assert_eq!(outcomes.len(), clean.len());
            for (got, want) in outcomes.iter().zip(&clean) {
                assert_eq!(got.item, want.item);
                let (got_v, want_v) = (got.outcome.clone().unwrap(), want.outcome.clone().unwrap());
                assert_eq!(got_v.re.to_bits(), want_v.re.to_bits());
                assert_eq!(got_v.im.to_bits(), want_v.im.to_bits());
            }
            assert!(
                faulty.recovered_faults() > 0,
                "every schedule here injects at least one fault"
            );
            assert!(faulty.retried_items() > 0, "recovery re-executes items");
        }
    }

    #[test]
    fn faulty_stream_corruption_is_refused_by_the_frame_reader() {
        // Three frames through a FaultyStream into a buffer: op 0 passes,
        // op 1 is corrupted, op 2 dropped.  The reader must accept the first,
        // refuse the second, and see clean EOF instead of the third.
        let plan = FaultPlan::scripted([
            (1, FaultKind::CorruptByte { xor: 0x08 }),
            (2, FaultKind::DropFrame),
        ]);
        let mut stream = FaultyStream::new(Vec::<u8>::new(), plan);
        for nonce in 0..3u64 {
            write_frame(&mut stream, &Frame::Ping { nonce }).unwrap();
        }
        assert_eq!(stream.injected(), 2);
        let bytes = stream.into_inner();
        let mut cursor = std::io::Cursor::new(bytes);
        let (first, _) = read_frame(&mut cursor).unwrap();
        assert_eq!(first, Frame::Ping { nonce: 0 });
        let refusal = read_frame(&mut cursor).unwrap_err();
        assert!(
            crate::wire::wire_error_of(&refusal).is_some()
                || refusal.kind() == std::io::ErrorKind::InvalidData,
            "corruption must surface as a typed refusal, got {refusal:?}"
        );
        // The dropped frame shipped no bytes: nothing further to read.
        let rest = {
            use std::io::Read;
            let mut sink = Vec::new();
            let position = cursor.position() as usize;
            cursor.read_to_end(&mut sink).unwrap();
            let _ = position;
            sink
        };
        // After the corrupted frame's bytes there is nothing: the reader
        // consumed up to the corrupt payload, and the dropped frame vanished.
        assert!(rest.len() < crate::wire::FRAME_HEADER_BYTES as usize + 2);

        // A disconnect kills the stream for good.
        let plan = FaultPlan::scripted([(0, FaultKind::Disconnect)]);
        let mut dead = FaultyStream::new(Vec::<u8>::new(), plan);
        let error = write_frame(&mut dead, &Frame::Ping { nonce: 9 }).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::ConnectionAborted);
        let error = write_frame(&mut dead, &Frame::Ping { nonce: 10 }).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::ConnectionAborted);
    }

    #[test]
    fn a_restarted_master_rebinds_its_port_through_time_wait() {
        // After a master dies mid-session, the kernel parks its half of each
        // accepted connection in TIME_WAIT on the *listener's* port for up to
        // a minute.  A restarted master must re-bind that exact advertised
        // port immediately — workers are redialing it — which only works when
        // both generations of the listener set SO_REUSEADDR before bind.
        //
        // Reproduce the state in-process: accept a connection, then close the
        // master side *first* (active close → our port owns the TIME_WAIT
        // entry), then re-bind the same port.
        let listener = bind_reusable_to("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let accepted = listener.accept().unwrap().0;
        drop(accepted); // master sends FIN first: TIME_WAIT lands on addr
        let mut sink = Vec::new();
        let mut client = client;
        std::io::Read::read_to_end(&mut client, &mut sink).unwrap(); // EOF
        drop(client);
        drop(listener);
        let reborn = bind_reusable_to(addr)
            .expect("immediate re-bind of a crashed master's port must succeed");
        assert_eq!(reborn.local_addr().unwrap(), addr);
    }

    #[test]
    fn reconnecting_worker_redials_after_a_master_crash_and_answers_pings() {
        // A worker with a reconnect budget treats EOF as "the master may be
        // restarting" (a kill -9 and a clean close are indistinguishable at
        // the socket) and exits only on an explicit outer Done.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let worker = std::thread::spawn(move || {
            run_tcp_worker(
                &addr.to_string(),
                &TcpWorkerOptions {
                    connect_attempts: 40,
                    retry_delay: Duration::from_millis(10),
                    idle_timeout: Some(Duration::from_secs(5)),
                    exit_after_chunks: None,
                    reconnect_attempts: 5,
                },
            )
        });
        // Session 1: accept the hello, then vanish without a farewell —
        // exactly what a kill -9'd master looks like from the worker.
        {
            let mut conn = listener.accept().unwrap().0;
            let (hello, _) = read_frame(&mut conn).unwrap();
            assert_eq!(
                hello,
                Frame::Hello {
                    version: WIRE_VERSION
                }
            );
            // conn drops here: EOF at the worker.
        }
        // Session 2: the worker redials.  Probe it with a heartbeat, then
        // release it with the explicit outer farewell.
        {
            let mut conn = listener.accept().unwrap().0;
            let (hello, _) = read_frame(&mut conn).unwrap();
            assert_eq!(
                hello,
                Frame::Hello {
                    version: WIRE_VERSION
                }
            );
            write_frame(&mut conn, &Frame::Ping { nonce: 77 }).unwrap();
            let (pong, _) = read_frame(&mut conn).unwrap();
            assert_eq!(pong, Frame::Pong { nonce: 77 });
            write_frame(&mut conn, &Frame::Done).unwrap();
        }
        let summary = worker.join().unwrap().unwrap();
        assert_eq!(summary.reconnects, 1, "one redial after the crash");
        assert_eq!(summary.jobs, 0);
    }
}
