//! Batch jobs: families of measures solved in one pipeline run.
//!
//! Realistic studies rarely ask for a single curve — they ask for *families* of
//! quantities: passage-time densities and CDFs for several source/target pairs,
//! transient probabilities for several state sets, all over shared (or
//! overlapping) time grids.  A [`BatchJob`] is that workload: an ordered list of
//! [`MeasureSpec`]s, each pairing a Laplace-domain transform with a time grid
//! and a post-processing kind.  `DistributedPipeline::run_batch` plans the
//! union of required `s`-points per transform, dedupes against the
//! measure-keyed cache and checkpoint, and solves everything through one shared
//! work queue — the paper's "cache results both within and across successive
//! queries" realised as an API.

use crate::transform::TransformSpec;
use crate::transport::Evaluator;
use crate::worker::{TransformFn, WorkerStats};
use smp_laplace::{SPointPlan, TransformValues};
use smp_numeric::Complex64;
use std::time::Duration;

/// How a measure's inverted values are derived from its transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureKind {
    /// Invert the transform directly — a passage-time *density* `f(t)`.
    Density,
    /// Invert `L(s)/s` (the "/s trick"), then clamp into `[0, 1]` and make
    /// monotone — a passage-time *CDF* `F(t)`.  The cached values are the raw
    /// density transform, so a CDF measure can share evaluations with a density
    /// measure over the same transform key.
    Cdf,
    /// Invert directly, then clamp into `[0, 1]` — a transient state
    /// probability `P(Z(t) ∈ targets)`.
    Transient,
}

impl MeasureKind {
    /// Short lower-case name (used in reports and by the `smpq` CLI).
    pub fn name(&self) -> &'static str {
        match self {
            MeasureKind::Density => "density",
            MeasureKind::Cdf => "cdf",
            MeasureKind::Transient => "transient",
        }
    }

    /// Inverts a measure's plan from its cached transform shard, applying the
    /// kind-specific post-processing.  This is the *only* place the `/s`
    /// trick's inversion side lives: a CDF measure's shard holds the **raw**
    /// density values (so they stay sharable with density measures over the
    /// same transform key), and the division happens here, on a derived copy,
    /// followed by the `[0, 1]` clamp and the monotone sweep.
    ///
    /// # Panics
    /// Panics when the shard does not cover the plan (callers check
    /// `plan.is_satisfied_by(shard)` first).
    pub fn postprocess(&self, plan: &SPointPlan, shard: &TransformValues) -> Vec<f64> {
        match self {
            MeasureKind::Density => plan.invert(shard),
            MeasureKind::Cdf => {
                let mut derived = TransformValues::new();
                for &s in plan.s_points() {
                    let value = shard.get(s).expect("plan satisfied by shard");
                    derived.insert(s, value / s);
                }
                let mut values = plan.invert(&derived);
                let mut running_max: f64 = 0.0;
                for v in values.iter_mut() {
                    *v = v.clamp(0.0, 1.0).max(running_max);
                    running_max = *v;
                }
                values
            }
            MeasureKind::Transient => plan
                .invert(shard)
                .into_iter()
                .map(|p| p.clamp(0.0, 1.0))
                .collect(),
        }
    }
}

/// How a measure's transform is evaluated: a live in-process closure, or a
/// serializable [`TransformSpec`] that any backend — including a worker on the
/// other end of a socket — can rebuild into an evaluator.
enum MeasureTransform<'a> {
    Closure(Box<TransformFn<'a>>),
    Spec(TransformSpec),
}

/// One measure of a batch job: a named transform, the time grid to invert it
/// on, and the post-processing kind.
pub struct MeasureSpec<'a> {
    name: String,
    kind: MeasureKind,
    t_points: Vec<f64>,
    transform_key: String,
    transform: MeasureTransform<'a>,
}

impl std::fmt::Debug for MeasureSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasureSpec")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("t_points", &self.t_points.len())
            .field("transform_key", &self.transform_key)
            .finish()
    }
}

impl<'a> MeasureSpec<'a> {
    /// Creates a measure.  `transform` is the Laplace-domain evaluator — for
    /// [`MeasureKind::Density`] and [`MeasureKind::Cdf`] the *density*
    /// transform `L(s)` (the `/s` division happens at inversion time), for
    /// [`MeasureKind::Transient`] the transient transform.
    ///
    /// The measure's cache/checkpoint *transform key* defaults to its name;
    /// measures that evaluate the same transform should share a key via
    /// [`MeasureSpec::with_transform_key`] so their evaluations are shared too.
    pub fn new<F>(
        name: impl Into<String>,
        kind: MeasureKind,
        t_points: &[f64],
        transform: F,
    ) -> Self
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync + 'a,
    {
        let name = name.into();
        MeasureSpec {
            transform_key: name.clone(),
            name,
            kind,
            t_points: t_points.to_vec(),
            transform: MeasureTransform::Closure(Box::new(transform)),
        }
    }

    /// Creates a measure from a serializable [`TransformSpec`] instead of a
    /// closure.  Spec-based measures run on *every* transport backend — the
    /// TCP backend requires them, since a closure cannot cross a process
    /// boundary — and default their transform key to
    /// [`TransformSpec::transform_key`], which folds the model fingerprint in.
    pub fn from_spec(
        name: impl Into<String>,
        kind: MeasureKind,
        t_points: &[f64],
        spec: TransformSpec,
    ) -> MeasureSpec<'static> {
        MeasureSpec {
            transform_key: spec.transform_key(),
            name: name.into(),
            kind,
            t_points: t_points.to_vec(),
            transform: MeasureTransform::Spec(spec),
        }
    }

    /// A [`MeasureKind::Density`] measure.
    pub fn density<F>(name: impl Into<String>, t_points: &[f64], transform: F) -> Self
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync + 'a,
    {
        MeasureSpec::new(name, MeasureKind::Density, t_points, transform)
    }

    /// A [`MeasureKind::Cdf`] measure over a *density* transform.
    pub fn cdf<F>(name: impl Into<String>, t_points: &[f64], transform: F) -> Self
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync + 'a,
    {
        MeasureSpec::new(name, MeasureKind::Cdf, t_points, transform)
    }

    /// A [`MeasureKind::Transient`] measure over a transient transform.
    pub fn transient<F>(name: impl Into<String>, t_points: &[f64], transform: F) -> Self
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync + 'a,
    {
        MeasureSpec::new(name, MeasureKind::Transient, t_points, transform)
    }

    /// Overrides the transform key.  Measures with equal keys are assumed to
    /// evaluate the *same* transform and will share cache entries, checkpoint
    /// records and work-queue evaluations.
    pub fn with_transform_key(mut self, key: impl Into<String>) -> Self {
        self.transform_key = key.into();
        self
    }

    /// The measure's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measure's post-processing kind.
    pub fn kind(&self) -> MeasureKind {
        self.kind
    }

    /// The measure's output time grid.
    pub fn t_points(&self) -> &[f64] {
        &self.t_points
    }

    /// The cache/checkpoint key this measure's transform values live under.
    pub fn transform_key(&self) -> &str {
        &self.transform_key
    }

    /// The measure's transform spec, when it was built with
    /// [`MeasureSpec::from_spec`].
    pub fn transform_spec(&self) -> Option<&TransformSpec> {
        match &self.transform {
            MeasureTransform::Spec(spec) => Some(spec),
            MeasureTransform::Closure(_) => None,
        }
    }

    pub(crate) fn evaluator(&self) -> Evaluator<'_> {
        match &self.transform {
            MeasureTransform::Closure(f) => Evaluator::Closure(f.as_ref()),
            MeasureTransform::Spec(spec) => Evaluator::Spec(spec),
        }
    }
}

/// An ordered collection of measures solved together in one pipeline run.
#[derive(Debug, Default)]
pub struct BatchJob<'a> {
    measures: Vec<MeasureSpec<'a>>,
}

impl<'a> BatchJob<'a> {
    /// Creates an empty job.
    pub fn new() -> Self {
        BatchJob::default()
    }

    /// Adds a measure (builder style).
    pub fn with_measure(mut self, measure: MeasureSpec<'a>) -> Self {
        self.measures.push(measure);
        self
    }

    /// Adds a measure in place.
    pub fn push(&mut self, measure: MeasureSpec<'a>) {
        self.measures.push(measure);
    }

    /// The measures in submission order.
    pub fn measures(&self) -> &[MeasureSpec<'a>] {
        &self.measures
    }

    /// Number of measures in the job.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// True when the job has no measures.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    pub(crate) fn into_measures(self) -> Vec<MeasureSpec<'a>> {
        self.measures
    }
}

/// The outcome of one measure of a batch run.
#[derive(Debug, Clone)]
pub struct MeasureResult {
    /// The measure's name, copied from its [`MeasureSpec`].
    pub name: String,
    /// The measure's post-processing kind.
    pub kind: MeasureKind,
    /// The measure's output time grid.
    pub t_points: Vec<f64>,
    /// The inverted (and kind-specific post-processed) values on that grid.
    pub values: Vec<f64>,
    /// Number of `s`-points this measure caused to be evaluated in this run.
    pub evaluations: usize,
    /// Number of this measure's planned `s`-points satisfied from the restored
    /// cache/checkpoint without any new evaluation.
    pub cache_hits: usize,
    /// Number of planned `s`-points satisfied by another measure of the *same
    /// batch* that shares this measure's transform key (union planning).
    pub shared_hits: usize,
}

impl MeasureResult {
    /// Iterates over `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t_points
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }
}

/// The outcome of a whole batch run.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-measure results, in the job's submission order.
    pub measures: Vec<MeasureResult>,
    /// Wall-clock duration of the whole run (planning to inversion).
    pub elapsed: Duration,
    /// Total number of `s`-points evaluated in this run.
    pub evaluations: usize,
    /// Total number of planned `s`-points satisfied from the restored
    /// cache/checkpoint (sum of the per-measure `cache_hits`).
    pub cache_hits: usize,
    /// Total number of planned `s`-points shared between measures of this
    /// batch (sum of the per-measure `shared_hits`).
    pub shared_hits: usize,
    /// The chunk size the work queue dispensed items with.
    pub chunk_size: usize,
    /// Number of chunks dispatched (equals the number of worker messages).
    pub chunks_dispatched: usize,
    /// Name of the transport backend that ran the evaluations.
    pub backend: &'static str,
    /// Aggregate symbolic/numeric-split counters of the run's local
    /// evaluators: kernel-matrix rebuilds avoided and pooled LST evaluations
    /// (see `smp_core::workspace`).  Zero for TCP runs, whose workers count
    /// on their side of the wire.
    pub hotpath: smp_core::HotPathStats,
    /// Protocol messages exchanged with the workers (see
    /// [`crate::transport::TransportReport::messages`]).
    pub messages: usize,
    /// Bytes shipped (or, for the simulated-latency backend, bytes that
    /// *would* be shipped) over the wire; zero in-process.
    pub bytes_on_wire: u64,
    /// Workers lost before the queue drained (their outstanding chunks were
    /// requeued onto the survivors).
    pub disconnects: usize,
    /// Reachable markings of the state space, when the backend compiled the
    /// job's specs in-process (`None` for closure-based jobs, TCP runs —
    /// whose workers explore remotely — and fully-warm runs that never
    /// touched the transport).
    pub states: Option<usize>,
    /// Compiled model sets served from a shared
    /// [`CompiledSetCache`](crate::transform::CompiledSetCache) without
    /// re-exploring the state space (zero without an attached cache).
    pub model_cache_hits: usize,
    /// Compiled model sets this run compiled — each one a state-space
    /// exploration per distinct model in the job.
    pub model_cache_misses: usize,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
}

impl BatchResult {
    /// Looks a measure's result up by name.
    pub fn measure(&self, name: &str) -> Option<&MeasureResult> {
        self.measures.iter().find(|m| m.name == name)
    }
}
