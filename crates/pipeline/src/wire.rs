//! Stable wire encoding shared by the checkpoint format and the TCP transport.
//!
//! The original tool shipped `s`-point requests and transform values between
//! the master and its slave processors as messages over the cluster's
//! message-passing layer.  This module is that layer's encoding: a small,
//! versioned, text-based format with two primitives —
//!
//! * **strings** are percent-encoded into a single whitespace-free field
//!   (exactly the encoding the measure-tagged checkpoint records use for their
//!   transform keys), and
//! * **floats** are written as the 16-hex-digit big-endian bit pattern of the
//!   `f64` (exactly the encoding checkpoint records use for `s` and `L(s)`),
//!   so a value survives the master⇄worker round trip *bit for bit* and a
//!   TCP-backed run inverts from identical inputs to an in-process run.
//!
//! On top of the field primitives sit the protocol [`Frame`]s exchanged over a
//! transport connection (see [`crate::transport`]) and the serialization of
//! [`WorkItem`], [`WorkItemOutcome`] and [`WorkerMessage`].  Frames on a socket
//! are length-prefixed (`u32` big-endian byte count, then that many bytes of
//! UTF-8 payload), so the stream needs no sentinel characters and payloads may
//! contain newlines.
//!
//! Numbers that are *quantities* (an `s`-point, a transform value's components)
//! are rejected when non-finite: a NaN or infinity entering the cache or the
//! checkpoint would silently poison every inversion that touches it, so the
//! encoder turns such outcomes into errors at the boundary instead.

use crate::work::WorkItem;
use crate::worker::{WorkItemOutcome, WorkerMessage};
use smp_numeric::Complex64;
use std::io::{Read, Write};

/// Protocol version spoken by this build (first field of `hello`/`job` frames).
pub const WIRE_VERSION: u32 = 1;

/// An encoding or decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A float field was NaN or infinite where a finite quantity is required.
    NonFinite {
        /// Which field was non-finite.
        field: &'static str,
    },
    /// The payload could not be parsed.
    Malformed {
        /// What went wrong.
        message: String,
    },
    /// The peer speaks an incompatible protocol version.
    Version {
        /// The version the peer announced.
        got: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::NonFinite { field } => {
                write!(f, "non-finite value in wire field '{field}'")
            }
            WireError::Malformed { message } => write!(f, "malformed wire payload: {message}"),
            WireError::Version { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, this build speaks {WIRE_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Field primitives
// ---------------------------------------------------------------------------

/// Percent-encodes a string into one whitespace-free field (alphanumerics and
/// `-_.:+/` pass through unchanged).  Shared with the checkpoint format's
/// measure-tagged records.
pub fn encode_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b':' | b'+' | b'/' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02x}")),
        }
    }
    out
}

/// Inverse of [`encode_str`].  Returns `None` for malformed escapes or invalid
/// UTF-8.
pub fn decode_str(field: &str) -> Option<String> {
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Encodes an `f64` as its 16-hex-digit bit pattern (bit-exact; shared with
/// the checkpoint format).  Accepts any value, including NaN — use
/// [`encode_finite_f64`] for quantity fields.
pub fn encode_f64(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Encodes a *quantity* `f64`, rejecting NaN and infinities.
pub fn encode_finite_f64(value: f64, field: &'static str) -> Result<String, WireError> {
    if !value.is_finite() {
        return Err(WireError::NonFinite { field });
    }
    Ok(encode_f64(value))
}

/// Decodes a 16-hex-digit `f64` field (any bit pattern).
pub fn decode_f64(field: &str) -> Option<f64> {
    if field.len() != 16 {
        return None; // a short field is a record truncated mid-write
    }
    u64::from_str_radix(field, 16).ok().map(f64::from_bits)
}

/// Decodes a *quantity* `f64` field, rejecting NaN and infinities.
pub fn decode_finite_f64(field: &str, name: &'static str) -> Result<f64, WireError> {
    let value =
        decode_f64(field).ok_or_else(|| malformed(format!("bad f64 field '{name}': {field}")))?;
    if !value.is_finite() {
        return Err(WireError::NonFinite { field: name });
    }
    Ok(value)
}

/// Encodes a complex quantity as two finite-`f64` fields.
pub fn encode_complex(value: Complex64, field: &'static str) -> Result<String, WireError> {
    Ok(format!(
        "{} {}",
        encode_finite_f64(value.re, field)?,
        encode_finite_f64(value.im, field)?
    ))
}

fn take<'a>(parts: &mut impl Iterator<Item = &'a str>, name: &str) -> Result<&'a str, WireError> {
    parts
        .next()
        .ok_or_else(|| malformed(format!("missing field '{name}'")))
}

fn take_usize<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<usize, WireError> {
    take(parts, name)?
        .parse()
        .map_err(|_| malformed(format!("bad integer field '{name}'")))
}

fn take_complex<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    name: &'static str,
) -> Result<Complex64, WireError> {
    let re = decode_finite_f64(take(parts, name)?, name)?;
    let im = decode_finite_f64(take(parts, name)?, name)?;
    Ok(Complex64::new(re, im))
}

// ---------------------------------------------------------------------------
// Work item / outcome / message encoding
// ---------------------------------------------------------------------------

/// Encodes one [`WorkItem`] as `"<measure> <index> <s.re> <s.im>"`.
pub fn encode_work_item(item: &WorkItem) -> Result<String, WireError> {
    Ok(format!(
        "{} {} {}",
        item.measure,
        item.index,
        encode_complex(item.s, "work item s-point")?
    ))
}

fn decode_work_item_fields<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<WorkItem, WireError> {
    let measure = take_usize(parts, "measure")?;
    let index = take_usize(parts, "index")?;
    let s = take_complex(parts, "work item s-point")?;
    Ok(WorkItem { measure, index, s })
}

/// Decodes one [`WorkItem`] line.
pub fn decode_work_item(line: &str) -> Result<WorkItem, WireError> {
    let mut parts = line.split_whitespace();
    let item = decode_work_item_fields(&mut parts)?;
    if parts.next().is_some() {
        return Err(malformed("trailing fields after work item"));
    }
    Ok(item)
}

/// Encodes one [`WorkItemOutcome`]: the item's fields followed by
/// `ok <v.re> <v.im>` or `err <message>`.  A *non-finite* success value is
/// encoded as an error outcome — a NaN transform value must never enter the
/// master's cache or checkpoint as a number.
pub fn encode_outcome(outcome: &WorkItemOutcome) -> Result<String, WireError> {
    let mut line = encode_work_item(&outcome.item)?;
    match &outcome.outcome {
        Ok(value) if value.re.is_finite() && value.im.is_finite() => {
            line.push_str(&format!(
                " ok {}",
                encode_complex(*value, "transform value")?
            ));
        }
        Ok(value) => {
            // The offending value is reported by its exact bit pattern (the
            // same 16-hex-digit codec as every wire f64), not by `{}`: decimal
            // float formatting is banned on wire paths (smp-lint D001) so that
            // no text on the wire ever depends on a float-to-decimal routine.
            line.push_str(&format!(
                " err {}",
                encode_str(&format!(
                    "non-finite transform value bits={}/{}",
                    encode_f64(value.re),
                    encode_f64(value.im)
                ))
            ));
        }
        Err(message) => {
            line.push_str(&format!(" err {}", encode_str(message)));
        }
    }
    Ok(line)
}

/// Decodes one [`WorkItemOutcome`] line.
pub fn decode_outcome(line: &str) -> Result<WorkItemOutcome, WireError> {
    let mut parts = line.split_whitespace();
    let item = decode_work_item_fields(&mut parts)?;
    let outcome = match take(&mut parts, "outcome tag")? {
        "ok" => Ok(take_complex(&mut parts, "transform value")?),
        "err" => {
            let field = take(&mut parts, "error message")?;
            Err(decode_str(field).ok_or_else(|| malformed("bad error message encoding"))?)
        }
        other => return Err(malformed(format!("unknown outcome tag '{other}'"))),
    };
    if parts.next().is_some() {
        return Err(malformed("trailing fields after outcome"));
    }
    Ok(WorkItemOutcome { item, outcome })
}

/// Encodes a [`WorkerMessage`] (plus the chunk's busy time) as a multi-line
/// `result` frame payload.
pub fn encode_worker_message(
    message: &WorkerMessage,
    busy_nanos: u64,
) -> Result<String, WireError> {
    let mut out = format!(
        "result worker={} busy_ns={} n={}",
        message.worker,
        busy_nanos,
        message.results.len()
    );
    for outcome in &message.results {
        out.push('\n');
        out.push_str(&encode_outcome(outcome)?);
    }
    Ok(out)
}

fn parse_kv(field: &str, key: &str) -> Result<u64, WireError> {
    let value = field
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| malformed(format!("expected '{key}=N', got '{field}'")))?;
    value
        .parse()
        .map_err(|_| malformed(format!("bad integer in '{field}'")))
}

/// Decodes a `result` frame payload back into a [`WorkerMessage`] and the
/// chunk's busy time in nanoseconds.
pub fn decode_worker_message(payload: &str) -> Result<(WorkerMessage, u64), WireError> {
    let mut lines = payload.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty result frame"))?;
    let mut parts = header.split_whitespace();
    match take(&mut parts, "frame tag")? {
        "result" => {}
        other => return Err(malformed(format!("expected result frame, got '{other}'"))),
    }
    let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
    let busy_nanos = parse_kv(take(&mut parts, "busy_ns")?, "busy_ns")?;
    let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
    // No Vec::with_capacity(n): the header is unvalidated wire input, and a
    // huge announced count must produce a decode error below, not a
    // capacity-overflow panic here.
    let mut results = Vec::new();
    for line in lines {
        results.push(decode_outcome(line)?);
    }
    if results.len() != n {
        return Err(malformed(format!(
            "result frame announced {n} outcomes but carried {}",
            results.len()
        )));
    }
    Ok((WorkerMessage { worker, results }, busy_nanos))
}

// ---------------------------------------------------------------------------
// Sharded-session line codecs
// ---------------------------------------------------------------------------

/// Encodes one boundary entry (`halo` / `sstate` export line) as
/// `"<row> <v.re> <v.im>"` with the bit-exact float codec.
pub fn encode_value_entry(row: u32, value: Complex64) -> Result<String, WireError> {
    Ok(format!(
        "{row} {}",
        encode_complex(value, "boundary value")?
    ))
}

/// Decodes one boundary entry line (inverse of [`encode_value_entry`]).
pub fn decode_value_entry(line: &str) -> Result<(u32, Complex64), WireError> {
    let mut parts = line.split_whitespace();
    let row: u32 = take(&mut parts, "row")?
        .parse()
        .map_err(|_| malformed("bad row field in boundary entry"))?;
    let value = take_complex(&mut parts, "boundary value")?;
    if parts.next().is_some() {
        return Err(malformed("trailing fields after boundary entry"));
    }
    Ok((row, value))
}

fn take_u32_list<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
    name: &str,
) -> Result<Vec<u32>, WireError> {
    // No Vec::with_capacity(n): `n` is an unvalidated wire count, and a huge
    // announced value must fail below when the fields run out, not allocate.
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(
            take(parts, name)?
                .parse()
                .map_err(|_| malformed(format!("bad integer in '{name}' list")))?,
        );
    }
    Ok(out)
}

fn parse_flag(field: &str, key: &str) -> Result<bool, WireError> {
    match parse_kv(field, key)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(malformed(format!(
            "flag '{key}' must be 0 or 1, got {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Protocol frames
// ---------------------------------------------------------------------------

/// One protocol message between master and worker.
///
/// Master → worker: [`Frame::Job`], [`Frame::Chunk`], [`Frame::Done`].
/// Worker → master: [`Frame::Hello`], [`Frame::Result`], [`Frame::Fatal`].
///
/// The sharded (row-partitioned) session adds — master → worker:
/// [`Frame::SliceJob`], [`Frame::SliceRoute`], [`Frame::SPoint`],
/// [`Frame::Halo`]; worker → master: [`Frame::SliceMeta`],
/// [`Frame::SState`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker greeting: announces its wire version.
    Hello {
        /// Protocol version the worker speaks.
        version: u32,
    },
    /// Job header: the worker's assigned id, the inversion method's name (for
    /// diagnostics; `s`-points arrive explicitly in chunks) and one encoded
    /// [`crate::transform::TransformSpec`] line per measure.
    Job {
        /// Protocol version the master speaks.
        version: u32,
        /// Worker id assigned by the master (stable across the run's stats).
        worker: usize,
        /// Name of the inversion method driving the plan.
        method: String,
        /// Encoded transform specs, one per measure, in measure order.
        specs: Vec<String>,
    },
    /// A chunk of work items to evaluate.
    Chunk {
        /// The items, in queue order.
        items: Vec<WorkItem>,
    },
    /// All work is done; the worker should exit.
    Done,
    /// One evaluated chunk.
    Result {
        /// The outcomes, tagged with the sending worker.
        message: WorkerMessage,
        /// Time the worker spent evaluating this chunk, in nanoseconds.
        busy_nanos: u64,
    },
    /// The worker cannot continue (e.g. its transform specs failed to compile).
    Fatal {
        /// Human-readable description of the failure.
        message: String,
    },
    /// Sharded-session header: assigns the worker one contiguous row block of
    /// the state space.  The worker compiles the spec's model, carves its
    /// slice (the block boundaries are a pure function of the model size and
    /// `shards`) and answers with [`Frame::SliceMeta`].
    SliceJob {
        /// Protocol version the master speaks.
        version: u32,
        /// Shard index assigned to this worker (also its row block).
        worker: usize,
        /// Total number of shards in the session.
        shards: usize,
        /// One encoded [`crate::transform::TransformSpec`] line naming the
        /// model, source and targets of the passage.
        spec: String,
    },
    /// Worker → master after building its slice: the slice's size (the
    /// memory-model numbers for provenance) and its halo subscription.
    SliceMeta {
        /// States in the worker's owned row block.
        states: usize,
        /// Kernel entries stored by the slice.
        nnz: usize,
        /// Distributions in the slice's restricted LST pool.
        dists: usize,
        /// External rows whose iterate values the slice needs each round,
        /// ascending.
        need: Vec<u32>,
    },
    /// Master → worker once all subscriptions are in: the owned rows this
    /// worker must publish in every round's [`Frame::SState`].
    SliceRoute {
        /// Owned rows demanded by other shards, ascending.
        rows: Vec<u32>,
    },
    /// Starts one `s`-point on the slice: refill + init.  The worker answers
    /// with the round-0 [`Frame::SState`].
    SPoint {
        /// Point id, echoed by every frame of this point's rounds.
        id: u64,
        /// The `s`-point.
        s: Complex64,
    },
    /// One round's boundary values for a slice (the entries of the worker's
    /// halo subscription that are nonzero at their owners).  The worker
    /// applies it, takes one step and answers with the round's
    /// [`Frame::SState`].
    Halo {
        /// Point id this round belongs to.
        id: u64,
        /// Round number (1-based; round r's halo feeds step r).
        r: u64,
        /// `(global row, value)` boundary entries, ascending by row.
        entries: Vec<(u32, Complex64)>,
    },
    /// Worker → master after init (round 0) or a step (round ≥ 1): the
    /// slice's contribution to the convergence fold and the boundary values
    /// it publishes for the next round.
    SState {
        /// Point id.
        id: u64,
        /// Round number (0 after init).
        r: u64,
        /// Whether the slice's refill was faithful (round 0 only; `true`
        /// afterwards).
        faithful: bool,
        /// Whether the slice's term slice is quiet under the session epsilon.
        quiet: bool,
        /// Term values at the slice's owned target states, ascending.
        targets: Vec<Complex64>,
        /// Published boundary values (nonzero entries of the route),
        /// ascending by row.
        exports: Vec<(u32, Complex64)>,
    },
}

impl Frame {
    /// Encodes the frame into a payload string (no length prefix).
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            Frame::Hello { version } => Ok(format!("hello v={version}")),
            Frame::Job {
                version,
                worker,
                method,
                specs,
            } => {
                let mut out = format!(
                    "job v={version} worker={worker} method={} specs={}",
                    encode_str(method),
                    specs.len()
                );
                for spec in specs {
                    out.push('\n');
                    out.push_str(spec);
                }
                Ok(out)
            }
            Frame::Chunk { items } => {
                let mut out = format!("chunk n={}", items.len());
                for item in items {
                    out.push('\n');
                    out.push_str(&encode_work_item(item)?);
                }
                Ok(out)
            }
            Frame::Done => Ok("done".to_string()),
            Frame::Result {
                message,
                busy_nanos,
            } => encode_worker_message(message, *busy_nanos),
            Frame::Fatal { message } => Ok(format!("fatal {}", encode_str(message))),
            Frame::SliceJob {
                version,
                worker,
                shards,
                spec,
            } => Ok(format!(
                "slicejob v={version} worker={worker} shards={shards}\n{spec}"
            )),
            Frame::SliceMeta {
                states,
                nnz,
                dists,
                need,
            } => {
                let mut out = format!(
                    "slicemeta states={states} nnz={nnz} dists={dists} need={}",
                    need.len()
                );
                for r in need {
                    out.push(' ');
                    out.push_str(&r.to_string());
                }
                Ok(out)
            }
            Frame::SliceRoute { rows } => {
                let mut out = format!("sliceroute n={}", rows.len());
                for r in rows {
                    out.push(' ');
                    out.push_str(&r.to_string());
                }
                Ok(out)
            }
            Frame::SPoint { id, s } => {
                Ok(format!("spoint id={id} {}", encode_complex(*s, "s-point")?))
            }
            Frame::Halo { id, r, entries } => {
                let mut out = format!("halo id={id} r={r} n={}", entries.len());
                for &(row, value) in entries {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
            Frame::SState {
                id,
                r,
                faithful,
                quiet,
                targets,
                exports,
            } => {
                let mut out = format!(
                    "sstate id={id} r={r} faithful={} quiet={} targets={} exports={}",
                    *faithful as u32,
                    *quiet as u32,
                    targets.len(),
                    exports.len()
                );
                for &t in targets {
                    out.push('\n');
                    out.push_str(&encode_complex(t, "target value")?);
                }
                for &(row, value) in exports {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
        }
    }

    /// Decodes a payload string back into a frame.
    pub fn decode(payload: &str) -> Result<Frame, WireError> {
        let mut lines = payload.lines();
        let header = lines.next().ok_or_else(|| malformed("empty frame"))?;
        let mut parts = header.split_whitespace();
        match take(&mut parts, "frame tag")? {
            "hello" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                Ok(Frame::Hello { version })
            }
            "job" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
                let method_field = take(&mut parts, "method")?
                    .strip_prefix("method=")
                    .ok_or_else(|| malformed("expected method=NAME"))?
                    .to_string();
                let method =
                    decode_str(&method_field).ok_or_else(|| malformed("bad method encoding"))?;
                let n = parse_kv(take(&mut parts, "specs")?, "specs")? as usize;
                let specs: Vec<String> = lines.map(str::to_string).collect();
                if specs.len() != n {
                    return Err(malformed(format!(
                        "job frame announced {n} specs but carried {}",
                        specs.len()
                    )));
                }
                Ok(Frame::Job {
                    version,
                    worker,
                    method,
                    specs,
                })
            }
            "chunk" => {
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let items: Result<Vec<WorkItem>, WireError> = lines.map(decode_work_item).collect();
                let items = items?;
                if items.len() != n {
                    return Err(malformed(format!(
                        "chunk frame announced {n} items but carried {}",
                        items.len()
                    )));
                }
                Ok(Frame::Chunk { items })
            }
            "done" => Ok(Frame::Done),
            "result" => {
                let (message, busy_nanos) = decode_worker_message(payload)?;
                Ok(Frame::Result {
                    message,
                    busy_nanos,
                })
            }
            "fatal" => {
                let field = take(&mut parts, "message")?;
                let message =
                    decode_str(field).ok_or_else(|| malformed("bad fatal message encoding"))?;
                Ok(Frame::Fatal { message })
            }
            "slicejob" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
                let shards = parse_kv(take(&mut parts, "shards")?, "shards")? as usize;
                let spec = lines
                    .next()
                    .ok_or_else(|| malformed("slicejob frame carries no spec line"))?
                    .to_string();
                if lines.next().is_some() {
                    return Err(malformed("trailing lines after slicejob spec"));
                }
                Ok(Frame::SliceJob {
                    version,
                    worker,
                    shards,
                    spec,
                })
            }
            "slicemeta" => {
                let states = parse_kv(take(&mut parts, "states")?, "states")? as usize;
                let nnz = parse_kv(take(&mut parts, "nnz")?, "nnz")? as usize;
                let dists = parse_kv(take(&mut parts, "dists")?, "dists")? as usize;
                let n = parse_kv(take(&mut parts, "need")?, "need")? as usize;
                let need = take_u32_list(&mut parts, n, "need")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after slicemeta need list"));
                }
                Ok(Frame::SliceMeta {
                    states,
                    nnz,
                    dists,
                    need,
                })
            }
            "sliceroute" => {
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let rows = take_u32_list(&mut parts, n, "rows")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after sliceroute row list"));
                }
                Ok(Frame::SliceRoute { rows })
            }
            "spoint" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let s = take_complex(&mut parts, "s-point")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after spoint"));
                }
                Ok(Frame::SPoint { id, s })
            }
            "halo" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let entries: Result<Vec<(u32, Complex64)>, WireError> =
                    lines.map(decode_value_entry).collect();
                let entries = entries?;
                if entries.len() != n {
                    return Err(malformed(format!(
                        "halo frame announced {n} entries but carried {}",
                        entries.len()
                    )));
                }
                Ok(Frame::Halo { id, r, entries })
            }
            "sstate" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let faithful = parse_flag(take(&mut parts, "faithful")?, "faithful")?;
                let quiet = parse_flag(take(&mut parts, "quiet")?, "quiet")?;
                let t = parse_kv(take(&mut parts, "targets")?, "targets")? as usize;
                let e = parse_kv(take(&mut parts, "exports")?, "exports")? as usize;
                let body: Vec<&str> = lines.collect();
                if body.len() != t + e {
                    return Err(malformed(format!(
                        "sstate frame announced {t}+{e} lines but carried {}",
                        body.len()
                    )));
                }
                let mut targets = Vec::new();
                for line in &body[..t] {
                    let mut fields = line.split_whitespace();
                    let value = take_complex(&mut fields, "target value")?;
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields after target value"));
                    }
                    targets.push(value);
                }
                let mut exports = Vec::new();
                for line in &body[t..] {
                    exports.push(decode_value_entry(line)?);
                }
                Ok(Frame::SState {
                    id,
                    r,
                    faithful,
                    quiet,
                    targets,
                    exports,
                })
            }
            other => Err(malformed(format!("unknown frame tag '{other}'"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Length-prefixed frame I/O
// ---------------------------------------------------------------------------

/// Upper bound on an accepted frame payload (64 MiB) — a corrupted length
/// prefix must not trigger a multi-gigabyte allocation.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one length-prefixed UTF-8 payload to a stream and flushes it.
/// Returns the number of bytes put on the wire (prefix included).
///
/// This is the raw layer under [`write_frame`]; the query server's client
/// protocol layers its own request/response payloads on it so every protocol
/// in the system shares one framing (and one length cap).
pub fn write_payload(stream: &mut impl Write, payload: &str) -> std::io::Result<u64> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(4 + bytes.len() as u64)
}

/// Reads one length-prefixed UTF-8 payload from a stream.  Returns the text
/// and the number of bytes taken off the wire.  The raw layer under
/// [`read_frame`] — see [`write_payload`].
pub fn read_payload(stream: &mut impl Read) -> std::io::Result<(String, u64)> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame"))?;
    Ok((text, 4 + len as u64))
}

/// Writes one length-prefixed frame to a stream and flushes it.  Returns the
/// number of bytes put on the wire (prefix included).
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> std::io::Result<u64> {
    let payload = frame
        .encode()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_payload(stream, &payload)
}

/// Reads one length-prefixed frame from a stream.  Returns the frame and the
/// number of bytes taken off the wire.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<(Frame, u64)> {
    let (text, n) = read_payload(stream)?;
    let frame = Frame::decode(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((frame, n))
}

/// The wire size of a frame without writing it anywhere — used by the
/// simulated-latency backend to report the bytes a real network deployment
/// would have shipped.
pub fn frame_wire_size(frame: &Frame) -> Result<u64, WireError> {
    Ok(4 + frame.encode()?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(measure: usize, index: usize, re: f64, im: f64) -> WorkItem {
        WorkItem {
            measure,
            index,
            s: Complex64::new(re, im),
        }
    }

    #[test]
    fn string_field_round_trips() {
        for text in [
            "plain",
            "with space",
            "pct%sign",
            "naïve-ütf8",
            "a=b k=c",
            "",
        ] {
            let encoded = encode_str(text);
            assert!(!encoded.contains(char::is_whitespace));
            assert_eq!(decode_str(&encoded).as_deref(), Some(text));
        }
        assert_eq!(decode_str("bad%2"), None);
        assert_eq!(decode_str("bad%zz"), None);
    }

    #[test]
    fn f64_fields_are_bit_exact() {
        for value in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, -f64::MAX] {
            let field = encode_f64(value);
            assert_eq!(field.len(), 16);
            assert_eq!(decode_f64(&field).map(f64::to_bits), Some(value.to_bits()));
        }
        // Short fields are truncation damage, not tiny numbers.
        assert_eq!(decode_f64("deadbeef"), None);
    }

    #[test]
    fn non_finite_quantities_are_rejected() {
        assert_eq!(
            encode_finite_f64(f64::NAN, "s"),
            Err(WireError::NonFinite { field: "s" })
        );
        assert_eq!(
            encode_finite_f64(f64::INFINITY, "s"),
            Err(WireError::NonFinite { field: "s" })
        );
        // Decoding a NaN bit pattern into a quantity field fails too.
        let nan_field = encode_f64(f64::NAN);
        assert!(matches!(
            decode_finite_f64(&nan_field, "s"),
            Err(WireError::NonFinite { .. })
        ));
    }

    #[test]
    fn outcome_round_trips_ok_and_err() {
        let ok = WorkItemOutcome {
            item: item(2, 17, 0.25, -3.5),
            outcome: Ok(Complex64::new(1.0 / 3.0, 2e-15)),
        };
        let err = WorkItemOutcome {
            item: item(0, 0, 9.5, 0.0),
            outcome: Err("did not converge after 64 iterations".to_string()),
        };
        for outcome in [&ok, &err] {
            let line = encode_outcome(outcome).unwrap();
            assert_eq!(&decode_outcome(&line).unwrap(), outcome);
        }
    }

    #[test]
    fn non_finite_success_value_becomes_an_error_outcome() {
        let poisoned = WorkItemOutcome {
            item: item(0, 3, 1.0, 2.0),
            outcome: Ok(Complex64::new(f64::NAN, 0.0)),
        };
        let line = encode_outcome(&poisoned).unwrap();
        let decoded = decode_outcome(&line).unwrap();
        assert_eq!(decoded.item, poisoned.item);
        let message = decoded.outcome.unwrap_err();
        assert!(message.contains("non-finite"), "{message}");
    }

    #[test]
    fn worker_message_round_trips() {
        let message = WorkerMessage {
            worker: 3,
            results: vec![
                WorkItemOutcome {
                    item: item(0, 0, 0.5, 1.5),
                    outcome: Ok(Complex64::new(-0.25, 0.75)),
                },
                WorkItemOutcome {
                    item: item(1, 1, 0.5, 3.0),
                    outcome: Err("synthetic failure".to_string()),
                },
            ],
        };
        let payload = encode_worker_message(&message, 12_345).unwrap();
        let (decoded, busy) = decode_worker_message(&payload).unwrap();
        assert_eq!(decoded, message);
        assert_eq!(busy, 12_345);
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello { version: 1 },
            Frame::Job {
                version: 1,
                worker: 2,
                method: "euler".to_string(),
                specs: vec!["analytic v=1 key=x dist=exponential:3ff0000000000000".to_string()],
            },
            Frame::Chunk {
                items: vec![item(0, 0, 1.0, 2.0), item(1, 5, 3.0, -4.0)],
            },
            Frame::Done,
            Frame::Result {
                message: WorkerMessage {
                    worker: 0,
                    results: vec![WorkItemOutcome {
                        item: item(0, 0, 1.0, 2.0),
                        outcome: Ok(Complex64::I),
                    }],
                },
                busy_nanos: 77,
            },
            Frame::Fatal {
                message: "spec compile failed: place 'p9' does not exist".to_string(),
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            assert_eq!(Frame::decode(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn slice_frames_round_trip() {
        let frames = vec![
            Frame::SliceJob {
                version: 1,
                worker: 2,
                shards: 4,
                spec: "analytic v=1 key=x dist=exponential:3ff0000000000000".to_string(),
            },
            Frame::SliceMeta {
                states: 25,
                nnz: 73,
                dists: 9,
                need: vec![3, 7, 99],
            },
            Frame::SliceMeta {
                states: 0,
                nnz: 0,
                dists: 0,
                need: vec![],
            },
            Frame::SliceRoute { rows: vec![12, 13] },
            Frame::SliceRoute { rows: vec![] },
            Frame::SPoint {
                id: 41,
                s: Complex64::new(0.5, -2.25),
            },
            Frame::Halo {
                id: 41,
                r: 7,
                entries: vec![
                    (3, Complex64::new(1.0 / 3.0, -0.0)),
                    (99, Complex64::new(-0.0, 2e-300)),
                ],
            },
            Frame::Halo {
                id: 41,
                r: 8,
                entries: vec![],
            },
            Frame::SState {
                id: 41,
                r: 0,
                faithful: false,
                quiet: true,
                targets: vec![Complex64::new(0.25, -0.75), Complex64::ZERO],
                exports: vec![(12, Complex64::new(-1.5, 0.5))],
            },
            Frame::SState {
                id: 42,
                r: 3,
                faithful: true,
                quiet: false,
                targets: vec![],
                exports: vec![],
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            assert_eq!(Frame::decode(&payload).unwrap(), frame, "{payload}");
        }
    }

    #[test]
    fn slice_frame_values_survive_bit_for_bit() {
        // Negative zero and subnormals must cross the wire unchanged: the
        // sharded solve's bitwise guarantee rests on this codec.
        let entries = vec![(0u32, Complex64::new(-0.0, f64::MIN_POSITIVE / 2.0))];
        let frame = Frame::Halo {
            id: 1,
            r: 1,
            entries,
        };
        let decoded = Frame::decode(&frame.encode().unwrap()).unwrap();
        match decoded {
            Frame::Halo { entries, .. } => {
                assert_eq!(entries[0].1.re.to_bits(), (-0.0f64).to_bits());
                assert_eq!(
                    entries[0].1.im.to_bits(),
                    (f64::MIN_POSITIVE / 2.0).to_bits()
                );
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn malformed_slice_frames_are_rejected() {
        // Count mismatches.
        assert!(Frame::decode("slicemeta states=1 nnz=1 dists=1 need=2 5").is_err());
        assert!(Frame::decode("sliceroute n=3 1 2").is_err());
        assert!(Frame::decode("halo id=1 r=1 n=1").is_err());
        assert!(Frame::decode("sstate id=1 r=0 faithful=1 quiet=0 targets=1 exports=0").is_err());
        // Missing spec line and trailing junk.
        assert!(Frame::decode("slicejob v=1 worker=0 shards=2").is_err());
        assert!(Frame::decode("spoint id=1 3ff0000000000000 3ff0000000000000 junk").is_err());
        // Flags must be 0/1.
        assert!(Frame::decode("sstate id=1 r=0 faithful=2 quiet=0 targets=0 exports=0").is_err());
        // Non-finite boundary values are rejected at decode.
        let nan = encode_f64(f64::NAN);
        assert!(Frame::decode(&format!("halo id=1 r=1 n=1\n4 {nan} {nan}")).is_err());
    }

    #[test]
    fn frame_io_over_a_buffer() {
        let frame = Frame::Chunk {
            items: (0..10)
                .map(|k| item(k % 2, k, k as f64, -(k as f64)))
                .collect(),
        };
        let mut buffer = Vec::new();
        let written = write_frame(&mut buffer, &frame).unwrap();
        assert_eq!(written, buffer.len() as u64);
        assert_eq!(written, frame_wire_size(&frame).unwrap());
        let mut cursor = std::io::Cursor::new(buffer);
        let (decoded, read) = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(read, written);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(bytes);
        let error = read_frame(&mut cursor).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        assert!(decode_work_item("0 1 3ff0000000000000").is_err());
        assert!(decode_work_item("0 1 3ff0000000000000 3ff0000000000000 extra").is_err());
        assert!(Frame::decode("chunk n=2\n0 0 3ff0000000000000 3ff0000000000000").is_err());
        assert!(Frame::decode("warble n=1").is_err());
        assert!(Frame::decode("").is_err());
    }
}
