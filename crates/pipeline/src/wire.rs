//! Stable wire encoding shared by the checkpoint format and the TCP transport.
//!
//! The original tool shipped `s`-point requests and transform values between
//! the master and its slave processors as messages over the cluster's
//! message-passing layer.  This module is that layer's encoding: a small,
//! versioned, text-based format with two primitives —
//!
//! * **strings** are percent-encoded into a single whitespace-free field
//!   (exactly the encoding the measure-tagged checkpoint records use for their
//!   transform keys), and
//! * **floats** are written as the 16-hex-digit big-endian bit pattern of the
//!   `f64` (exactly the encoding checkpoint records use for `s` and `L(s)`),
//!   so a value survives the master⇄worker round trip *bit for bit* and a
//!   TCP-backed run inverts from identical inputs to an in-process run.
//!
//! On top of the field primitives sit the protocol [`Frame`]s exchanged over a
//! transport connection (see [`crate::transport`]) and the serialization of
//! [`WorkItem`], [`WorkItemOutcome`] and [`WorkerMessage`].  Frames on a socket
//! carry a 12-byte header — a `u32` big-endian byte count followed by a `u64`
//! big-endian FNV-1a checksum over (length bytes ‖ payload) — then that many
//! bytes of UTF-8 payload, so the stream needs no sentinel characters,
//! payloads may contain newlines, and a flipped bit anywhere in the frame is a
//! typed [`WireError::Corrupt`] refusal instead of a silent protocol desync.
//! A corrupted length prefix is caught twice: above the size cap it is a typed
//! [`WireError::Oversize`] refusal *before any allocation*, below it the
//! checksum (which covers the length bytes themselves) no longer matches.
//!
//! Numbers that are *quantities* (an `s`-point, a transform value's components)
//! are rejected when non-finite: a NaN or infinity entering the cache or the
//! checkpoint would silently poison every inversion that touches it, so the
//! encoder turns such outcomes into errors at the boundary instead.

use crate::work::WorkItem;
use crate::worker::{WorkItemOutcome, WorkerMessage};
use smp_numeric::Complex64;
use std::io::{Read, Write};

/// Protocol version spoken by this build (first field of `hello`/`job`
/// frames).  Version 2 added the checksummed 12-byte frame header and the
/// fault-tolerance frames (`ping`/`pong` heartbeats, `termreq`/`term`
/// iterate snapshots, `restore` mid-point resume).
pub const WIRE_VERSION: u32 = 2;

/// An encoding or decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A float field was NaN or infinite where a finite quantity is required.
    NonFinite {
        /// Which field was non-finite.
        field: &'static str,
    },
    /// The payload could not be parsed.
    Malformed {
        /// What went wrong.
        message: String,
    },
    /// The peer speaks an incompatible protocol version.
    Version {
        /// The version the peer announced.
        got: u32,
    },
    /// The frame header announced a payload above the size cap.  Raised
    /// *before* any allocation: a corrupted length prefix must not drive an
    /// unbounded `Vec` reservation.
    Oversize {
        /// The announced payload length.
        len: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The frame payload did not match its header checksum: bytes were
    /// flipped in transit (or injected by the fault layer).  The connection
    /// is no longer trustworthy — the reader refuses the frame instead of
    /// decoding garbage or desyncing on a wrong length.
    Corrupt {
        /// The checksum the header announced.
        expected: u64,
        /// The checksum of the bytes actually received.
        got: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::NonFinite { field } => {
                write!(f, "non-finite value in wire field '{field}'")
            }
            WireError::Malformed { message } => write!(f, "malformed wire payload: {message}"),
            WireError::Version { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, this build speaks {WIRE_VERSION}"
                )
            }
            WireError::Oversize { len, cap } => {
                write!(f, "frame length {len} exceeds the {cap}-byte cap")
            }
            WireError::Corrupt { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expected:016x}, \
                     payload hashes to {got:016x} (bytes corrupted in transit)"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Field primitives
// ---------------------------------------------------------------------------

/// Percent-encodes a string into one whitespace-free field (alphanumerics and
/// `-_.:+/` pass through unchanged).  Shared with the checkpoint format's
/// measure-tagged records.
pub fn encode_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b':' | b'+' | b'/' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02x}")),
        }
    }
    out
}

/// Inverse of [`encode_str`].  Returns `None` for malformed escapes or invalid
/// UTF-8.
pub fn decode_str(field: &str) -> Option<String> {
    let bytes = field.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Encodes an `f64` as its 16-hex-digit bit pattern (bit-exact; shared with
/// the checkpoint format).  Accepts any value, including NaN — use
/// [`encode_finite_f64`] for quantity fields.
pub fn encode_f64(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Encodes a *quantity* `f64`, rejecting NaN and infinities.
pub fn encode_finite_f64(value: f64, field: &'static str) -> Result<String, WireError> {
    if !value.is_finite() {
        return Err(WireError::NonFinite { field });
    }
    Ok(encode_f64(value))
}

/// Decodes a 16-hex-digit `f64` field (any bit pattern).
pub fn decode_f64(field: &str) -> Option<f64> {
    if field.len() != 16 {
        return None; // a short field is a record truncated mid-write
    }
    u64::from_str_radix(field, 16).ok().map(f64::from_bits)
}

/// Decodes a *quantity* `f64` field, rejecting NaN and infinities.
pub fn decode_finite_f64(field: &str, name: &'static str) -> Result<f64, WireError> {
    let value =
        decode_f64(field).ok_or_else(|| malformed(format!("bad f64 field '{name}': {field}")))?;
    if !value.is_finite() {
        return Err(WireError::NonFinite { field: name });
    }
    Ok(value)
}

/// Encodes a complex quantity as two finite-`f64` fields.
pub fn encode_complex(value: Complex64, field: &'static str) -> Result<String, WireError> {
    Ok(format!(
        "{} {}",
        encode_finite_f64(value.re, field)?,
        encode_finite_f64(value.im, field)?
    ))
}

fn take<'a>(parts: &mut impl Iterator<Item = &'a str>, name: &str) -> Result<&'a str, WireError> {
    parts
        .next()
        .ok_or_else(|| malformed(format!("missing field '{name}'")))
}

fn take_usize<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    name: &str,
) -> Result<usize, WireError> {
    take(parts, name)?
        .parse()
        .map_err(|_| malformed(format!("bad integer field '{name}'")))
}

fn take_complex<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    name: &'static str,
) -> Result<Complex64, WireError> {
    let re = decode_finite_f64(take(parts, name)?, name)?;
    let im = decode_finite_f64(take(parts, name)?, name)?;
    Ok(Complex64::new(re, im))
}

// ---------------------------------------------------------------------------
// Work item / outcome / message encoding
// ---------------------------------------------------------------------------

/// Encodes one [`WorkItem`] as `"<measure> <index> <s.re> <s.im>"`.
pub fn encode_work_item(item: &WorkItem) -> Result<String, WireError> {
    Ok(format!(
        "{} {} {}",
        item.measure,
        item.index,
        encode_complex(item.s, "work item s-point")?
    ))
}

fn decode_work_item_fields<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
) -> Result<WorkItem, WireError> {
    let measure = take_usize(parts, "measure")?;
    let index = take_usize(parts, "index")?;
    let s = take_complex(parts, "work item s-point")?;
    Ok(WorkItem { measure, index, s })
}

/// Decodes one [`WorkItem`] line.
pub fn decode_work_item(line: &str) -> Result<WorkItem, WireError> {
    let mut parts = line.split_whitespace();
    let item = decode_work_item_fields(&mut parts)?;
    if parts.next().is_some() {
        return Err(malformed("trailing fields after work item"));
    }
    Ok(item)
}

/// Encodes one [`WorkItemOutcome`]: the item's fields followed by
/// `ok <v.re> <v.im>` or `err <message>`.  A *non-finite* success value is
/// encoded as an error outcome — a NaN transform value must never enter the
/// master's cache or checkpoint as a number.
pub fn encode_outcome(outcome: &WorkItemOutcome) -> Result<String, WireError> {
    let mut line = encode_work_item(&outcome.item)?;
    match &outcome.outcome {
        Ok(value) if value.re.is_finite() && value.im.is_finite() => {
            line.push_str(&format!(
                " ok {}",
                encode_complex(*value, "transform value")?
            ));
        }
        Ok(value) => {
            // The offending value is reported by its exact bit pattern (the
            // same 16-hex-digit codec as every wire f64), not by `{}`: decimal
            // float formatting is banned on wire paths (smp-lint D001) so that
            // no text on the wire ever depends on a float-to-decimal routine.
            line.push_str(&format!(
                " err {}",
                encode_str(&format!(
                    "non-finite transform value bits={}/{}",
                    encode_f64(value.re),
                    encode_f64(value.im)
                ))
            ));
        }
        Err(message) => {
            line.push_str(&format!(" err {}", encode_str(message)));
        }
    }
    Ok(line)
}

/// Decodes one [`WorkItemOutcome`] line.
pub fn decode_outcome(line: &str) -> Result<WorkItemOutcome, WireError> {
    let mut parts = line.split_whitespace();
    let item = decode_work_item_fields(&mut parts)?;
    let outcome = match take(&mut parts, "outcome tag")? {
        "ok" => Ok(take_complex(&mut parts, "transform value")?),
        "err" => {
            let field = take(&mut parts, "error message")?;
            Err(decode_str(field).ok_or_else(|| malformed("bad error message encoding"))?)
        }
        other => return Err(malformed(format!("unknown outcome tag '{other}'"))),
    };
    if parts.next().is_some() {
        return Err(malformed("trailing fields after outcome"));
    }
    Ok(WorkItemOutcome { item, outcome })
}

/// Encodes a [`WorkerMessage`] (plus the chunk's busy time) as a multi-line
/// `result` frame payload.
pub fn encode_worker_message(
    message: &WorkerMessage,
    busy_nanos: u64,
) -> Result<String, WireError> {
    let mut out = format!(
        "result worker={} busy_ns={} n={}",
        message.worker,
        busy_nanos,
        message.results.len()
    );
    for outcome in &message.results {
        out.push('\n');
        out.push_str(&encode_outcome(outcome)?);
    }
    Ok(out)
}

fn parse_kv(field: &str, key: &str) -> Result<u64, WireError> {
    let value = field
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| malformed(format!("expected '{key}=N', got '{field}'")))?;
    value
        .parse()
        .map_err(|_| malformed(format!("bad integer in '{field}'")))
}

/// Decodes a `result` frame payload back into a [`WorkerMessage`] and the
/// chunk's busy time in nanoseconds.
pub fn decode_worker_message(payload: &str) -> Result<(WorkerMessage, u64), WireError> {
    let mut lines = payload.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty result frame"))?;
    let mut parts = header.split_whitespace();
    match take(&mut parts, "frame tag")? {
        "result" => {}
        other => return Err(malformed(format!("expected result frame, got '{other}'"))),
    }
    let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
    let busy_nanos = parse_kv(take(&mut parts, "busy_ns")?, "busy_ns")?;
    let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
    // No Vec::with_capacity(n): the header is unvalidated wire input, and a
    // huge announced count must produce a decode error below, not a
    // capacity-overflow panic here.
    let mut results = Vec::new();
    for line in lines {
        results.push(decode_outcome(line)?);
    }
    if results.len() != n {
        return Err(malformed(format!(
            "result frame announced {n} outcomes but carried {}",
            results.len()
        )));
    }
    Ok((WorkerMessage { worker, results }, busy_nanos))
}

// ---------------------------------------------------------------------------
// Sharded-session line codecs
// ---------------------------------------------------------------------------

/// Encodes one boundary entry (`halo` / `sstate` export line) as
/// `"<row> <v.re> <v.im>"` with the bit-exact float codec.
pub fn encode_value_entry(row: u32, value: Complex64) -> Result<String, WireError> {
    Ok(format!(
        "{row} {}",
        encode_complex(value, "boundary value")?
    ))
}

/// Decodes one boundary entry line (inverse of [`encode_value_entry`]).
pub fn decode_value_entry(line: &str) -> Result<(u32, Complex64), WireError> {
    let mut parts = line.split_whitespace();
    let row: u32 = take(&mut parts, "row")?
        .parse()
        .map_err(|_| malformed("bad row field in boundary entry"))?;
    let value = take_complex(&mut parts, "boundary value")?;
    if parts.next().is_some() {
        return Err(malformed("trailing fields after boundary entry"));
    }
    Ok((row, value))
}

fn take_u32_list<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
    name: &str,
) -> Result<Vec<u32>, WireError> {
    // No Vec::with_capacity(n): `n` is an unvalidated wire count, and a huge
    // announced value must fail below when the fields run out, not allocate.
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(
            take(parts, name)?
                .parse()
                .map_err(|_| malformed(format!("bad integer in '{name}' list")))?,
        );
    }
    Ok(out)
}

fn parse_flag(field: &str, key: &str) -> Result<bool, WireError> {
    match parse_kv(field, key)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(malformed(format!(
            "flag '{key}' must be 0 or 1, got {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Protocol frames
// ---------------------------------------------------------------------------

/// One protocol message between master and worker.
///
/// Master → worker: [`Frame::Job`], [`Frame::Chunk`], [`Frame::Done`].
/// Worker → master: [`Frame::Hello`], [`Frame::Result`], [`Frame::Fatal`].
///
/// The sharded (row-partitioned) session adds — master → worker:
/// [`Frame::SliceJob`], [`Frame::SliceRoute`], [`Frame::SPoint`],
/// [`Frame::Halo`]; worker → master: [`Frame::SliceMeta`],
/// [`Frame::SState`].
///
/// The fault-tolerance layer adds — either direction: [`Frame::Ping`] /
/// [`Frame::Pong`] liveness probes; master → worker: [`Frame::TermReq`]
/// (snapshot the slice's iterate) and [`Frame::Restore`] (reload a
/// checkpointed iterate mid-point); worker → master: [`Frame::Term`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker greeting: announces its wire version.
    Hello {
        /// Protocol version the worker speaks.
        version: u32,
    },
    /// Job header: the worker's assigned id, the inversion method's name (for
    /// diagnostics; `s`-points arrive explicitly in chunks) and one encoded
    /// [`crate::transform::TransformSpec`] line per measure.
    Job {
        /// Protocol version the master speaks.
        version: u32,
        /// Worker id assigned by the master (stable across the run's stats).
        worker: usize,
        /// Name of the inversion method driving the plan.
        method: String,
        /// Encoded transform specs, one per measure, in measure order.
        specs: Vec<String>,
    },
    /// A chunk of work items to evaluate.
    Chunk {
        /// The items, in queue order.
        items: Vec<WorkItem>,
    },
    /// All work is done; the worker should exit.
    Done,
    /// One evaluated chunk.
    Result {
        /// The outcomes, tagged with the sending worker.
        message: WorkerMessage,
        /// Time the worker spent evaluating this chunk, in nanoseconds.
        busy_nanos: u64,
    },
    /// The worker cannot continue (e.g. its transform specs failed to compile).
    Fatal {
        /// Human-readable description of the failure.
        message: String,
    },
    /// Sharded-session header: assigns the worker one contiguous row block of
    /// the state space.  The worker compiles the spec's model, carves its
    /// slice (the block boundaries are a pure function of the model size and
    /// `shards`) and answers with [`Frame::SliceMeta`].
    SliceJob {
        /// Protocol version the master speaks.
        version: u32,
        /// Shard index assigned to this worker (also its row block).
        worker: usize,
        /// Total number of shards in the session.
        shards: usize,
        /// One encoded [`crate::transform::TransformSpec`] line naming the
        /// model, source and targets of the passage.
        spec: String,
    },
    /// Worker → master after building its slice: the slice's size (the
    /// memory-model numbers for provenance) and its halo subscription.
    SliceMeta {
        /// States in the worker's owned row block.
        states: usize,
        /// Kernel entries stored by the slice.
        nnz: usize,
        /// Distributions in the slice's restricted LST pool.
        dists: usize,
        /// External rows whose iterate values the slice needs each round,
        /// ascending.
        need: Vec<u32>,
    },
    /// Master → worker once all subscriptions are in: the owned rows this
    /// worker must publish in every round's [`Frame::SState`].
    SliceRoute {
        /// Owned rows demanded by other shards, ascending.
        rows: Vec<u32>,
    },
    /// Starts one `s`-point on the slice: refill + init.  The worker answers
    /// with the round-0 [`Frame::SState`].
    SPoint {
        /// Point id, echoed by every frame of this point's rounds.
        id: u64,
        /// The `s`-point.
        s: Complex64,
    },
    /// One round's boundary values for a slice (the entries of the worker's
    /// halo subscription that are nonzero at their owners).  The worker
    /// applies it, takes one step and answers with the round's
    /// [`Frame::SState`].
    Halo {
        /// Point id this round belongs to.
        id: u64,
        /// Round number (1-based; round r's halo feeds step r).
        r: u64,
        /// `(global row, value)` boundary entries, ascending by row.
        entries: Vec<(u32, Complex64)>,
    },
    /// Worker → master after init (round 0) or a step (round ≥ 1): the
    /// slice's contribution to the convergence fold and the boundary values
    /// it publishes for the next round.
    SState {
        /// Point id.
        id: u64,
        /// Round number (0 after init).
        r: u64,
        /// Whether the slice's refill was faithful (round 0 only; `true`
        /// afterwards).
        faithful: bool,
        /// Whether the slice's term slice is quiet under the session epsilon.
        quiet: bool,
        /// Term values at the slice's owned target states, ascending.
        targets: Vec<Complex64>,
        /// Published boundary values (nonzero entries of the route),
        /// ascending by row.
        exports: Vec<(u32, Complex64)>,
    },
    /// Liveness probe: "are you still there?".  The receiver answers with a
    /// [`Frame::Pong`] echoing the nonce.  Sent by the query server's
    /// heartbeat sweep to its resident pool workers between jobs.
    Ping {
        /// Opaque token echoed by the matching pong.
        nonce: u64,
    },
    /// Liveness reply: echoes the probe's nonce.
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
    /// Master → worker mid-point: publish your owned slice of the current
    /// term iterate so the master can checkpoint the round.  A pure read —
    /// the slice's state is untouched, so snapshot cadence can never perturb
    /// a value.  The worker answers with a [`Frame::Term`].
    TermReq {
        /// Point id this snapshot belongs to.
        id: u64,
        /// Round number being snapshotted.
        r: u64,
    },
    /// Worker → master: the slice's owned nonzero iterate entries, keyed by
    /// *global* row so the master-side snapshot is shard-layout-independent
    /// (a restart may resume onto a different shard count).
    Term {
        /// Point id.
        id: u64,
        /// Round number.
        r: u64,
        /// `(global row, value)` owned nonzero iterate entries, ascending.
        entries: Vec<(u32, Complex64)>,
    },
    /// Master → worker: reload a checkpointed iterate mid-point.  The worker
    /// refills for `s`, overwrites its owned block with the entries falling
    /// in its row range, and answers with the round-`r` [`Frame::SState`]
    /// (whose exports seed the next round's halos; its target values are a
    /// re-read of the restored iterate and are ignored by the master, which
    /// restores the convergence fold from the checkpoint instead).
    Restore {
        /// Point id assigned to the resumed point.
        id: u64,
        /// The round the snapshot captured; stepping resumes at `r + 1`.
        r: u64,
        /// The `s`-point being resumed.
        s: Complex64,
        /// `(global row, value)` iterate entries of the full state space,
        /// ascending; each worker keeps the rows it owns.
        entries: Vec<(u32, Complex64)>,
    },
}

impl Frame {
    /// Encodes the frame into a payload string (no length prefix).
    pub fn encode(&self) -> Result<String, WireError> {
        match self {
            Frame::Hello { version } => Ok(format!("hello v={version}")),
            Frame::Job {
                version,
                worker,
                method,
                specs,
            } => {
                let mut out = format!(
                    "job v={version} worker={worker} method={} specs={}",
                    encode_str(method),
                    specs.len()
                );
                for spec in specs {
                    out.push('\n');
                    out.push_str(spec);
                }
                Ok(out)
            }
            Frame::Chunk { items } => {
                let mut out = format!("chunk n={}", items.len());
                for item in items {
                    out.push('\n');
                    out.push_str(&encode_work_item(item)?);
                }
                Ok(out)
            }
            Frame::Done => Ok("done".to_string()),
            Frame::Result {
                message,
                busy_nanos,
            } => encode_worker_message(message, *busy_nanos),
            Frame::Fatal { message } => Ok(format!("fatal {}", encode_str(message))),
            Frame::SliceJob {
                version,
                worker,
                shards,
                spec,
            } => Ok(format!(
                "slicejob v={version} worker={worker} shards={shards}\n{spec}"
            )),
            Frame::SliceMeta {
                states,
                nnz,
                dists,
                need,
            } => {
                let mut out = format!(
                    "slicemeta states={states} nnz={nnz} dists={dists} need={}",
                    need.len()
                );
                for r in need {
                    out.push(' ');
                    out.push_str(&r.to_string());
                }
                Ok(out)
            }
            Frame::SliceRoute { rows } => {
                let mut out = format!("sliceroute n={}", rows.len());
                for r in rows {
                    out.push(' ');
                    out.push_str(&r.to_string());
                }
                Ok(out)
            }
            Frame::SPoint { id, s } => {
                Ok(format!("spoint id={id} {}", encode_complex(*s, "s-point")?))
            }
            Frame::Halo { id, r, entries } => {
                let mut out = format!("halo id={id} r={r} n={}", entries.len());
                for &(row, value) in entries {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
            Frame::SState {
                id,
                r,
                faithful,
                quiet,
                targets,
                exports,
            } => {
                let mut out = format!(
                    "sstate id={id} r={r} faithful={} quiet={} targets={} exports={}",
                    *faithful as u32,
                    *quiet as u32,
                    targets.len(),
                    exports.len()
                );
                for &t in targets {
                    out.push('\n');
                    out.push_str(&encode_complex(t, "target value")?);
                }
                for &(row, value) in exports {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
            Frame::Ping { nonce } => Ok(format!("ping nonce={nonce}")),
            Frame::Pong { nonce } => Ok(format!("pong nonce={nonce}")),
            Frame::TermReq { id, r } => Ok(format!("termreq id={id} r={r}")),
            Frame::Term { id, r, entries } => {
                let mut out = format!("term id={id} r={r} n={}", entries.len());
                for &(row, value) in entries {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
            Frame::Restore { id, r, s, entries } => {
                let mut out = format!(
                    "restore id={id} r={r} {} n={}",
                    encode_complex(*s, "s-point")?,
                    entries.len()
                );
                for &(row, value) in entries {
                    out.push('\n');
                    out.push_str(&encode_value_entry(row, value)?);
                }
                Ok(out)
            }
        }
    }

    /// Decodes a payload string back into a frame.
    pub fn decode(payload: &str) -> Result<Frame, WireError> {
        let mut lines = payload.lines();
        let header = lines.next().ok_or_else(|| malformed("empty frame"))?;
        let mut parts = header.split_whitespace();
        match take(&mut parts, "frame tag")? {
            "hello" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                Ok(Frame::Hello { version })
            }
            "job" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
                let method_field = take(&mut parts, "method")?
                    .strip_prefix("method=")
                    .ok_or_else(|| malformed("expected method=NAME"))?
                    .to_string();
                let method =
                    decode_str(&method_field).ok_or_else(|| malformed("bad method encoding"))?;
                let n = parse_kv(take(&mut parts, "specs")?, "specs")? as usize;
                let specs: Vec<String> = lines.map(str::to_string).collect();
                if specs.len() != n {
                    return Err(malformed(format!(
                        "job frame announced {n} specs but carried {}",
                        specs.len()
                    )));
                }
                Ok(Frame::Job {
                    version,
                    worker,
                    method,
                    specs,
                })
            }
            "chunk" => {
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let items: Result<Vec<WorkItem>, WireError> = lines.map(decode_work_item).collect();
                let items = items?;
                if items.len() != n {
                    return Err(malformed(format!(
                        "chunk frame announced {n} items but carried {}",
                        items.len()
                    )));
                }
                Ok(Frame::Chunk { items })
            }
            "done" => Ok(Frame::Done),
            "result" => {
                let (message, busy_nanos) = decode_worker_message(payload)?;
                Ok(Frame::Result {
                    message,
                    busy_nanos,
                })
            }
            "fatal" => {
                let field = take(&mut parts, "message")?;
                let message =
                    decode_str(field).ok_or_else(|| malformed("bad fatal message encoding"))?;
                Ok(Frame::Fatal { message })
            }
            "slicejob" => {
                let version = parse_kv(take(&mut parts, "v")?, "v")? as u32;
                let worker = parse_kv(take(&mut parts, "worker")?, "worker")? as usize;
                let shards = parse_kv(take(&mut parts, "shards")?, "shards")? as usize;
                let spec = lines
                    .next()
                    .ok_or_else(|| malformed("slicejob frame carries no spec line"))?
                    .to_string();
                if lines.next().is_some() {
                    return Err(malformed("trailing lines after slicejob spec"));
                }
                Ok(Frame::SliceJob {
                    version,
                    worker,
                    shards,
                    spec,
                })
            }
            "slicemeta" => {
                let states = parse_kv(take(&mut parts, "states")?, "states")? as usize;
                let nnz = parse_kv(take(&mut parts, "nnz")?, "nnz")? as usize;
                let dists = parse_kv(take(&mut parts, "dists")?, "dists")? as usize;
                let n = parse_kv(take(&mut parts, "need")?, "need")? as usize;
                let need = take_u32_list(&mut parts, n, "need")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after slicemeta need list"));
                }
                Ok(Frame::SliceMeta {
                    states,
                    nnz,
                    dists,
                    need,
                })
            }
            "sliceroute" => {
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let rows = take_u32_list(&mut parts, n, "rows")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after sliceroute row list"));
                }
                Ok(Frame::SliceRoute { rows })
            }
            "spoint" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let s = take_complex(&mut parts, "s-point")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after spoint"));
                }
                Ok(Frame::SPoint { id, s })
            }
            "halo" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                let entries: Result<Vec<(u32, Complex64)>, WireError> =
                    lines.map(decode_value_entry).collect();
                let entries = entries?;
                if entries.len() != n {
                    return Err(malformed(format!(
                        "halo frame announced {n} entries but carried {}",
                        entries.len()
                    )));
                }
                Ok(Frame::Halo { id, r, entries })
            }
            "sstate" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let faithful = parse_flag(take(&mut parts, "faithful")?, "faithful")?;
                let quiet = parse_flag(take(&mut parts, "quiet")?, "quiet")?;
                let t = parse_kv(take(&mut parts, "targets")?, "targets")? as usize;
                let e = parse_kv(take(&mut parts, "exports")?, "exports")? as usize;
                let body: Vec<&str> = lines.collect();
                if body.len() != t + e {
                    return Err(malformed(format!(
                        "sstate frame announced {t}+{e} lines but carried {}",
                        body.len()
                    )));
                }
                let mut targets = Vec::new();
                for line in &body[..t] {
                    let mut fields = line.split_whitespace();
                    let value = take_complex(&mut fields, "target value")?;
                    if fields.next().is_some() {
                        return Err(malformed("trailing fields after target value"));
                    }
                    targets.push(value);
                }
                let mut exports = Vec::new();
                for line in &body[t..] {
                    exports.push(decode_value_entry(line)?);
                }
                Ok(Frame::SState {
                    id,
                    r,
                    faithful,
                    quiet,
                    targets,
                    exports,
                })
            }
            "ping" => {
                let nonce = parse_kv(take(&mut parts, "nonce")?, "nonce")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after ping"));
                }
                Ok(Frame::Ping { nonce })
            }
            "pong" => {
                let nonce = parse_kv(take(&mut parts, "nonce")?, "nonce")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after pong"));
                }
                Ok(Frame::Pong { nonce })
            }
            "termreq" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields after termreq"));
                }
                Ok(Frame::TermReq { id, r })
            }
            "term" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields in term header"));
                }
                let entries: Result<Vec<(u32, Complex64)>, WireError> =
                    lines.map(decode_value_entry).collect();
                let entries = entries?;
                if entries.len() != n {
                    return Err(malformed(format!(
                        "term frame announced {n} entries but carried {}",
                        entries.len()
                    )));
                }
                Ok(Frame::Term { id, r, entries })
            }
            "restore" => {
                let id = parse_kv(take(&mut parts, "id")?, "id")?;
                let r = parse_kv(take(&mut parts, "r")?, "r")?;
                let s = take_complex(&mut parts, "s-point")?;
                let n = parse_kv(take(&mut parts, "n")?, "n")? as usize;
                if parts.next().is_some() {
                    return Err(malformed("trailing fields in restore header"));
                }
                let entries: Result<Vec<(u32, Complex64)>, WireError> =
                    lines.map(decode_value_entry).collect();
                let entries = entries?;
                if entries.len() != n {
                    return Err(malformed(format!(
                        "restore frame announced {n} entries but carried {}",
                        entries.len()
                    )));
                }
                Ok(Frame::Restore { id, r, s, entries })
            }
            other => Err(malformed(format!("unknown frame tag '{other}'"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Length-prefixed frame I/O
// ---------------------------------------------------------------------------

/// Upper bound on an accepted frame payload (64 MiB) — a corrupted length
/// prefix must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of frame header on the wire: 4-byte big-endian payload length plus
/// the 8-byte big-endian FNV-1a checksum over (length bytes ‖ payload).
pub const FRAME_HEADER_BYTES: u64 = 12;

/// FNV-1a (64-bit) over the length prefix bytes followed by the payload.
///
/// Every per-byte FNV-1a step (`h = (h ^ b) * PRIME`) is a bijection of the
/// running 64-bit hash — xor by a constant and multiplication by the odd
/// constant `PRIME` are both invertible mod 2⁶⁴ — so flipping any single
/// byte of the covered bytes *provably* changes the final checksum.  Covering
/// the length bytes means a flipped length prefix is caught even when the
/// shorter/longer read happens to land on a frame boundary.
pub fn frame_checksum(len: u32, payload: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in len.to_be_bytes().iter().chain(payload) {
        hash = (hash ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    hash
}

/// Wraps a typed [`WireError`] as the source of an `InvalidData` io error, so
/// protocol layers can refuse with the precise failure kind (see
/// [`wire_error_of`]).
fn invalid_data(error: WireError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, error)
}

/// Recovers the typed [`WireError`] carried by an io error raised in this
/// module, if any — the hook that lets the query server and the fault tests
/// distinguish "bytes were corrupted" from "peer hung up".
pub fn wire_error_of(error: &std::io::Error) -> Option<&WireError> {
    error.get_ref().and_then(|e| e.downcast_ref::<WireError>())
}

/// Writes one checksummed, length-prefixed UTF-8 payload to a stream and
/// flushes it.  Returns the number of bytes put on the wire (header
/// included).
///
/// This is the raw layer under [`write_frame`]; the query server's client
/// protocol layers its own request/response payloads on it so every protocol
/// in the system shares one framing (one length cap, one checksum).
pub fn write_payload(stream: &mut impl Write, payload: &str) -> std::io::Result<u64> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            invalid_data(WireError::Oversize {
                len: u32::try_from(bytes.len()).unwrap_or(u32::MAX),
                cap: MAX_FRAME_BYTES,
            })
        })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&frame_checksum(len, bytes).to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(FRAME_HEADER_BYTES + bytes.len() as u64)
}

/// Reads one checksummed, length-prefixed UTF-8 payload from a stream.
/// Returns the text and the number of bytes taken off the wire.  The raw
/// layer under [`read_frame`] — see [`write_payload`].
///
/// An announced length above [`MAX_FRAME_BYTES`] is a typed
/// [`WireError::Oversize`] refusal raised *before allocating anything*; a
/// checksum mismatch is a typed [`WireError::Corrupt`] refusal.  Both reach
/// the caller as `InvalidData` io errors whose source is the [`WireError`]
/// (recover it with [`wire_error_of`]).
pub fn read_payload(stream: &mut impl Read) -> std::io::Result<(String, u64)> {
    let mut header = [0u8; FRAME_HEADER_BYTES as usize];
    stream.read_exact(&mut header)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    let expected = u64::from_be_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    if len > MAX_FRAME_BYTES {
        return Err(invalid_data(WireError::Oversize {
            len,
            cap: MAX_FRAME_BYTES,
        }));
    }
    // Grow the buffer by reading, never by trusting `len` for a reservation:
    // a corrupted-but-under-cap length costs at most the bytes the stream
    // actually delivers.
    let mut payload = Vec::new();
    let taken = stream
        .take(u64::from(len))
        .read_to_end(&mut payload)
        .map(|n| n as u64)?;
    if taken < u64::from(len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("frame truncated: header announced {len} bytes, stream ended after {taken}"),
        ));
    }
    let got = frame_checksum(len, &payload);
    if got != expected {
        return Err(invalid_data(WireError::Corrupt { expected, got }));
    }
    let text = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 frame"))?;
    Ok((text, FRAME_HEADER_BYTES + u64::from(len)))
}

/// Writes one length-prefixed frame to a stream and flushes it.  Returns the
/// number of bytes put on the wire (prefix included).
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> std::io::Result<u64> {
    let payload = frame
        .encode()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_payload(stream, &payload)
}

/// Reads one length-prefixed frame from a stream.  Returns the frame and the
/// number of bytes taken off the wire.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<(Frame, u64)> {
    let (text, n) = read_payload(stream)?;
    let frame = Frame::decode(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((frame, n))
}

/// The wire size of a frame without writing it anywhere — used by the
/// simulated-latency backend to report the bytes a real network deployment
/// would have shipped.
pub fn frame_wire_size(frame: &Frame) -> Result<u64, WireError> {
    Ok(FRAME_HEADER_BYTES + frame.encode()?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(measure: usize, index: usize, re: f64, im: f64) -> WorkItem {
        WorkItem {
            measure,
            index,
            s: Complex64::new(re, im),
        }
    }

    #[test]
    fn string_field_round_trips() {
        for text in [
            "plain",
            "with space",
            "pct%sign",
            "naïve-ütf8",
            "a=b k=c",
            "",
        ] {
            let encoded = encode_str(text);
            assert!(!encoded.contains(char::is_whitespace));
            assert_eq!(decode_str(&encoded).as_deref(), Some(text));
        }
        assert_eq!(decode_str("bad%2"), None);
        assert_eq!(decode_str("bad%zz"), None);
    }

    #[test]
    fn f64_fields_are_bit_exact() {
        for value in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, -f64::MAX] {
            let field = encode_f64(value);
            assert_eq!(field.len(), 16);
            assert_eq!(decode_f64(&field).map(f64::to_bits), Some(value.to_bits()));
        }
        // Short fields are truncation damage, not tiny numbers.
        assert_eq!(decode_f64("deadbeef"), None);
    }

    #[test]
    fn non_finite_quantities_are_rejected() {
        assert_eq!(
            encode_finite_f64(f64::NAN, "s"),
            Err(WireError::NonFinite { field: "s" })
        );
        assert_eq!(
            encode_finite_f64(f64::INFINITY, "s"),
            Err(WireError::NonFinite { field: "s" })
        );
        // Decoding a NaN bit pattern into a quantity field fails too.
        let nan_field = encode_f64(f64::NAN);
        assert!(matches!(
            decode_finite_f64(&nan_field, "s"),
            Err(WireError::NonFinite { .. })
        ));
    }

    #[test]
    fn outcome_round_trips_ok_and_err() {
        let ok = WorkItemOutcome {
            item: item(2, 17, 0.25, -3.5),
            outcome: Ok(Complex64::new(1.0 / 3.0, 2e-15)),
        };
        let err = WorkItemOutcome {
            item: item(0, 0, 9.5, 0.0),
            outcome: Err("did not converge after 64 iterations".to_string()),
        };
        for outcome in [&ok, &err] {
            let line = encode_outcome(outcome).unwrap();
            assert_eq!(&decode_outcome(&line).unwrap(), outcome);
        }
    }

    #[test]
    fn non_finite_success_value_becomes_an_error_outcome() {
        let poisoned = WorkItemOutcome {
            item: item(0, 3, 1.0, 2.0),
            outcome: Ok(Complex64::new(f64::NAN, 0.0)),
        };
        let line = encode_outcome(&poisoned).unwrap();
        let decoded = decode_outcome(&line).unwrap();
        assert_eq!(decoded.item, poisoned.item);
        let message = decoded.outcome.unwrap_err();
        assert!(message.contains("non-finite"), "{message}");
    }

    #[test]
    fn worker_message_round_trips() {
        let message = WorkerMessage {
            worker: 3,
            results: vec![
                WorkItemOutcome {
                    item: item(0, 0, 0.5, 1.5),
                    outcome: Ok(Complex64::new(-0.25, 0.75)),
                },
                WorkItemOutcome {
                    item: item(1, 1, 0.5, 3.0),
                    outcome: Err("synthetic failure".to_string()),
                },
            ],
        };
        let payload = encode_worker_message(&message, 12_345).unwrap();
        let (decoded, busy) = decode_worker_message(&payload).unwrap();
        assert_eq!(decoded, message);
        assert_eq!(busy, 12_345);
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello { version: 1 },
            Frame::Job {
                version: 1,
                worker: 2,
                method: "euler".to_string(),
                specs: vec!["analytic v=1 key=x dist=exponential:3ff0000000000000".to_string()],
            },
            Frame::Chunk {
                items: vec![item(0, 0, 1.0, 2.0), item(1, 5, 3.0, -4.0)],
            },
            Frame::Done,
            Frame::Result {
                message: WorkerMessage {
                    worker: 0,
                    results: vec![WorkItemOutcome {
                        item: item(0, 0, 1.0, 2.0),
                        outcome: Ok(Complex64::I),
                    }],
                },
                busy_nanos: 77,
            },
            Frame::Fatal {
                message: "spec compile failed: place 'p9' does not exist".to_string(),
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            assert_eq!(Frame::decode(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn slice_frames_round_trip() {
        let frames = vec![
            Frame::SliceJob {
                version: 1,
                worker: 2,
                shards: 4,
                spec: "analytic v=1 key=x dist=exponential:3ff0000000000000".to_string(),
            },
            Frame::SliceMeta {
                states: 25,
                nnz: 73,
                dists: 9,
                need: vec![3, 7, 99],
            },
            Frame::SliceMeta {
                states: 0,
                nnz: 0,
                dists: 0,
                need: vec![],
            },
            Frame::SliceRoute { rows: vec![12, 13] },
            Frame::SliceRoute { rows: vec![] },
            Frame::SPoint {
                id: 41,
                s: Complex64::new(0.5, -2.25),
            },
            Frame::Halo {
                id: 41,
                r: 7,
                entries: vec![
                    (3, Complex64::new(1.0 / 3.0, -0.0)),
                    (99, Complex64::new(-0.0, 2e-300)),
                ],
            },
            Frame::Halo {
                id: 41,
                r: 8,
                entries: vec![],
            },
            Frame::SState {
                id: 41,
                r: 0,
                faithful: false,
                quiet: true,
                targets: vec![Complex64::new(0.25, -0.75), Complex64::ZERO],
                exports: vec![(12, Complex64::new(-1.5, 0.5))],
            },
            Frame::SState {
                id: 42,
                r: 3,
                faithful: true,
                quiet: false,
                targets: vec![],
                exports: vec![],
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            assert_eq!(Frame::decode(&payload).unwrap(), frame, "{payload}");
        }
    }

    #[test]
    fn slice_frame_values_survive_bit_for_bit() {
        // Negative zero and subnormals must cross the wire unchanged: the
        // sharded solve's bitwise guarantee rests on this codec.
        let entries = vec![(0u32, Complex64::new(-0.0, f64::MIN_POSITIVE / 2.0))];
        let frame = Frame::Halo {
            id: 1,
            r: 1,
            entries,
        };
        let decoded = Frame::decode(&frame.encode().unwrap()).unwrap();
        match decoded {
            Frame::Halo { entries, .. } => {
                assert_eq!(entries[0].1.re.to_bits(), (-0.0f64).to_bits());
                assert_eq!(
                    entries[0].1.im.to_bits(),
                    (f64::MIN_POSITIVE / 2.0).to_bits()
                );
            }
            other => panic!("decoded to {other:?}"),
        }
    }

    #[test]
    fn malformed_slice_frames_are_rejected() {
        // Count mismatches.
        assert!(Frame::decode("slicemeta states=1 nnz=1 dists=1 need=2 5").is_err());
        assert!(Frame::decode("sliceroute n=3 1 2").is_err());
        assert!(Frame::decode("halo id=1 r=1 n=1").is_err());
        assert!(Frame::decode("sstate id=1 r=0 faithful=1 quiet=0 targets=1 exports=0").is_err());
        // Missing spec line and trailing junk.
        assert!(Frame::decode("slicejob v=1 worker=0 shards=2").is_err());
        assert!(Frame::decode("spoint id=1 3ff0000000000000 3ff0000000000000 junk").is_err());
        // Flags must be 0/1.
        assert!(Frame::decode("sstate id=1 r=0 faithful=2 quiet=0 targets=0 exports=0").is_err());
        // Non-finite boundary values are rejected at decode.
        let nan = encode_f64(f64::NAN);
        assert!(Frame::decode(&format!("halo id=1 r=1 n=1\n4 {nan} {nan}")).is_err());
    }

    #[test]
    fn frame_io_over_a_buffer() {
        let frame = Frame::Chunk {
            items: (0..10)
                .map(|k| item(k % 2, k, k as f64, -(k as f64)))
                .collect(),
        };
        let mut buffer = Vec::new();
        let written = write_frame(&mut buffer, &frame).unwrap();
        assert_eq!(written, buffer.len() as u64);
        assert_eq!(written, frame_wire_size(&frame).unwrap());
        let mut cursor = std::io::Cursor::new(buffer);
        let (decoded, read) = read_frame(&mut cursor).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(read, written);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_with_a_typed_error() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(&[0u8; 8]);
        bytes.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(bytes);
        let error = read_frame(&mut cursor).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            matches!(
                wire_error_of(&error),
                Some(WireError::Oversize {
                    len: 0xffff_ffff,
                    ..
                })
            ),
            "{error}"
        );
    }

    #[test]
    fn fault_frames_round_trip() {
        let frames = vec![
            Frame::Ping { nonce: 7 },
            Frame::Pong { nonce: u64::MAX },
            Frame::TermReq { id: 9, r: 41 },
            Frame::Term {
                id: 9,
                r: 41,
                entries: vec![
                    (0, Complex64::new(1.0 / 3.0, -0.0)),
                    (250, Complex64::new(-2e-300, 0.5)),
                ],
            },
            Frame::Term {
                id: 1,
                r: 0,
                entries: vec![],
            },
            Frame::Restore {
                id: 10,
                r: 16,
                s: Complex64::new(0.25, -1.5),
                entries: vec![(3, Complex64::new(0.125, 0.0))],
            },
        ];
        for frame in frames {
            let payload = frame.encode().unwrap();
            assert_eq!(Frame::decode(&payload).unwrap(), frame, "{payload}");
        }
        // Count mismatches and trailing junk are refused.
        assert!(Frame::decode("term id=1 r=1 n=2\n0 3ff0000000000000 3ff0000000000000").is_err());
        assert!(Frame::decode("ping nonce=1 extra").is_err());
        assert!(
            Frame::decode("restore id=1 r=1 3ff0000000000000 3ff0000000000000 n=1").is_err(),
            "restore announcing one entry but carrying none"
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_refused() {
        // The integrity guarantee in its strongest form: take a real frame's
        // wire bytes, flip every bit of every byte in turn, and demand that
        // the reader either refuses the frame or (for flips in bytes past
        // the announced frame, which a reader never consumes) leaves the
        // decoded frame identical.  Silent acceptance of different content
        // is the failure mode this framing exists to kill.
        let frame = Frame::SState {
            id: 3,
            r: 5,
            faithful: true,
            quiet: false,
            targets: vec![Complex64::new(0.25, -0.75)],
            exports: vec![(12, Complex64::new(-1.5, 0.5))],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        for index in 0..wire.len() {
            for bit in 0..8 {
                let mut corrupted = wire.clone();
                corrupted[index] ^= 1 << bit;
                let mut cursor = std::io::Cursor::new(corrupted);
                match read_frame(&mut cursor) {
                    Err(_) => {} // refused: corruption detected
                    Ok((decoded, _)) => {
                        panic!("byte {index} bit {bit}: corrupted frame accepted as {decoded:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn corruption_is_a_typed_refusal() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Done).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x10; // flip a payload bit
        let error = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(
            matches!(wire_error_of(&error), Some(WireError::Corrupt { .. })),
            "{error}"
        );
    }

    #[test]
    fn truncated_frame_is_unexpected_eof_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping { nonce: 3 }).unwrap();
        wire.truncate(wire.len() - 2);
        let error = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn checksum_covers_the_length_prefix() {
        // Same payload, different announced length: even when the stream
        // happens to contain enough bytes for the shorter length, the
        // checksum (computed over the length bytes) no longer matches.
        let payload = b"done";
        let len = payload.len() as u32;
        let sum = frame_checksum(len, payload);
        let mut wire = Vec::new();
        wire.extend_from_slice(&(len - 1).to_be_bytes()); // lie about length
        wire.extend_from_slice(&sum.to_be_bytes());
        wire.extend_from_slice(payload);
        let error = read_payload(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(
            matches!(wire_error_of(&error), Some(WireError::Corrupt { .. })),
            "{error}"
        );
    }

    #[test]
    fn oversized_write_is_refused_before_hitting_the_stream() {
        let huge = "x".repeat(MAX_FRAME_BYTES as usize + 1);
        let mut sink = Vec::new();
        let error = write_payload(&mut sink, &huge).unwrap_err();
        assert!(
            matches!(wire_error_of(&error), Some(WireError::Oversize { .. })),
            "{error}"
        );
        assert!(sink.is_empty(), "nothing reached the stream");
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        assert!(decode_work_item("0 1 3ff0000000000000").is_err());
        assert!(decode_work_item("0 1 3ff0000000000000 3ff0000000000000 extra").is_err());
        assert!(Frame::decode("chunk n=2\n0 0 3ff0000000000000 3ff0000000000000").is_err());
        assert!(Frame::decode("warble n=1").is_err());
        assert!(Frame::decode("").is_err());
    }
}
