//! The global work queue of `s`-point evaluations.
//!
//! The paper's master places every outstanding transform evaluation in a global
//! queue from which the slave processors request work.  To keep channel and lock
//! traffic proportional to the number of *chunks* rather than the number of
//! *points*, the queue hands out work in configurable-size chunks: one lock
//! acquisition per [`WorkQueue::pop_chunk`] call returns up to `chunk_size`
//! items, and the worker answers with a single message per chunk.

use parking_lot::Mutex;
use smp_numeric::Complex64;
use std::collections::VecDeque;

/// One unit of work: evaluate the transform of measure `measure` at `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Index of the measure (within the running batch job) whose transform is to
    /// be evaluated.  Single-measure runs use measure `0` throughout.
    pub measure: usize,
    /// Position of the point in the evaluation plan (used for bookkeeping only).
    pub index: usize,
    /// The complex evaluation point.
    pub s: Complex64,
}

/// A shared, lock-protected FIFO work queue — the paper's "global work-queue to
/// which the slave processors make requests" — that dispenses work in chunks.
#[derive(Debug)]
pub struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
    chunk_size: usize,
}

impl Default for WorkQueue {
    fn default() -> Self {
        WorkQueue {
            items: Mutex::new(VecDeque::new()),
            chunk_size: 1,
        }
    }
}

impl WorkQueue {
    /// Creates a queue pre-loaded with the given evaluation points for a single
    /// measure, dispensed one item at a time (the paper's original protocol).
    pub fn new(points: &[Complex64]) -> Self {
        let items = points
            .iter()
            .enumerate()
            .map(|(index, &s)| WorkItem {
                measure: 0,
                index,
                s,
            })
            .collect();
        WorkQueue {
            items: Mutex::new(items),
            chunk_size: 1,
        }
    }

    /// Creates a queue pre-loaded with arbitrary work items, dispensed up to
    /// `chunk_size` at a time.
    ///
    /// # Panics
    /// Panics when `chunk_size` is zero.
    pub fn with_chunk_size(items: Vec<WorkItem>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be at least 1");
        WorkQueue {
            items: Mutex::new(items.into()),
            chunk_size,
        }
    }

    /// Creates an empty queue (chunk size 1).
    pub fn empty() -> Self {
        WorkQueue::default()
    }

    /// The number of items handed out per [`WorkQueue::pop_chunk`] call.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Adds a work item to the back of the queue.
    pub fn push(&self, item: WorkItem) {
        self.items.lock().push_back(item);
    }

    /// Takes the next single work item, if any.
    pub fn pop(&self) -> Option<WorkItem> {
        self.items.lock().pop_front()
    }

    /// Takes the next chunk of up to `chunk_size` items under one lock
    /// acquisition (this is the slave's "request").  Returns `None` when the
    /// queue is empty; the final chunk may be shorter than `chunk_size`.
    pub fn pop_chunk(&self) -> Option<Vec<WorkItem>> {
        let mut items = self.items.lock();
        if items.is_empty() {
            return None;
        }
        let take = self.chunk_size.min(items.len());
        Some(items.drain(..take).collect())
    }

    /// Number of outstanding items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when no work remains.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn items(n: usize) -> Vec<WorkItem> {
        (0..n)
            .map(|index| WorkItem {
                measure: index % 3,
                index,
                s: Complex64::new(index as f64, 0.0),
            })
            .collect()
    }

    #[test]
    fn fifo_order() {
        let points: Vec<Complex64> = (0..5).map(|k| Complex64::new(k as f64, 0.0)).collect();
        let queue = WorkQueue::new(&points);
        assert_eq!(queue.len(), 5);
        assert_eq!(queue.chunk_size(), 1);
        for k in 0..5 {
            let item = queue.pop().unwrap();
            assert_eq!(item.index, k);
            assert_eq!(item.measure, 0);
            assert_eq!(item.s.re, k as f64);
        }
        assert!(queue.pop().is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn push_appends() {
        let queue = WorkQueue::empty();
        queue.push(WorkItem {
            measure: 2,
            index: 7,
            s: Complex64::I,
        });
        assert_eq!(queue.len(), 1);
        let item = queue.pop().unwrap();
        assert_eq!(item.index, 7);
        assert_eq!(item.measure, 2);
    }

    #[test]
    fn chunked_pop_respects_chunk_size_and_order() {
        let queue = WorkQueue::with_chunk_size(items(10), 4);
        assert_eq!(queue.chunk_size(), 4);
        let first = queue.pop_chunk().unwrap();
        assert_eq!(first.len(), 4);
        assert_eq!(
            first.iter().map(|i| i.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let second = queue.pop_chunk().unwrap();
        assert_eq!(second.len(), 4);
        // The final chunk is short: 10 = 4 + 4 + 2.
        let last = queue.pop_chunk().unwrap();
        assert_eq!(last.len(), 2);
        assert_eq!(last[1].index, 9);
        assert!(queue.pop_chunk().is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn chunk_size_larger_than_queue_drains_in_one_pop() {
        let queue = WorkQueue::with_chunk_size(items(3), 64);
        let chunk = queue.pop_chunk().unwrap();
        assert_eq!(chunk.len(), 3);
        assert!(queue.pop_chunk().is_none());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be at least 1")]
    fn zero_chunk_size_rejected() {
        let _ = WorkQueue::with_chunk_size(Vec::new(), 0);
    }

    #[test]
    fn concurrent_pops_drain_exactly_once() {
        let points: Vec<Complex64> = (0..1000).map(|k| Complex64::new(k as f64, 1.0)).collect();
        let queue = Arc::new(WorkQueue::new(&points));
        let seen: Vec<usize> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let queue = Arc::clone(&queue);
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    while let Some(item) = queue.pop() {
                        local.push(item.index);
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();
        let mut seen = seen;
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_chunked_pops_drain_exactly_once() {
        let queue = Arc::new(WorkQueue::with_chunk_size(items(997), 8));
        let seen: Vec<usize> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..6 {
                let queue = Arc::clone(&queue);
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    while let Some(chunk) = queue.pop_chunk() {
                        assert!(chunk.len() <= 8);
                        local.extend(chunk.iter().map(|i| i.index));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();
        let mut seen = seen;
        seen.sort_unstable();
        assert_eq!(seen, (0..997).collect::<Vec<_>>());
    }
}
