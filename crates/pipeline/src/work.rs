//! The global work queue of `s`-point evaluations.

use parking_lot::Mutex;
use smp_numeric::Complex64;
use std::collections::VecDeque;

/// One unit of work: evaluate the transform at `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Position of the point in the evaluation plan (used for bookkeeping only).
    pub index: usize,
    /// The complex evaluation point.
    pub s: Complex64,
}

/// A shared, lock-protected FIFO work queue — the paper's "global work-queue to
/// which the slave processors make requests".
#[derive(Debug, Default)]
pub struct WorkQueue {
    items: Mutex<VecDeque<WorkItem>>,
}

impl WorkQueue {
    /// Creates a queue pre-loaded with the given evaluation points.
    pub fn new(points: &[Complex64]) -> Self {
        let items = points
            .iter()
            .enumerate()
            .map(|(index, &s)| WorkItem { index, s })
            .collect();
        WorkQueue {
            items: Mutex::new(items),
        }
    }

    /// Creates an empty queue.
    pub fn empty() -> Self {
        WorkQueue::default()
    }

    /// Adds a work item to the back of the queue.
    pub fn push(&self, item: WorkItem) {
        self.items.lock().push_back(item);
    }

    /// Takes the next work item, if any (this is the slave's "request").
    pub fn pop(&self) -> Option<WorkItem> {
        self.items.lock().pop_front()
    }

    /// Number of outstanding items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// True when no work remains.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let points: Vec<Complex64> = (0..5).map(|k| Complex64::new(k as f64, 0.0)).collect();
        let queue = WorkQueue::new(&points);
        assert_eq!(queue.len(), 5);
        for k in 0..5 {
            let item = queue.pop().unwrap();
            assert_eq!(item.index, k);
            assert_eq!(item.s.re, k as f64);
        }
        assert!(queue.pop().is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn push_appends() {
        let queue = WorkQueue::empty();
        queue.push(WorkItem {
            index: 7,
            s: Complex64::I,
        });
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.pop().unwrap().index, 7);
    }

    #[test]
    fn concurrent_pops_drain_exactly_once() {
        let points: Vec<Complex64> = (0..1000).map(|k| Complex64::new(k as f64, 1.0)).collect();
        let queue = Arc::new(WorkQueue::new(&points));
        let seen: Vec<usize> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let queue = Arc::clone(&queue);
                handles.push(scope.spawn(move |_| {
                    let mut local = Vec::new();
                    while let Some(item) = queue.pop() {
                        local.push(item.index);
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .unwrap();
        let mut seen = seen;
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }
}
