//! The slave-processor loop.
//!
//! A worker repeatedly requests the next `s`-value from the global work queue,
//! evaluates the transform there (for passage-time analysis this means building `U`
//! and `U'` and running the iterative algorithm to convergence), optionally sleeps
//! for a configurable simulated network latency, and returns the result to the
//! master.  Workers never talk to each other — the property that gives the pipeline
//! its near-linear scalability.

use crate::work::{WorkItem, WorkQueue};
use crossbeam::channel::Sender;
use smp_numeric::Complex64;
use std::time::{Duration, Instant};

/// Per-worker accounting, reported back to the master when the queue drains.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker identifier (0-based).
    pub id: usize,
    /// Number of `s`-points this worker evaluated.
    pub evaluated: usize,
    /// Total time spent evaluating (excludes queue waiting and simulated latency).
    pub busy: Duration,
}

/// A result message from a worker to the master.
#[derive(Debug, Clone)]
pub struct WorkerMessage {
    /// The work item that was evaluated.
    pub item: WorkItem,
    /// The transform value, or an error description.
    pub outcome: Result<Complex64, String>,
}

/// Runs one worker until the queue is empty.  `evaluator` is the transform being
/// computed; `latency` simulates the master⇄slave network round-trip per result.
pub fn run_worker<F>(
    id: usize,
    queue: &WorkQueue,
    evaluator: &F,
    latency: Option<Duration>,
    results: &Sender<WorkerMessage>,
) -> WorkerStats
where
    F: Fn(Complex64) -> Result<Complex64, String> + Sync + ?Sized,
{
    let mut stats = WorkerStats {
        id,
        evaluated: 0,
        busy: Duration::ZERO,
    };
    while let Some(item) = queue.pop() {
        let started = Instant::now();
        let outcome = evaluator(item.s);
        stats.busy += started.elapsed();
        stats.evaluated += 1;
        if let Some(latency) = latency {
            std::thread::sleep(latency);
        }
        if results.send(WorkerMessage { item, outcome }).is_err() {
            // The master has gone away; stop quietly.
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn worker_drains_queue_and_reports_stats() {
        let points: Vec<Complex64> = (1..=20).map(|k| Complex64::new(k as f64, 0.0)).collect();
        let queue = WorkQueue::new(&points);
        let (tx, rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> { Ok(s * s) };
        let stats = run_worker(3, &queue, &evaluator, None, &tx);
        drop(tx);
        assert_eq!(stats.id, 3);
        assert_eq!(stats.evaluated, 20);
        let received: Vec<WorkerMessage> = rx.iter().collect();
        assert_eq!(received.len(), 20);
        for msg in received {
            let expect = msg.item.s * msg.item.s;
            assert_eq!(msg.outcome.unwrap(), expect);
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn errors_are_forwarded_not_fatal() {
        let points = vec![Complex64::ONE, Complex64::I, Complex64::new(2.0, 0.0)];
        let queue = WorkQueue::new(&points);
        let (tx, rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> {
            if s == Complex64::I {
                Err("did not converge".into())
            } else {
                Ok(s)
            }
        };
        let stats = run_worker(0, &queue, &evaluator, None, &tx);
        drop(tx);
        assert_eq!(stats.evaluated, 3);
        let errors: Vec<_> = rx.iter().filter(|m| m.outcome.is_err()).collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].item.s, Complex64::I);
    }

    #[test]
    fn simulated_latency_slows_the_worker() {
        let points: Vec<Complex64> = (0..5).map(|k| Complex64::real(k as f64)).collect();
        let (tx, _rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> { Ok(s) };

        let fast_queue = WorkQueue::new(&points);
        let started = Instant::now();
        run_worker(0, &fast_queue, &evaluator, None, &tx);
        let fast = started.elapsed();

        let slow_queue = WorkQueue::new(&points);
        let started = Instant::now();
        run_worker(
            0,
            &slow_queue,
            &evaluator,
            Some(Duration::from_millis(5)),
            &tx,
        );
        let slow = started.elapsed();

        assert!(slow >= Duration::from_millis(25));
        assert!(slow > fast);
    }
}
