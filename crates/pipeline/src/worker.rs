//! The slave-processor loop.
//!
//! A worker repeatedly requests the next *chunk* of `s`-values from the global
//! work queue, evaluates the transform of the measure each item belongs to (for
//! passage-time analysis: refill the prebuilt `U` skeleton's values for the
//! point and run the iterative algorithm to convergence — the symbolic phase
//! ran once at solver construction, see `smp_core::workspace`), optionally
//! sleeps for a configurable simulated network latency, and returns the whole
//! chunk's results to the master in a single message.  Workers never talk to
//! each other — the property that gives the pipeline its near-linear
//! scalability — and chunking keeps the master⇄worker message count
//! proportional to the number of chunks, not the number of points.  Chunking
//! also feeds the hot path: a thread that owns a chunk evaluates its points
//! back-to-back, and each evaluation checks a `PassageWorkspace` out of the
//! solver's pool — the pool hands the thread the workspace it just returned
//! (one uncontended lock round-trip, trivial next to an evaluation), so the
//! per-point numeric phase allocates nothing and the number of workspaces
//! ever built is bounded by the worker count.

use crate::work::{WorkItem, WorkQueue};
use crossbeam::channel::Sender;
use smp_numeric::Complex64;
use std::time::{Duration, Instant};

/// The transform evaluator a worker applies to an `s`-point: any Laplace-domain
/// function, typically a closure around a `PassageTimeSolver` or
/// `TransientSolver`.
pub type TransformFn<'a> = dyn Fn(Complex64) -> Result<Complex64, String> + Sync + 'a;

/// Per-worker accounting, reported back to the master when the queue drains.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// Worker identifier (0-based).
    pub id: usize,
    /// Number of `s`-points this worker evaluated.
    pub evaluated: usize,
    /// Number of result messages (chunks) this worker sent to the master.
    pub messages: usize,
    /// Total time spent evaluating (excludes queue waiting and simulated latency).
    pub busy: Duration,
}

/// One evaluated item inside a [`WorkerMessage`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItemOutcome {
    /// The work item that was evaluated.
    pub item: WorkItem,
    /// The transform value, or an error description.
    pub outcome: Result<Complex64, String>,
}

/// A result message from a worker to the master: every outcome of one chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMessage {
    /// The sending worker's identifier.
    pub worker: usize,
    /// The evaluated chunk, in the order the items were popped.
    pub results: Vec<WorkItemOutcome>,
}

/// Runs one worker until the queue is empty, evaluating each item with the
/// evaluator of the measure it belongs to.  `latency` simulates the
/// master⇄slave network round-trip per *message* (i.e. per chunk — batching is
/// exactly what amortises it).
pub fn run_batch_worker(
    id: usize,
    queue: &WorkQueue,
    evaluators: &[&TransformFn<'_>],
    latency: Option<Duration>,
    results: &Sender<WorkerMessage>,
) -> WorkerStats {
    let mut stats = WorkerStats {
        id,
        evaluated: 0,
        messages: 0,
        busy: Duration::ZERO,
    };
    while let Some(chunk) = queue.pop_chunk() {
        let started = Instant::now();
        let outcomes: Vec<WorkItemOutcome> = chunk
            .into_iter()
            .map(|item| WorkItemOutcome {
                outcome: (evaluators[item.measure])(item.s),
                item,
            })
            .collect();
        stats.busy += started.elapsed();
        stats.evaluated += outcomes.len();
        stats.messages += 1;
        if let Some(latency) = latency {
            std::thread::sleep(latency);
        }
        if results
            .send(WorkerMessage {
                worker: id,
                results: outcomes,
            })
            .is_err()
        {
            // The master has gone away; stop quietly.
            break;
        }
    }
    stats
}

/// Runs one single-measure worker until the queue is empty (the paper's
/// original one-point-per-message protocol when the queue's chunk size is 1).
pub fn run_worker<F>(
    id: usize,
    queue: &WorkQueue,
    evaluator: &F,
    latency: Option<Duration>,
    results: &Sender<WorkerMessage>,
) -> WorkerStats
where
    F: Fn(Complex64) -> Result<Complex64, String> + Sync + ?Sized,
{
    let evaluators: [&TransformFn<'_>; 1] = [&|s| evaluator(s)];
    run_batch_worker(id, queue, &evaluators, latency, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn worker_drains_queue_and_reports_stats() {
        let points: Vec<Complex64> = (1..=20).map(|k| Complex64::new(k as f64, 0.0)).collect();
        let queue = WorkQueue::new(&points);
        let (tx, rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> { Ok(s * s) };
        let stats = run_worker(3, &queue, &evaluator, None, &tx);
        drop(tx);
        assert_eq!(stats.id, 3);
        assert_eq!(stats.evaluated, 20);
        // Chunk size 1: one message per point.
        assert_eq!(stats.messages, 20);
        let received: Vec<WorkItemOutcome> =
            rx.iter().flat_map(|message| message.results).collect();
        assert_eq!(received.len(), 20);
        for outcome in received {
            let expect = outcome.item.s * outcome.item.s;
            assert_eq!(outcome.outcome.unwrap(), expect);
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn chunked_worker_sends_one_message_per_chunk() {
        let items: Vec<WorkItem> = (0..17)
            .map(|index| WorkItem {
                measure: 0,
                index,
                s: Complex64::new(index as f64, 0.0),
            })
            .collect();
        let queue = WorkQueue::with_chunk_size(items, 5);
        let (tx, rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> { Ok(s + Complex64::ONE) };
        let evaluators: [&TransformFn<'_>; 1] = [&evaluator];
        let stats = run_batch_worker(1, &queue, &evaluators, None, &tx);
        drop(tx);
        // 17 items at chunk size 5: 5 + 5 + 5 + 2 → 4 messages.
        assert_eq!(stats.evaluated, 17);
        assert_eq!(stats.messages, 4);
        let messages: Vec<WorkerMessage> = rx.iter().collect();
        assert_eq!(messages.len(), 4);
        assert!(messages.iter().all(|m| m.worker == 1));
        let total: usize = messages.iter().map(|m| m.results.len()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn items_are_routed_to_their_measure_evaluator() {
        let items: Vec<WorkItem> = (0..12)
            .map(|index| WorkItem {
                measure: index % 2,
                index,
                s: Complex64::new(index as f64, 0.0),
            })
            .collect();
        let queue = WorkQueue::with_chunk_size(items, 4);
        let (tx, rx) = unbounded();
        let double = |s: Complex64| -> Result<Complex64, String> { Ok(s * Complex64::real(2.0)) };
        let negate = |s: Complex64| -> Result<Complex64, String> { Ok(-s) };
        let evaluators: [&TransformFn<'_>; 2] = [&double, &negate];
        run_batch_worker(0, &queue, &evaluators, None, &tx);
        drop(tx);
        for outcome in rx.iter().flat_map(|m| m.results) {
            let expect = match outcome.item.measure {
                0 => outcome.item.s * Complex64::real(2.0),
                _ => -outcome.item.s,
            };
            assert_eq!(outcome.outcome.unwrap(), expect);
        }
    }

    #[test]
    fn errors_are_forwarded_not_fatal() {
        let points = vec![Complex64::ONE, Complex64::I, Complex64::new(2.0, 0.0)];
        let queue = WorkQueue::new(&points);
        let (tx, rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> {
            if s == Complex64::I {
                Err("did not converge".into())
            } else {
                Ok(s)
            }
        };
        let stats = run_worker(0, &queue, &evaluator, None, &tx);
        drop(tx);
        assert_eq!(stats.evaluated, 3);
        let errors: Vec<_> = rx
            .iter()
            .flat_map(|m| m.results)
            .filter(|o| o.outcome.is_err())
            .collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].item.s, Complex64::I);
    }

    #[test]
    fn simulated_latency_is_per_message_so_chunking_amortises_it() {
        let points: Vec<Complex64> = (0..6).map(|k| Complex64::real(k as f64)).collect();
        let (tx, _rx) = unbounded();
        let evaluator = |s: Complex64| -> Result<Complex64, String> { Ok(s) };
        let latency = Some(Duration::from_millis(5));

        // Chunk size 1: six messages, so at least 30 ms of simulated latency.
        let queue = WorkQueue::new(&points);
        let started = Instant::now();
        let stats = run_worker(0, &queue, &evaluator, latency, &tx);
        let unchunked = started.elapsed();
        assert_eq!(stats.messages, 6);
        assert!(unchunked >= Duration::from_millis(30));

        // Chunk size 6: a single message pays the latency once.
        let items: Vec<WorkItem> = (0..6)
            .map(|index| WorkItem {
                measure: 0,
                index,
                s: Complex64::real(index as f64),
            })
            .collect();
        let chunked_queue = WorkQueue::with_chunk_size(items, 6);
        let evaluators: [&TransformFn<'_>; 1] = [&evaluator];
        let started = Instant::now();
        let stats = run_batch_worker(0, &chunked_queue, &evaluators, latency, &tx);
        let chunked = started.elapsed();
        assert_eq!(stats.messages, 1);
        assert!(chunked < unchunked);
    }
}
