//! Row-sharded distributed SpMV sessions — the wire-level counterpart of
//! [`smp_core::shard`].
//!
//! The in-process [`smp_core::ShardedSolver`] is the executable specification
//! of the protocol; this module runs the same slices behind the length-prefixed
//! frame transport so each worker holds only its `O(N/shards)` row block:
//!
//! * [`SliceWorkerSession`] — the worker half, written once and driven
//!   frame-by-frame: build the slice from a [`Frame::SliceJob`], answer
//!   [`Frame::SPoint`] / [`Frame::Halo`] with [`Frame::SState`].
//! * [`SliceChannel`] — one bidirectional frame channel per worker, with two
//!   backends: [`LoopbackSlice`] (in-process, synchronous, full wire-size
//!   accounting) and [`TcpSliceChannel`] (a connected socket).
//! * [`SliceFleet`] — the master driver: the `SliceJob` → `SliceMeta` →
//!   `SliceRoute` handshake, the per-point `SPoint` / `Halo` / `SState`
//!   lockstep rounds with the [`ConvergenceFold`] of the core solver, and
//!   re-sharding recovery when a worker connection dies mid-run.
//!
//! The session protocol, frame by frame (`shards = 3`):
//!
//! ```text
//! master                                  worker k ∈ {0, 1, 2}
//!   SliceJob{worker: k, shards: 3} ────▶  parse, explore, carve slice k
//!   ◀──────── SliceMeta{states, nnz, dists, need}   (memory model + halo subscription)
//!   SliceRoute{rows} ──────────────────▶  rows other shards will ask of k
//!   SPoint{id, s} ─────────────────────▶  refill + init
//!   ◀──────── SState{r: 0, faithful, quiet, targets, exports}
//!   Halo{id, r: 1, entries} ───────────▶  apply halo, one SpMV step
//!   ◀──────── SState{r: 1, ...}           (… rounds until the master folds
//!   ⋮                                      the deltas to convergence …)
//!   Done ──────────────────────────────▶  session over, await next SliceJob
//! ```
//!
//! Values are **bitwise identical for any worker count**: the fold replicates
//! `PassageTimeSolver::transform_at` exactly (see `smp_core::shard` for the
//! analysis), any slice's unfaithful refill routes the whole point through the
//! same legacy local fallback, and every float crosses the wire as its exact
//! bit pattern.

use crate::checkpoint::ShardSnapshot;
use crate::master::PipelineError;
use crate::transform::{CompiledModelSet, ResolveTarget, TransformSpec};
use crate::wire::{self, Frame, WIRE_VERSION};
use smp_core::shard::owner_of;
use smp_core::{
    plan_exchange, ConvergenceFold, FoldStatus, IterationOptions, ShardWorkspace, ShardedSkeleton,
    StateSet,
};
use smp_numeric::Complex64;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// One worker's half of a sharded session: the slice workspace plus the
/// export route the master assigned, driven frame-by-frame.
///
/// The state machine is written once here; the in-process [`LoopbackSlice`]
/// and the TCP worker loop ([`serve_slices`]) both delegate to
/// [`SliceWorkerSession::handle`], so the two deployments cannot drift.
pub struct SliceWorkerSession {
    ws: ShardWorkspace,
    route: Vec<u32>,
    epsilon: f64,
}

impl SliceWorkerSession {
    /// Builds the slice for `worker` of `shards` from an encoded spec line:
    /// decode → parse → explore → resolve targets → carve the row block.  The
    /// full net and state space are dropped before returning, so the session
    /// keeps only its `O(N/shards + halo)` slice resident — the distributed
    /// memory model the sharded deployment exists for.
    pub fn new(
        spec_line: &str,
        shards: usize,
        worker: usize,
    ) -> Result<SliceWorkerSession, String> {
        let spec = TransformSpec::decode(spec_line).map_err(|e| e.to_string())?;
        let TransformSpec::Passage { model, targets } = &spec else {
            return Err(format!(
                "sharded sessions evaluate passage transforms only, got '{spec_line}'"
            ));
        };
        if shards == 0 || worker >= shards {
            return Err(format!(
                "shard index {worker} is out of range for {shards} shards"
            ));
        }
        let source = model.source();
        let net = smp_dnamaca::parse_model(&source).map_err(|e| e.to_string())?;
        let space = smp_smspn::StateSpace::explore(&net).map_err(|e| e.to_string())?;
        let target_states = targets.resolve(&net, &space).map_err(|e| e.to_string())?;
        let smp = space.smp();
        let target_set =
            StateSet::new(smp.num_states(), &target_states).map_err(|e| e.to_string())?;
        let skeleton =
            ShardedSkeleton::build(smp, &target_set, space.initial_state(), shards, worker);
        // `net` and `space` drop here: only the slice survives.
        Ok(SliceWorkerSession {
            ws: ShardWorkspace::new(Arc::new(skeleton)),
            route: Vec::new(),
            epsilon: IterationOptions::default().epsilon,
        })
    }

    /// The [`Frame::SliceMeta`] answer to the job this session was built
    /// from: the slice's memory-model numbers and its halo subscription.
    pub fn meta(&self) -> Frame {
        let skeleton = self.ws.skeleton();
        Frame::SliceMeta {
            states: skeleton.owned_states(),
            nnz: skeleton.nnz(),
            dists: skeleton.pool_len(),
            need: skeleton.need_rows().to_vec(),
        }
    }

    /// Handles one in-session frame.  [`Frame::SliceRoute`] installs the
    /// export route and has no answer; [`Frame::SPoint`] and [`Frame::Halo`]
    /// answer with the round's [`Frame::SState`].  Anything else is a
    /// protocol error.
    pub fn handle(&mut self, frame: &Frame) -> Result<Option<Frame>, String> {
        match frame {
            Frame::SliceRoute { rows } => {
                self.route = rows.clone();
                Ok(None)
            }
            Frame::SPoint { id, s } => {
                if !self.ws.refill(*s) {
                    // An exact-zero kernel entry: the master must route this
                    // whole point through the legacy local solve, exactly as
                    // the unsharded workspace path would.
                    return Ok(Some(Frame::SState {
                        id: *id,
                        r: 0,
                        faithful: false,
                        quiet: false,
                        targets: Vec::new(),
                        exports: Vec::new(),
                    }));
                }
                self.ws.init();
                Ok(Some(self.state_frame(*id, 0)))
            }
            Frame::Halo { id, r, entries } => {
                self.ws.apply_halo(entries).map_err(|e| e.to_string())?;
                self.ws.step();
                Ok(Some(self.state_frame(*id, *r)))
            }
            // A pure read of the current iterate: this shard's owned rows
            // keyed by global index.  Taking a snapshot can therefore never
            // perturb the solve — cadence choices cannot change values.
            Frame::TermReq { id, r } => {
                let mut entries = Vec::new();
                self.ws.save_term(&mut entries);
                Ok(Some(Frame::Term {
                    id: *id,
                    r: *r,
                    entries,
                }))
            }
            // Mid-point resume: refill the matrix for `s`, load the owned
            // slice of the checkpointed global term vector (rows outside this
            // shard's block are skipped — the snapshot is shard-count
            // independent), and answer a round-`r` state.  The master ignores
            // the targets and quiet flag (the fold resumes from the
            // checkpoint) and uses only the exports to seed round `r + 1`'s
            // halo.
            Frame::Restore { id, r, s, entries } => {
                if !self.ws.refill(*s) {
                    return Ok(Some(Frame::SState {
                        id: *id,
                        r: *r,
                        faithful: false,
                        quiet: false,
                        targets: Vec::new(),
                        exports: Vec::new(),
                    }));
                }
                self.ws.load_term(entries).map_err(|e| e.to_string())?;
                Ok(Some(self.state_frame(*id, *r)))
            }
            other => Err(format!("unexpected frame in a slice session: {other:?}")),
        }
    }

    fn state_frame(&self, id: u64, r: u64) -> Frame {
        let mut targets = Vec::new();
        self.ws.collect_targets(&mut targets);
        let mut exports = Vec::new();
        self.ws.export_values(&self.route, &mut exports);
        Frame::SState {
            id,
            r,
            faithful: true,
            quiet: self.ws.is_quiet(self.epsilon),
            targets,
            exports,
        }
    }
}

/// What a worker-side TCP slice loop did before returning to the outer frame
/// loop (diagnostics for [`crate::transport::TcpWorkerSummary`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceServeSummary {
    /// `s`-points started (round-0 refills) across (re)assignments.
    pub points: usize,
    /// [`Frame::SState`] frames written.
    pub responses: usize,
    /// Whether the loop exited through its fault-injection response limit,
    /// dropping the connection mid-session.
    pub exited_early: bool,
}

/// Serves one sharded session on the worker side of `stream`, starting from
/// the already-read [`Frame::SliceJob`] `job`, until the master sends
/// [`Frame::Done`].  A mid-session `SliceJob` rebuilds the slice in place —
/// that is how the master re-shards survivors after losing a worker.
///
/// `exit_after_responses` is the fault-injection hook behind
/// `smpq worker --exit-after`: once that many [`Frame::SState`] frames have
/// been written the loop returns abruptly *without* answering, simulating a
/// worker crash for the master's requeue path to absorb.
pub fn serve_slices<S: Read + Write>(
    stream: &mut S,
    job: &Frame,
    exit_after_responses: Option<usize>,
) -> io::Result<SliceServeSummary> {
    let mut summary = SliceServeSummary::default();
    let Some(mut session) = install_slice(stream, job)? else {
        return Ok(summary);
    };
    loop {
        let (frame, _) = wire::read_frame(stream)?;
        match frame {
            Frame::Done => return Ok(summary),
            Frame::SliceJob { .. } => {
                session = match install_slice(stream, &frame)? {
                    Some(session) => session,
                    None => return Ok(summary),
                };
            }
            other => match session.handle(&other) {
                Ok(Some(response)) => {
                    if exit_after_responses.is_some_and(|limit| summary.responses >= limit) {
                        summary.exited_early = true;
                        return Ok(summary);
                    }
                    if matches!(other, Frame::SPoint { .. }) {
                        summary.points += 1;
                    }
                    wire::write_frame(stream, &response)?;
                    summary.responses += 1;
                }
                Ok(None) => {}
                Err(message) => {
                    let _ = wire::write_frame(stream, &Frame::Fatal { message });
                    return Ok(summary);
                }
            },
        }
    }
}

/// Builds a session from a `SliceJob` frame and answers `SliceMeta` (or
/// `Fatal`, in which case `None` is returned and the caller abandons the
/// session).
fn install_slice<S: Read + Write>(
    stream: &mut S,
    job: &Frame,
) -> io::Result<Option<SliceWorkerSession>> {
    let Frame::SliceJob {
        version,
        worker,
        shards,
        spec,
    } = job
    else {
        let _ = wire::write_frame(
            stream,
            &Frame::Fatal {
                message: format!("expected a slice job frame, got {job:?}"),
            },
        );
        return Ok(None);
    };
    if *version != WIRE_VERSION {
        let _ = wire::write_frame(
            stream,
            &Frame::Fatal {
                message: format!(
                    "wire version mismatch: master speaks v{version}, worker v{WIRE_VERSION}"
                ),
            },
        );
        return Ok(None);
    }
    match SliceWorkerSession::new(spec, *shards, *worker) {
        Ok(session) => {
            wire::write_frame(stream, &session.meta())?;
            Ok(Some(session))
        }
        Err(message) => {
            let _ = wire::write_frame(stream, &Frame::Fatal { message });
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

/// A bidirectional frame channel between the master and one slice worker.
///
/// Both directions report the frame's wire size so the in-process backend
/// accounts the same `bytes_on_wire` a real network deployment would ship.
/// An `Err` from either direction means the worker is lost: the master drops
/// the channel and re-shards the session across the survivors.
pub trait SliceChannel: Send {
    /// Sends one frame, returning its wire size in bytes.
    fn send(&mut self, frame: &Frame) -> io::Result<u64>;
    /// Receives the next frame and its wire size.
    fn recv(&mut self) -> io::Result<(Frame, u64)>;
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// The in-process [`SliceChannel`]: a [`SliceWorkerSession`] driven
/// synchronously behind the same frame grammar the TCP deployment speaks,
/// with full wire-size accounting — the `--shards N` backend.
#[derive(Default)]
pub struct LoopbackSlice {
    session: Option<SliceWorkerSession>,
    inbox: VecDeque<Frame>,
    fail_after: Option<usize>,
    responses: usize,
}

impl LoopbackSlice {
    /// A fresh idle loopback worker.
    pub fn new() -> LoopbackSlice {
        LoopbackSlice::default()
    }

    /// A loopback worker that fails (as if its process died) once the master
    /// has received `responses` frames from it — the in-process counterpart
    /// of killing a TCP worker mid-run, for exercising the requeue path.
    pub fn failing_after(responses: usize) -> LoopbackSlice {
        LoopbackSlice {
            fail_after: Some(responses),
            ..LoopbackSlice::default()
        }
    }
}

impl SliceChannel for LoopbackSlice {
    fn send(&mut self, frame: &Frame) -> io::Result<u64> {
        let bytes = wire::frame_wire_size(frame).map_err(|e| invalid(e.to_string()))?;
        match frame {
            Frame::SliceJob {
                worker,
                shards,
                spec,
                ..
            } => match SliceWorkerSession::new(spec, *shards, *worker) {
                Ok(session) => {
                    self.inbox.push_back(session.meta());
                    self.session = Some(session);
                }
                Err(message) => self.inbox.push_back(Frame::Fatal { message }),
            },
            Frame::Done => self.session = None,
            other => match self.session.as_mut() {
                Some(session) => match session.handle(other) {
                    Ok(Some(response)) => self.inbox.push_back(response),
                    Ok(None) => {}
                    Err(message) => self.inbox.push_back(Frame::Fatal { message }),
                },
                None => self.inbox.push_back(Frame::Fatal {
                    message: format!("no slice session is active for {other:?}"),
                }),
            },
        }
        Ok(bytes)
    }

    fn recv(&mut self) -> io::Result<(Frame, u64)> {
        if self.fail_after.is_some_and(|limit| self.responses >= limit) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected slice-worker failure",
            ));
        }
        let frame = self.inbox.pop_front().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "loopback slice has no frame pending",
            )
        })?;
        self.responses += 1;
        let bytes = wire::frame_wire_size(&frame).map_err(|e| invalid(e.to_string()))?;
        Ok((frame, bytes))
    }
}

/// A [`SliceChannel`] over a connected TCP stream: length-prefixed wire
/// frames, one resident worker process per shard.
pub struct TcpSliceChannel {
    stream: std::net::TcpStream,
}

impl TcpSliceChannel {
    /// Wraps an accepted (post-`Hello`) worker connection.
    pub fn new(stream: std::net::TcpStream) -> TcpSliceChannel {
        TcpSliceChannel { stream }
    }
}

impl SliceChannel for TcpSliceChannel {
    fn send(&mut self, frame: &Frame) -> io::Result<u64> {
        wire::write_frame(&mut self.stream, frame)
    }

    fn recv(&mut self) -> io::Result<(Frame, u64)> {
        wire::read_frame(&mut self.stream)
    }
}

/// A [`SliceChannel`] wrapper that injects a [`FaultPlan`]'s faults into the
/// master→worker direction, one plan consult per sent frame.
///
/// * `Drop` — the frame vanishes: the worker never sees it.  TCP cannot lose
///   one frame and stay healthy, so the drop poisons the channel's receive
///   side: every later `recv` times out, exactly as a stalled peer would,
///   and the fleet re-shards around the link.  (Without the poison, dropping
///   a frame that expects no reply — a `SliceRoute` — would leave the worker
///   on a stale route and corrupt values *silently*.)
/// * `CorruptByte` — the frame's wire bytes are corrupted and *proven to be
///   refused* by the frame reader (the checksum at work), then surfaced as
///   the `InvalidData` error the receiving end would raise.
/// * `Disconnect` — the channel dies with `ConnectionAborted`.
/// * `Delay` — the frame is late but intact.
///
/// Every outcome funnels into the fleet's existing lost-worker recovery, so
/// a chaos schedule exercises exactly the re-shard/resume paths a real flaky
/// network would.  The plan is shared (`Arc<Mutex>`) so one schedule can
/// address a whole fleet's channels with a single op counter.
pub struct FaultyChannel {
    inner: Box<dyn SliceChannel>,
    plan: Arc<std::sync::Mutex<crate::transport::FaultPlan>>,
    stalled: bool,
}

impl FaultyChannel {
    /// Wraps a channel with a shared fault plan.
    pub fn new(
        inner: Box<dyn SliceChannel>,
        plan: Arc<std::sync::Mutex<crate::transport::FaultPlan>>,
    ) -> FaultyChannel {
        FaultyChannel {
            inner,
            plan,
            stalled: false,
        }
    }
}

impl SliceChannel for FaultyChannel {
    fn send(&mut self, frame: &Frame) -> io::Result<u64> {
        use crate::transport::FaultKind;
        let kind = match self.plan.lock() {
            Ok(mut plan) => plan.next_op(),
            Err(_) => FaultKind::Pass,
        };
        match kind {
            FaultKind::Pass => self.inner.send(frame),
            FaultKind::Delay { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.send(frame)
            }
            FaultKind::DropFrame => {
                // The sender believes the frame shipped; the worker never
                // sees it, and the link is now out of sync for good.
                self.stalled = true;
                wire::frame_wire_size(frame).map_err(|e| invalid(e.to_string()))
            }
            FaultKind::Disconnect => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "slice link killed by fault plan",
            )),
            FaultKind::CorruptByte { xor } => {
                // The wire layer must refuse the corrupted bytes; surface its
                // refusal as this channel's failure.
                Err(crate::transport::prove_corruption_detected(frame, xor))
            }
        }
    }

    fn recv(&mut self) -> io::Result<(Frame, u64)> {
        if self.stalled {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "peer never received a dropped frame; session stalled",
            ));
        }
        self.inner.recv()
    }
}

// ---------------------------------------------------------------------------
// Master side
// ---------------------------------------------------------------------------

/// What one [`SliceFleet::solve`] call did: the transform values plus the
/// wire, exchange and memory-model counters that feed
/// [`smp_core::query::Provenance`].
#[derive(Debug, Clone, Default)]
pub struct ShardedOutcome {
    /// The transform value at each requested `s`-point, in request order.
    pub values: Vec<Complex64>,
    /// Frames sent and received.
    pub messages: usize,
    /// Bytes shipped (or, on the loopback backend, that would have shipped).
    pub bytes_on_wire: u64,
    /// Bytes of [`Frame::Halo`] boundary traffic within `bytes_on_wire`.
    pub halo_bytes: u64,
    /// Boundary-exchange rounds driven across all points.
    pub exchange_rounds: usize,
    /// Points routed through the legacy master-side solve because a slice's
    /// refill was unfaithful at that `s`.
    pub fallback_points: usize,
    /// Workers lost (and re-sharded around) during the call.
    pub disconnects: usize,
    /// Total states across the slices of the final session.
    pub num_states: usize,
    /// Owned states per shard — sums to `num_states`; the largest entry is
    /// the per-worker memory ceiling `⌈N/shards⌉`.
    pub shard_states: Vec<usize>,
    /// Kernel entries stored per shard.
    pub shard_nnz: Vec<usize>,
    /// Restricted LST-pool sizes per shard.
    pub shard_dists: Vec<usize>,
    /// Injected or organic channel faults the solve absorbed (re-shards and
    /// mid-point resumes) without changing its values.
    pub recovered_faults: u64,
    /// Exchange rounds *not* redone thanks to mid-point snapshot resumes —
    /// each resume contributes the round it restarted from.
    pub resumed_rounds: u64,
}

/// Crash-recovery knobs for [`SliceFleet::solve_recoverable`] — all off by
/// default, in which case it behaves exactly like [`SliceFleet::solve`].
#[derive(Default)]
pub struct SolveRecovery<'a> {
    /// The measure's transform key, stamped into snapshots so a restarted
    /// run never resumes a different measure's iterate.
    pub key: String,
    /// Sidecar file for on-disk snapshots (`None` keeps them in memory only,
    /// which still covers lost-worker resume within one master process).
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Snapshot cadence in exchange rounds; `0` disables snapshots.
    pub snapshot_every: u64,
    /// A snapshot recovered from a previous (killed) run; consumed by the
    /// first point whose `(key, s)` matches bitwise.
    pub seed: Option<ShardSnapshot>,
    /// Called with `(s, value)` as each point completes — the incremental
    /// checkpoint hook.  An `Err` aborts the solve.
    #[allow(clippy::type_complexity)]
    pub on_value: Option<&'a mut dyn FnMut(Complex64, Complex64) -> io::Result<()>>,
}

/// One channel plus the number of response frames the master has asked of it
/// and not yet consumed — drained before any re-handshake so a torn session
/// can never leave a stale frame in front of a fresh `SliceMeta`.
struct Slot {
    channel: Box<dyn SliceChannel>,
    pending: usize,
}

impl Slot {
    fn send(&mut self, frame: &Frame, out: &mut ShardedOutcome) -> io::Result<()> {
        let bytes = self.channel.send(frame)?;
        out.messages += 1;
        out.bytes_on_wire += bytes;
        if matches!(frame, Frame::Halo { .. }) {
            out.halo_bytes += bytes;
        }
        if matches!(
            frame,
            Frame::SliceJob { .. }
                | Frame::SPoint { .. }
                | Frame::Halo { .. }
                | Frame::TermReq { .. }
                | Frame::Restore { .. }
        ) {
            self.pending += 1;
        }
        Ok(())
    }

    fn recv(&mut self, out: &mut ShardedOutcome) -> io::Result<Frame> {
        let (frame, bytes) = self.channel.recv()?;
        out.messages += 1;
        out.bytes_on_wire += bytes;
        self.pending = self.pending.saturating_sub(1);
        Ok(frame)
    }

    fn drain(&mut self, out: &mut ShardedOutcome) -> io::Result<()> {
        while self.pending > 0 {
            self.recv(out)?;
        }
        Ok(())
    }
}

/// The routing state of one handshaken session.
struct SessionState {
    shards: usize,
    num_states: usize,
    /// Per-shard halo subscriptions, as reported in the `SliceMeta` frames.
    needs: Vec<Vec<u32>>,
}

/// A worker lost mid-operation (recoverable by re-sharding) versus a
/// protocol or evaluation failure (not).
enum PointError {
    Channel(usize, io::Error),
    Hard(PipelineError),
}

fn transport(message: String) -> PipelineError {
    PipelineError::Transport { message }
}

/// The master driver over a set of slice workers.
///
/// A fleet is handed its channels once (loopback workers or accepted TCP
/// connections) and then runs any number of sharded sessions over them — one
/// [`solve`](SliceFleet::solve) call per passage spec.  Losing a worker
/// mid-run shrinks the fleet: the session is re-handshaken across the
/// survivors (block boundaries are a pure function of `N` and the shard
/// count, so any count yields the same values) and the in-flight point is
/// redone from scratch.
pub struct SliceFleet {
    slots: Vec<Slot>,
    fallback: Option<(String, CompiledModelSet)>,
}

impl SliceFleet {
    /// A fleet of `shards` in-process loopback workers.
    pub fn loopback(shards: usize) -> SliceFleet {
        SliceFleet::from_channels(
            (0..shards)
                .map(|_| Box::new(LoopbackSlice::new()) as Box<dyn SliceChannel>)
                .collect(),
        )
    }

    /// A loopback fleet whose `failing` worker dies after the master has
    /// received `after_responses` frames from it — the fault-injection
    /// harness for the requeue path.
    pub fn loopback_with_failure(
        shards: usize,
        failing: usize,
        after_responses: usize,
    ) -> SliceFleet {
        SliceFleet::from_channels(
            (0..shards)
                .map(|k| {
                    if k == failing {
                        Box::new(LoopbackSlice::failing_after(after_responses))
                            as Box<dyn SliceChannel>
                    } else {
                        Box::new(LoopbackSlice::new()) as Box<dyn SliceChannel>
                    }
                })
                .collect(),
        )
    }

    /// A fleet over explicit channels (e.g. accepted TCP worker connections).
    pub fn from_channels(channels: Vec<Box<dyn SliceChannel>>) -> SliceFleet {
        SliceFleet {
            slots: channels
                .into_iter()
                .map(|channel| Slot {
                    channel,
                    pending: 0,
                })
                .collect(),
            fallback: None,
        }
    }

    /// Workers currently alive in the fleet.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Evaluates `spec` at every `s`-point through one sharded session —
    /// bitwise identical to [`crate::transform::CompiledEvaluator::eval`] on
    /// the same spec, for any live worker count.
    ///
    /// `spec` must be a passage transform, optionally `CdfOf`-wrapped (the
    /// `/s` divisions are applied master-side after the fold, exactly as the
    /// compiled evaluator applies them).  Transient and analytic specs are
    /// rejected: their iterations are not row-sharded and stay master-side.
    pub fn solve(
        &mut self,
        spec: &TransformSpec,
        s_points: &[Complex64],
    ) -> Result<ShardedOutcome, PipelineError> {
        self.solve_recoverable(spec, s_points, &mut SolveRecovery::default())
    }

    /// [`solve`](SliceFleet::solve) with crash recovery: mid-point snapshots
    /// at a fixed round cadence (in memory, and — when a path is given — on
    /// disk), a seed snapshot from a previous killed run consumed by its
    /// matching point, and a per-value callback for incremental
    /// checkpointing.  Recovery never changes values: a resumed point holds
    /// bitwise the iterate the interrupted run held, so the fold converges to
    /// bitwise the fault-free answer.
    pub fn solve_recoverable(
        &mut self,
        spec: &TransformSpec,
        s_points: &[Complex64],
        recovery: &mut SolveRecovery<'_>,
    ) -> Result<ShardedOutcome, PipelineError> {
        let mut divisions = 0usize;
        let mut inner = spec;
        while let TransformSpec::CdfOf(next) = inner {
            divisions += 1;
            inner = next;
        }
        if !matches!(inner, TransformSpec::Passage { .. }) {
            return Err(transport(
                "sharded sessions evaluate passage transforms; transient and analytic \
                 measures are evaluated master-side"
                    .to_string(),
            ));
        }
        let spec_line = inner.encode().map_err(|e| transport(e.to_string()))?;
        let options = IterationOptions::default();
        let mut out = ShardedOutcome {
            values: Vec::with_capacity(s_points.len()),
            ..ShardedOutcome::default()
        };
        let key = recovery.key.clone();
        let path = recovery.snapshot_path.clone();
        let every = recovery.snapshot_every;
        let mut session = self.handshake(&spec_line, &mut out)?;
        let mut index = 0;
        // The in-memory snapshot of the in-flight point, refreshed at the
        // cadence.  A lost worker resumes the point from here (on the
        // re-sharded fleet — snapshots are shard-count independent) instead
        // of redoing it from round 0.
        let mut latest: Option<ShardSnapshot> = None;
        while index < s_points.len() {
            let s = s_points[index];
            if latest.is_none()
                && recovery.seed.as_ref().is_some_and(|seed| {
                    seed.key == key
                        && seed.s.re.to_bits() == s.re.to_bits()
                        && seed.s.im.to_bits() == s.im.to_bits()
                })
            {
                // The previous run died while solving exactly this point:
                // pick up its iterate instead of starting cold.
                latest = recovery.seed.take();
            }
            let resume = latest.clone();
            let mut fresh: Option<ShardSnapshot> = None;
            let mut sink = |mut snap: ShardSnapshot| -> io::Result<()> {
                snap.key = key.clone();
                if let Some(path) = &path {
                    snap.save(path)?;
                }
                fresh = Some(snap);
                Ok(())
            };
            let outcome = run_point(
                &mut self.slots,
                &session,
                index as u64,
                s,
                options,
                divisions,
                resume.as_ref(),
                every,
                &mut sink,
                &mut out,
            );
            if let Some(snap) = fresh {
                latest = Some(snap);
            }
            match outcome {
                Ok(Some(value)) => {
                    if let Some(on_value) = recovery.on_value.as_mut() {
                        on_value(s, value).map_err(PipelineError::Io)?;
                    }
                    out.values.push(value);
                    latest = None;
                    index += 1;
                }
                Ok(None) => {
                    // Some slice's refill was unfaithful at this `s`: the
                    // whole point goes through the same legacy local solve
                    // the unsharded workspace path falls back to.
                    let value = fallback_eval(&mut self.fallback, spec, s)?;
                    out.fallback_points += 1;
                    if let Some(on_value) = recovery.on_value.as_mut() {
                        on_value(s, value).map_err(PipelineError::Io)?;
                    }
                    out.values.push(value);
                    latest = None;
                    index += 1;
                }
                Err(PointError::Hard(e)) => return Err(e),
                Err(PointError::Channel(k, cause)) => {
                    self.slots.remove(k);
                    out.disconnects += 1;
                    out.recovered_faults += 1;
                    session = self.handshake(&spec_line, &mut out).map_err(|e| {
                        transport(format!("{e} (worker {k} lost mid-point: {cause})"))
                    })?;
                    // Redo the same point on the re-sharded fleet — resuming
                    // from `latest` if a snapshot of it exists.
                }
            }
        }
        self.end_session(&mut out);
        let _ = session;
        if let Some(path) = &path {
            // Clean completion: the sidecar must not seed a future run with a
            // point this run already finished (those live in the checkpoint
            // proper).
            let _ = ShardSnapshot::remove(path);
        }
        Ok(out)
    }

    /// Releases the fleet: a best-effort outer-level [`Frame::Done`] so TCP
    /// worker processes exit cleanly, then drops every channel.
    ///
    /// `Done` is sent *twice* per channel: if a worker is still inside a
    /// slice session (a solve that errored out mid-run never sent the
    /// session-level farewell), the first `Done` ends the session and the
    /// second is the outer-level farewell its reconnect loop exits on.  A
    /// worker already at the outer loop consumes the first and never reads
    /// the second — either way it sees an explicit farewell, which is the
    /// one signal a `--reconnect` worker will not redial after.
    pub fn release(&mut self) {
        for slot in &mut self.slots {
            let _ = slot.channel.send(&Frame::Done);
            let _ = slot.channel.send(&Frame::Done);
        }
        self.slots.clear();
    }

    /// Handshakes a session across the current fleet, shrinking it on
    /// channel failures until a full handshake lands or nobody is left.
    fn handshake(
        &mut self,
        spec_line: &str,
        out: &mut ShardedOutcome,
    ) -> Result<SessionState, PipelineError> {
        loop {
            if self.slots.is_empty() {
                return Err(transport(
                    "every slice worker was lost before the session could run".to_string(),
                ));
            }
            match try_handshake(&mut self.slots, spec_line, out) {
                Ok(session) => {
                    out.num_states = session.num_states;
                    return Ok(session);
                }
                Err(PointError::Channel(k, _)) => {
                    self.slots.remove(k);
                    out.disconnects += 1;
                }
                Err(PointError::Hard(e)) => return Err(e),
            }
        }
    }

    /// Ends the session on every live worker (they return to their outer
    /// frame loop, ready for the next `SliceJob`).  A worker lost here is
    /// simply dropped — there is no work left to requeue.
    fn end_session(&mut self, out: &mut ShardedOutcome) {
        let mut k = 0;
        while k < self.slots.len() {
            match self.slots[k].send(&Frame::Done, out) {
                Ok(()) => k += 1,
                Err(_) => {
                    self.slots.remove(k);
                    out.disconnects += 1;
                }
            }
        }
    }
}

/// One full `SliceJob` → `SliceMeta` → `SliceRoute` handshake across the
/// fleet, recording the memory-model numbers into `out`.
fn try_handshake(
    slots: &mut [Slot],
    spec_line: &str,
    out: &mut ShardedOutcome,
) -> Result<SessionState, PointError> {
    let shards = slots.len();
    // Flush responses still in flight from a torn session, so the metas read
    // below cannot be stale frames of the previous assignment.
    for (k, slot) in slots.iter_mut().enumerate() {
        slot.drain(out).map_err(|e| PointError::Channel(k, e))?;
    }
    for (k, slot) in slots.iter_mut().enumerate() {
        let job = Frame::SliceJob {
            version: WIRE_VERSION,
            worker: k,
            shards,
            spec: spec_line.to_string(),
        };
        slot.send(&job, out)
            .map_err(|e| PointError::Channel(k, e))?;
    }
    let mut states = Vec::with_capacity(shards);
    let mut nnz = Vec::with_capacity(shards);
    let mut dists = Vec::with_capacity(shards);
    let mut needs = Vec::with_capacity(shards);
    for (k, slot) in slots.iter_mut().enumerate() {
        match slot.recv(out).map_err(|e| PointError::Channel(k, e))? {
            Frame::SliceMeta {
                states: s,
                nnz: n,
                dists: d,
                need,
            } => {
                states.push(s);
                nnz.push(n);
                dists.push(d);
                needs.push(need);
            }
            Frame::Fatal { message } => {
                return Err(PointError::Hard(transport(format!(
                    "slice worker {k}: {message}"
                ))))
            }
            other => {
                return Err(PointError::Hard(transport(format!(
                    "expected a slice meta from worker {k}, got {other:?}"
                ))))
            }
        }
    }
    let num_states = states.iter().sum();
    let need_refs: Vec<&[u32]> = needs.iter().map(Vec::as_slice).collect();
    let plan = plan_exchange(num_states, shards, &need_refs);
    for (k, slot) in slots.iter_mut().enumerate() {
        let route = Frame::SliceRoute {
            rows: plan.exports(k).to_vec(),
        };
        slot.send(&route, out)
            .map_err(|e| PointError::Channel(k, e))?;
    }
    out.shard_states = states;
    out.shard_nnz = nnz;
    out.shard_dists = dists;
    Ok(SessionState {
        shards,
        num_states,
        needs,
    })
}

/// One shard's round state as received from the wire.
struct SliceState {
    faithful: bool,
    quiet: bool,
    targets: Vec<Complex64>,
    exports: Vec<(u32, Complex64)>,
}

fn recv_state(
    slot: &mut Slot,
    k: usize,
    id: u64,
    r: u64,
    out: &mut ShardedOutcome,
) -> Result<SliceState, PointError> {
    match slot.recv(out).map_err(|e| PointError::Channel(k, e))? {
        Frame::SState {
            id: got_id,
            r: got_r,
            faithful,
            quiet,
            targets,
            exports,
        } => {
            if got_id != id || got_r != r {
                return Err(PointError::Hard(transport(format!(
                    "slice worker {k} answered point {got_id} round {got_r}, \
                     expected point {id} round {r}"
                ))));
            }
            Ok(SliceState {
                faithful,
                quiet,
                targets,
                exports,
            })
        }
        Frame::Fatal { message } => Err(PointError::Hard(transport(format!(
            "slice worker {k}: {message}"
        )))),
        other => Err(PointError::Hard(transport(format!(
            "expected a slice state from worker {k}, got {other:?}"
        )))),
    }
}

/// The halo for shard `k`: its subscribed rows looked up in the owners'
/// published exports — identical to `ShardedSolver::exchange`.
fn assemble_halo(
    session: &SessionState,
    k: usize,
    exports: &[Vec<(u32, Complex64)>],
) -> Vec<(u32, Complex64)> {
    let mut entries = Vec::new();
    for &row in &session.needs[k] {
        let owner = owner_of(session.num_states, session.shards, row as usize);
        if let Ok(pos) = exports[owner].binary_search_by_key(&row, |&(r, _)| r) {
            entries.push(exports[owner][pos]);
        }
    }
    entries
}

/// Drives one `s`-point through the fleet.  `Ok(None)` means some slice's
/// refill was unfaithful and the caller must evaluate the point locally.
///
/// With `resume`, the point restarts mid-iteration: every shard gets a
/// [`Frame::Restore`] carrying the snapshot's global term vector (each loads
/// only its owned rows), the fold resumes from the checkpointed
/// `(total, quiet, last_delta)`, and iteration continues at `round + 1` —
/// producing bitwise the value an uninterrupted run produces.  With
/// `snapshot_every > 0`, a [`Frame::TermReq`] sweep (a pure read) captures
/// the iterate every that-many rounds and hands it to `snapshot`.
#[allow(clippy::too_many_arguments)]
fn run_point(
    slots: &mut [Slot],
    session: &SessionState,
    id: u64,
    s: Complex64,
    options: IterationOptions,
    divisions: usize,
    resume: Option<&ShardSnapshot>,
    snapshot_every: u64,
    snapshot: &mut dyn FnMut(ShardSnapshot) -> io::Result<()>,
    out: &mut ShardedOutcome,
) -> Result<Option<Complex64>, PointError> {
    let (mut fold, mut exports, start_round) = match resume {
        None => {
            for (k, slot) in slots.iter_mut().enumerate() {
                slot.send(&Frame::SPoint { id, s }, out)
                    .map_err(|e| PointError::Channel(k, e))?;
            }
            let mut faithful = true;
            let mut initial = Complex64::ZERO;
            let mut exports: Vec<Vec<(u32, Complex64)>> = vec![Vec::new(); session.shards];
            for (k, slot) in slots.iter_mut().enumerate() {
                let state = recv_state(slot, k, id, 0, out)?;
                faithful &= state.faithful;
                // Shard order is ascending state order: this accumulation is
                // the exact fold sequence of the unsharded solver's init.
                for value in &state.targets {
                    initial += *value;
                }
                exports[k] = state.exports;
            }
            if !faithful {
                return Ok(None);
            }
            (ConvergenceFold::new(options, initial), exports, 0usize)
        }
        Some(snap) => {
            for (k, slot) in slots.iter_mut().enumerate() {
                slot.send(
                    &Frame::Restore {
                        id,
                        r: snap.round,
                        s,
                        entries: snap.entries.clone(),
                    },
                    out,
                )
                .map_err(|e| PointError::Channel(k, e))?;
            }
            let mut exports: Vec<Vec<(u32, Complex64)>> = vec![Vec::new(); session.shards];
            for (k, slot) in slots.iter_mut().enumerate() {
                let state = recv_state(slot, k, id, snap.round, out)?;
                if !state.faithful {
                    return Ok(None);
                }
                // Targets and quiet flags of the restore-ack are ignored:
                // the fold's state comes from the snapshot, and the ack's
                // exports seed the next round's halo.
                exports[k] = state.exports;
            }
            out.resumed_rounds += snap.round;
            out.recovered_faults += 1;
            (
                ConvergenceFold::resume(options, snap.total, snap.quiet as usize, snap.last_delta),
                exports,
                snap.round as usize,
            )
        }
    };
    for r in (start_round + 1)..=options.max_iterations {
        out.exchange_rounds += 1;
        for (k, slot) in slots.iter_mut().enumerate() {
            let entries = assemble_halo(session, k, &exports);
            slot.send(
                &Frame::Halo {
                    id,
                    r: r as u64,
                    entries,
                },
                out,
            )
            .map_err(|e| PointError::Channel(k, e))?;
        }
        let mut delta = Complex64::ZERO;
        let mut quiet = true;
        for (k, slot) in slots.iter_mut().enumerate() {
            let state = recv_state(slot, k, id, r as u64, out)?;
            quiet &= state.quiet;
            for value in &state.targets {
                delta += *value;
            }
            exports[k] = state.exports;
        }
        if let FoldStatus::Converged(total) = fold.push(delta, quiet) {
            let mut value = total;
            for _ in 0..divisions {
                value /= s;
            }
            return Ok(Some(value));
        }
        if snapshot_every > 0 && (r as u64).is_multiple_of(snapshot_every) {
            // Capture the iterate *after* this round's fold: a TermReq sweep
            // is a pure read on every shard, so the snapshot cadence cannot
            // perturb the values.
            for (k, slot) in slots.iter_mut().enumerate() {
                slot.send(&Frame::TermReq { id, r: r as u64 }, out)
                    .map_err(|e| PointError::Channel(k, e))?;
            }
            let mut entries = Vec::new();
            for (k, slot) in slots.iter_mut().enumerate() {
                match slot.recv(out).map_err(|e| PointError::Channel(k, e))? {
                    Frame::Term {
                        id: got_id,
                        r: got_r,
                        entries: shard_entries,
                    } if got_id == id && got_r == r as u64 => {
                        // Shards own disjoint ascending row blocks, so
                        // extending in shard order keeps rows ascending.
                        entries.extend(shard_entries);
                    }
                    Frame::Fatal { message } => {
                        return Err(PointError::Hard(transport(format!(
                            "slice worker {k}: {message}"
                        ))))
                    }
                    other => {
                        return Err(PointError::Hard(transport(format!(
                            "expected a term snapshot from worker {k}, got {other:?}"
                        ))))
                    }
                }
            }
            snapshot(ShardSnapshot {
                key: String::new(), // stamped by the caller
                s,
                round: r as u64,
                total: fold.total(),
                quiet: fold.quiet_rounds() as u64,
                last_delta: fold.last_delta(),
                entries,
            })
            .map_err(|e| PointError::Hard(PipelineError::Io(e)))?;
        }
    }
    Err(PointError::Hard(PipelineError::Evaluation {
        s,
        message: format!(
            "no convergence after {} iterations (last delta {:.3e})",
            options.max_iterations,
            fold.last_delta()
        ),
    }))
}

/// The legacy master-side evaluation of an unfaithful point: the full spec
/// (including any `CdfOf` wrapping) through a compiled evaluator, which takes
/// the identical legacy branch the unsharded workspace path takes.
fn fallback_eval(
    cache: &mut Option<(String, CompiledModelSet)>,
    spec: &TransformSpec,
    s: Complex64,
) -> Result<Complex64, PipelineError> {
    let key = spec.encode().map_err(|e| transport(e.to_string()))?;
    if cache.as_ref().is_none_or(|(k, _)| *k != key) {
        let set = CompiledModelSet::compile(std::slice::from_ref(spec)).map_err(transport)?;
        *cache = Some((key, set));
    }
    let set = &cache.as_ref().expect("just compiled").1;
    let evaluator = set.evaluator(0).map_err(transport)?;
    evaluator
        .eval(s)
        .map_err(|message| PipelineError::Evaluation { s, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::ModelSpec;
    use smp_core::query::TargetSpec;

    fn voting_spec() -> TransformSpec {
        TransformSpec::passage(
            ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            TargetSpec::parse("p2>=2").unwrap(),
        )
    }

    fn points() -> Vec<Complex64> {
        vec![
            Complex64::new(0.9, 0.0),
            Complex64::new(0.4, 1.3),
            Complex64::new(1.7, -0.8),
            Complex64::new(0.05, 2.5),
        ]
    }

    fn reference(spec: &TransformSpec, points: &[Complex64]) -> Vec<Complex64> {
        let set = CompiledModelSet::compile(std::slice::from_ref(spec)).unwrap();
        let evaluator = set.evaluator(0).unwrap();
        points.iter().map(|&s| evaluator.eval(s).unwrap()).collect()
    }

    #[test]
    fn loopback_fleet_matches_the_local_evaluator_bitwise_for_any_shard_count() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        for shards in 1..=4 {
            let mut fleet = SliceFleet::loopback(shards);
            let out = fleet.solve(&spec, &points()).unwrap();
            assert_eq!(out.values, expected, "{shards} shards");
            // The memory claim: the slices partition the full state space and
            // the largest slice is the ⌈N/shards⌉ block.
            assert_eq!(out.shard_states.len(), shards);
            assert_eq!(out.shard_states.iter().sum::<usize>(), out.num_states);
            let ceiling = out.num_states.div_ceil(shards);
            assert!(out.shard_states.iter().all(|&s| s <= ceiling));
            assert_eq!(out.disconnects, 0);
            assert!(out.messages > 0 && out.bytes_on_wire > 0);
            if shards > 1 {
                assert!(out.halo_bytes > 0, "boundary exchange must ship bytes");
            }
            assert!(out.exchange_rounds > 0);
        }
    }

    #[test]
    fn cdf_wrapping_applies_the_s_divisions_master_side() {
        let spec = TransformSpec::CdfOf(Box::new(voting_spec()));
        let expected = reference(&spec, &points());
        let mut fleet = SliceFleet::loopback(3);
        let out = fleet.solve(&spec, &points()).unwrap();
        assert_eq!(out.values, expected);
    }

    #[test]
    fn killed_worker_is_requeued_onto_survivors_bitwise() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        // The failing worker dies mid-run (after the master consumed its
        // meta plus a few round states); the point in flight is redone on
        // the re-sharded survivors.
        let mut fleet = SliceFleet::loopback_with_failure(3, 1, 7);
        let out = fleet.solve(&spec, &points()).unwrap();
        assert_eq!(out.values, expected);
        assert_eq!(out.disconnects, 1);
        assert_eq!(fleet.shards(), 2);
        assert_eq!(out.shard_states.len(), 2, "memory model tracks survivors");
    }

    #[test]
    fn fleet_sessions_are_reusable_across_solves() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        let mut fleet = SliceFleet::loopback(2);
        let first = fleet.solve(&spec, &points()).unwrap();
        let second = fleet.solve(&spec, &points()).unwrap();
        assert_eq!(first.values, expected);
        assert_eq!(second.values, expected);
        assert_eq!(fleet.shards(), 2);
    }

    #[test]
    fn non_passage_specs_are_rejected() {
        let spec = TransformSpec::transient(
            ModelSpec::Voting {
                voters: 3,
                polling: 1,
                central: 1,
            },
            TargetSpec::parse("p2>=2").unwrap(),
        );
        let mut fleet = SliceFleet::loopback(2);
        match fleet.solve(&spec, &points()) {
            Err(PipelineError::Transport { message }) => {
                assert!(message.contains("passage"), "{message}");
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_cadence_never_perturbs_values_and_cleans_up_its_sidecar() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("smp-shard-resume-{}.shard", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // TermReq sweeps are pure reads: any cadence yields the same bits.
        for every in [1u64, 2, 5] {
            let mut fleet = SliceFleet::loopback(3);
            let mut recovery = SolveRecovery {
                key: "passage".to_string(),
                snapshot_path: Some(path.clone()),
                snapshot_every: every,
                ..SolveRecovery::default()
            };
            let out = fleet
                .solve_recoverable(&spec, &points(), &mut recovery)
                .unwrap();
            assert_eq!(out.values, expected, "cadence {every}");
            // Clean completion removes the sidecar.
            assert!(ShardSnapshot::load(&path).unwrap().is_none());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_mid_point_resume_matches_bitwise_on_a_different_shard_count() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("smp-shard-seed-{}.shard", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mid: Option<ShardSnapshot>;
        {
            // Kill the run after the second point: the sidecar then holds a
            // snapshot of point 2 (if its iteration crossed the cadence).
            let mut fleet = SliceFleet::loopback(3);
            let mut seen = 0usize;
            let mut on_value = |_s: Complex64, _v: Complex64| -> io::Result<()> {
                seen += 1;
                if seen == 3 {
                    return Err(io::Error::other("simulated master kill"));
                }
                Ok(())
            };
            let mut recovery = SolveRecovery {
                key: "passage".to_string(),
                snapshot_path: Some(path.clone()),
                snapshot_every: 2,
                on_value: Some(&mut on_value),
                ..SolveRecovery::default()
            };
            let err = fleet
                .solve_recoverable(&spec, &points(), &mut recovery)
                .unwrap_err();
            assert!(matches!(err, PipelineError::Io(_)), "{err:?}");
            mid = ShardSnapshot::load(&path).unwrap();
        }
        let seed = mid.expect("the killed run left a mid-point snapshot behind");
        assert!(seed.round > 0 && !seed.entries.is_empty());
        // Resume on a *different* shard count, seeding the snapshot — the
        // values must be bitwise identical and the resume must skip rounds.
        let mut fleet = SliceFleet::loopback(2);
        let mut recovery = SolveRecovery {
            key: "passage".to_string(),
            snapshot_path: Some(path.clone()),
            snapshot_every: 2,
            seed: Some(seed.clone()),
            ..SolveRecovery::default()
        };
        let out = fleet
            .solve_recoverable(&spec, &points(), &mut recovery)
            .unwrap();
        assert_eq!(out.values, expected, "resume must not change any value");
        assert_eq!(out.resumed_rounds, seed.round, "the resume skipped rounds");
        assert!(out.recovered_faults > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lost_worker_resumes_from_the_in_memory_snapshot() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        // The failing worker dies well into the solve; with a snapshot
        // cadence the redone point resumes mid-iteration instead of cold.
        let mut fleet = SliceFleet::loopback_with_failure(3, 1, 9);
        let mut recovery = SolveRecovery {
            key: "passage".to_string(),
            snapshot_every: 2,
            ..SolveRecovery::default()
        };
        let out = fleet
            .solve_recoverable(&spec, &points(), &mut recovery)
            .unwrap();
        assert_eq!(out.values, expected);
        assert_eq!(out.disconnects, 1);
        assert!(out.recovered_faults >= 1);
        assert_eq!(fleet.shards(), 2);
    }

    #[test]
    fn faulty_channels_recover_to_bitwise_identical_values() {
        let spec = voting_spec();
        let expected = reference(&spec, &points());
        use crate::transport::{FaultKind, FaultPlan};
        let schedules: Vec<FaultPlan> = vec![
            FaultPlan::scripted([(11, FaultKind::DropFrame)]),
            FaultPlan::scripted([(7, FaultKind::CorruptByte { xor: 0x40 })]),
            FaultPlan::scripted([(19, FaultKind::Disconnect)]),
            FaultPlan::scripted([
                (5, FaultKind::CorruptByte { xor: 0x01 }),
                (23, FaultKind::DropFrame),
            ]),
            // A background schedule needs a budget under the shard count to
            // be survivable: each fault can cost the fleet one worker.
            FaultPlan::seeded(0xfeed_beef, 37).with_budget(3),
        ];
        for plan in schedules {
            let shared = Arc::new(std::sync::Mutex::new(plan));
            let channels: Vec<Box<dyn SliceChannel>> = (0..4)
                .map(|_| {
                    Box::new(FaultyChannel::new(
                        Box::new(LoopbackSlice::new()),
                        Arc::clone(&shared),
                    )) as Box<dyn SliceChannel>
                })
                .collect();
            let mut fleet = SliceFleet::from_channels(channels);
            let mut recovery = SolveRecovery {
                key: "passage".to_string(),
                snapshot_every: 2,
                ..SolveRecovery::default()
            };
            let out = fleet
                .solve_recoverable(&spec, &points(), &mut recovery)
                .unwrap();
            let injected = shared.lock().unwrap().injected();
            assert_eq!(
                out.values, expected,
                "values must be bitwise identical under {injected} injected fault(s)"
            );
            if injected > 0 {
                assert!(out.disconnects > 0, "faults must flow through recovery");
            }
        }
    }

    #[test]
    fn worker_session_reports_its_slice_meta() {
        let spec_line = voting_spec().encode().unwrap();
        let session = SliceWorkerSession::new(&spec_line, 2, 0).unwrap();
        let Frame::SliceMeta { states, nnz, .. } = session.meta() else {
            panic!("meta must be a SliceMeta frame");
        };
        assert!(states > 0 && nnz > 0);
        // Out-of-range shard assignments fail loudly.
        assert!(SliceWorkerSession::new(&spec_line, 2, 5).is_err());
        assert!(SliceWorkerSession::new("garbage", 2, 0).is_err());
    }
}
