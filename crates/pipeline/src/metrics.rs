//! Scalability measurement (Table 2 of the paper).
//!
//! The paper reports time, speedup and efficiency of the analysis pipeline for 1, 8,
//! 16 and 32 slave processors solving a passage time at 5 `t`-points on system 1.
//! [`run_scalability_sweep`] reproduces the measurement protocol: the same
//! evaluation plan is solved repeatedly with an increasing worker count, and each
//! run's wall-clock time is reported relative to the single-worker baseline.

use crate::master::{DistributedPipeline, PipelineError, PipelineOptions};
use smp_laplace::InversionMethod;
use smp_numeric::Complex64;
use std::time::Duration;

/// One row of a Table-2-style scalability report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityRow {
    /// Number of worker threads used.
    pub workers: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Speedup relative to the single-worker baseline.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / workers`).
    pub efficiency: f64,
    /// Number of `s`-point evaluations performed.
    pub evaluations: usize,
}

impl ScalabilityRow {
    /// Formats the row like the paper's table: `workers  time  speedup  efficiency`.
    pub fn formatted(&self) -> String {
        format!(
            "{:>6}  {:>10.3}  {:>8.2}  {:>10.3}",
            self.workers,
            self.elapsed.as_secs_f64(),
            self.speedup,
            self.efficiency
        )
    }
}

/// Runs the same analysis with each worker count in `worker_counts` and reports
/// time, speedup and efficiency against the first entry (conventionally 1 worker).
///
/// `simulated_latency` optionally adds a per-result delay representing the network
/// round-trip of the original cluster deployment.
pub fn run_scalability_sweep<F>(
    method: InversionMethod,
    transform: F,
    t_points: &[f64],
    worker_counts: &[usize],
    simulated_latency: Option<Duration>,
) -> Result<Vec<ScalabilityRow>, PipelineError>
where
    F: Fn(Complex64) -> Result<Complex64, String> + Sync,
{
    assert!(
        !worker_counts.is_empty(),
        "at least one worker count is required"
    );
    let mut rows = Vec::with_capacity(worker_counts.len());
    let mut baseline: Option<Duration> = None;
    for &workers in worker_counts {
        let pipeline = DistributedPipeline::new(
            method.clone(),
            PipelineOptions {
                workers,
                simulated_latency,
                // One point per message, as in the paper's protocol: automatic
                // chunk sizing depends on the worker count, which would make the
                // per-message latency cost differ between rows and corrupt the
                // speedup/efficiency comparison.
                chunk_size: 1,
                ..Default::default()
            },
        );
        let result = pipeline.run(&transform, t_points)?;
        let elapsed = result.elapsed;
        let base = *baseline.get_or_insert(elapsed);
        let speedup = base.as_secs_f64() / elapsed.as_secs_f64().max(1e-12);
        rows.push(ScalabilityRow {
            workers,
            elapsed,
            speedup,
            efficiency: speedup / workers as f64,
            evaluations: result.evaluations,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_distributions::LaplaceTransform as _;

    #[test]
    fn sweep_reports_rows_for_every_worker_count() {
        // A deliberately slow evaluator so that parallelism has something to win.
        let d = Dist::erlang(1.0, 3);
        let evaluator = move |s: Complex64| -> Result<Complex64, String> {
            std::thread::sleep(Duration::from_micros(300));
            Ok(d.lst(s))
        };
        let ts: Vec<f64> = (1..=5).map(|k| k as f64 * 0.7).collect();
        let rows =
            run_scalability_sweep(InversionMethod::euler(), evaluator, &ts, &[1, 2, 4], None)
                .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].workers, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!((rows[0].efficiency - 1.0).abs() < 1e-9);
        // All rows evaluate the same number of s-points.
        assert!(rows.iter().all(|r| r.evaluations == rows[0].evaluations));
        // With a genuinely parallel workload, 4 workers should beat 1 worker.
        assert!(
            rows[2].elapsed < rows[0].elapsed,
            "4 workers ({:?}) not faster than 1 ({:?})",
            rows[2].elapsed,
            rows[0].elapsed
        );
        assert!(rows[2].speedup > 1.0);
        // The formatted row carries all four columns.
        let text = rows[1].formatted();
        assert_eq!(text.split_whitespace().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker count")]
    fn empty_worker_counts_rejected() {
        let _ = run_scalability_sweep(InversionMethod::euler(), |s| Ok(s), &[1.0], &[], None);
    }
}
