//! Scalability measurement (Table 2 of the paper).
//!
//! The paper reports time, speedup and efficiency of the analysis pipeline for 1, 8,
//! 16 and 32 slave processors solving a passage time at 5 `t`-points on system 1.
//! [`run_scalability_sweep`] reproduces the measurement protocol: the same
//! evaluation plan is solved repeatedly with an increasing worker count, and each
//! run's wall-clock time is reported relative to the single-worker baseline.

use crate::batch::{BatchJob, MeasureSpec};
use crate::cache::LEGACY_MEASURE_KEY;
use crate::master::{DistributedPipeline, PipelineError, PipelineOptions};
use crate::transport::{InProcess, SimulatedLatency, Transport};
use smp_laplace::InversionMethod;
use smp_numeric::Complex64;
use std::time::Duration;

/// One row of a Table-2-style scalability report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityRow {
    /// Number of worker threads used.
    pub workers: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Speedup relative to the single-worker baseline.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / workers`).
    pub efficiency: f64,
    /// Number of `s`-point evaluations performed.
    pub evaluations: usize,
    /// Name of the transport backend the row ran on.
    pub backend: &'static str,
    /// Protocol messages exchanged between master and workers.
    pub messages: usize,
    /// Bytes shipped (or, for the simulated-latency backend, bytes that
    /// *would* be shipped) over the wire — the protocol overhead column.
    pub bytes_on_wire: u64,
}

impl ScalabilityRow {
    /// Formats the row like the paper's table, extended with the protocol
    /// overhead columns:
    /// `workers  time  speedup  efficiency  messages  wire-bytes`.
    pub fn formatted(&self) -> String {
        format!(
            "{:>6}  {:>10.3}  {:>8.2}  {:>10.3}  {:>8}  {:>10}",
            self.workers,
            self.elapsed.as_secs_f64(),
            self.speedup,
            self.efficiency,
            self.messages,
            self.bytes_on_wire
        )
    }
}

/// Runs the same analysis with each worker count in `worker_counts` and reports
/// time, speedup and efficiency against the first entry (conventionally 1 worker).
///
/// `simulated_latency` selects the backend: `None` runs on [`InProcess`],
/// `Some(d)` runs on [`SimulatedLatency`] — the same per-message delay the
/// old ad-hoc sleep injection produced, but routed through the transport
/// layer, so the row also reports the messages and bytes a network deployment
/// would have exchanged.
pub fn run_scalability_sweep<F>(
    method: InversionMethod,
    transform: F,
    t_points: &[f64],
    worker_counts: &[usize],
    simulated_latency: Option<Duration>,
) -> Result<Vec<ScalabilityRow>, PipelineError>
where
    F: Fn(Complex64) -> Result<Complex64, String> + Sync,
{
    assert!(
        !worker_counts.is_empty(),
        "at least one worker count is required"
    );
    let mut rows = Vec::with_capacity(worker_counts.len());
    let mut baseline: Option<Duration> = None;
    for &workers in worker_counts {
        let transport: Box<dyn Transport> = match simulated_latency {
            Some(latency) => Box::new(SimulatedLatency::new(workers, latency)),
            None => Box::new(InProcess::new(workers)),
        };
        // One point per message, as in the paper's protocol: automatic chunk
        // sizing depends on the worker count, which would make the per-message
        // latency cost differ between rows and corrupt the speedup/efficiency
        // comparison.
        let pipeline = DistributedPipeline::new(
            method.clone(),
            PipelineOptions {
                workers,
                chunk_size: 1,
                ..Default::default()
            },
        );
        let job = BatchJob::new().with_measure(
            MeasureSpec::density("scalability", t_points, &transform)
                .with_transform_key(LEGACY_MEASURE_KEY),
        );
        let result = pipeline.execute(job, transport.as_ref())?;
        let elapsed = result.elapsed;
        let base = *baseline.get_or_insert(elapsed);
        let speedup = base.as_secs_f64() / elapsed.as_secs_f64().max(1e-12);
        rows.push(ScalabilityRow {
            workers,
            elapsed,
            speedup,
            efficiency: speedup / workers as f64,
            evaluations: result.evaluations,
            backend: result.backend,
            messages: result.messages,
            bytes_on_wire: result.bytes_on_wire,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;

    #[test]
    fn sweep_reports_rows_for_every_worker_count() {
        // A deliberately slow evaluator so that parallelism has something to win.
        let d = Dist::erlang(1.0, 3);
        let evaluator = move |s: Complex64| -> Result<Complex64, String> {
            std::thread::sleep(Duration::from_micros(300));
            Ok(d.lst(s))
        };
        let ts: Vec<f64> = (1..=5).map(|k| k as f64 * 0.7).collect();
        let rows =
            run_scalability_sweep(InversionMethod::euler(), evaluator, &ts, &[1, 2, 4], None)
                .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].workers, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!((rows[0].efficiency - 1.0).abs() < 1e-9);
        // All rows evaluate the same number of s-points.
        assert!(rows.iter().all(|r| r.evaluations == rows[0].evaluations));
        // With a genuinely parallel workload, 4 workers should beat 1 worker.
        assert!(
            rows[2].elapsed < rows[0].elapsed,
            "4 workers ({:?}) not faster than 1 ({:?})",
            rows[2].elapsed,
            rows[0].elapsed
        );
        assert!(rows[2].speedup > 1.0);
        // In-process rows ship no bytes and name their backend.
        assert!(rows.iter().all(|r| r.backend == "in-process"));
        assert!(rows.iter().all(|r| r.bytes_on_wire == 0));
        assert!(
            rows.iter().all(|r| r.messages == r.evaluations),
            "chunk size 1: one result message per point"
        );
        // The formatted row carries all six columns.
        let text = rows[1].formatted();
        assert_eq!(text.split_whitespace().count(), 6);
    }

    #[test]
    fn simulated_latency_rows_report_protocol_overhead() {
        let d = Dist::exponential(1.0);
        let evaluator = move |s: Complex64| -> Result<Complex64, String> { Ok(d.lst(s)) };
        let ts = [1.0, 2.0];
        let rows = run_scalability_sweep(
            InversionMethod::euler(),
            evaluator,
            &ts,
            &[1, 2],
            Some(Duration::from_micros(200)),
        )
        .unwrap();
        for row in &rows {
            assert_eq!(row.backend, "sim-latency");
            assert!(row.bytes_on_wire > 0, "latency rows account wire bytes");
            // Chunk size 1, counted like the TCP backend: one request and
            // one result frame per point (this closure-based sweep has no
            // job frame to ship).
            assert_eq!(row.messages, 2 * row.evaluations);
        }
        // The per-chunk protocol work is identical across worker counts:
        // same points, same chunk size, so the overhead column is comparable
        // between rows.
        assert_eq!(rows[0].bytes_on_wire, rows[1].bytes_on_wire);
    }

    #[test]
    #[should_panic(expected = "at least one worker count")]
    fn empty_worker_counts_rejected() {
        let _ = run_scalability_sweep(InversionMethod::euler(), Ok, &[1.0], &[], None);
    }
}
