//! Serializable transform specifications — *descriptions* of evaluators.
//!
//! The closure-based pipeline API (`Fn(Complex64) -> Result<Complex64, String>`)
//! cannot cross a process boundary, so everything a remote worker needs to
//! rebuild an evaluator is captured in a [`TransformSpec`]: which model (a
//! built-in voting configuration or raw extended-DNAmaca source), which target
//! markings (a token-count predicate), and what to do with the transform (raw
//! passage density, the `/s` CDF trick, a transient row, or a named analytic
//! distribution's LST for testing and calibration).
//!
//! A spec has a **canonical single-line wire encoding**
//! ([`TransformSpec::encode`] / [`TransformSpec::decode`]) built from the same
//! field primitives as the checkpoint format, and a **transform key**
//! ([`TransformSpec::transform_key`]) that folds the model source's FNV-1a
//! fingerprint in, so cache shards and checkpoint records written against one
//! model can never be replayed against another.
//!
//! Workers turn a spec back into a running evaluator in two steps that mirror
//! the life cycle of the paper's slave processors: [`CompiledModelSet::compile`]
//! parses the model and explores its state space once per *distinct* model
//! (several measures over one model share the exploration), and
//! [`CompiledModelSet::evaluator`] builds the per-measure solver borrowing that
//! shared state space.

use crate::wire::{decode_str, encode_finite_f64, encode_str, WireError};
use smp_core::transient::TransientSolver;
use smp_core::PassageTimeSolver;
use smp_distributions::Dist;
use smp_numeric::Complex64;
use smp_smspn::{Marking, StateSpace};

/// Wire-format version of the spec encoding (first field of every spec line).
pub const SPEC_VERSION: u32 = 1;

fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed {
        message: message.into(),
    }
}

/// A 64-bit FNV-1a fingerprint of a model's source text, rendered as 16 hex
/// digits.  Folded into every transform key so that a checkpoint file reused
/// with a different (or since-edited) model misses the cache instead of
/// feeding it stale transform values.
pub fn model_fingerprint(source: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in source.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

// ---------------------------------------------------------------------------
// Model specification
// ---------------------------------------------------------------------------

/// Where the model a transform is evaluated over comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// The built-in voting model for `(voters, polling units, central units)`
    /// — the paper's case study, generated on the worker.
    Voting {
        /// Number of voters `CC`.
        voters: u32,
        /// Number of polling units `MM`.
        polling: u32,
        /// Number of central voting units `NN`.
        central: u32,
    },
    /// Raw extended-DNAmaca model source, shipped verbatim.
    Dnamaca(String),
}

impl ModelSpec {
    /// The extended-DNAmaca source text of the model (generated for
    /// [`ModelSpec::Voting`]).
    pub fn source(&self) -> String {
        match self {
            ModelSpec::Voting {
                voters,
                polling,
                central,
            } => smp_voting::spec::dnamaca_source(smp_voting::VotingConfig::new(
                *voters, *polling, *central,
            )),
            ModelSpec::Dnamaca(source) => source.clone(),
        }
    }

    /// The FNV-1a fingerprint of [`ModelSpec::source`].
    pub fn fingerprint(&self) -> String {
        model_fingerprint(&self.source())
    }

    /// Encodes the model as one wire-format field (the `model=` value of a
    /// spec line).  Also used verbatim by the query protocol's model line.
    pub fn encode(&self) -> String {
        match self {
            ModelSpec::Voting {
                voters,
                polling,
                central,
            } => format!("voting:{voters},{polling},{central}"),
            ModelSpec::Dnamaca(source) => format!("dnamaca:{}", encode_str(source)),
        }
    }

    /// Decodes a wire-format model field back into a spec.
    pub fn decode(field: &str) -> Result<ModelSpec, WireError> {
        if let Some(rest) = field.strip_prefix("voting:") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return Err(malformed(format!("voting model needs CC,MM,NN: '{rest}'")));
            }
            let mut numbers = [0u32; 3];
            for (slot, part) in numbers.iter_mut().zip(&parts) {
                *slot = part
                    .parse()
                    .map_err(|_| malformed(format!("bad voting component '{part}'")))?;
            }
            return Ok(ModelSpec::Voting {
                voters: numbers[0],
                polling: numbers[1],
                central: numbers[2],
            });
        }
        if let Some(rest) = field.strip_prefix("dnamaca:") {
            let source =
                decode_str(rest).ok_or_else(|| malformed("bad DNAmaca source encoding"))?;
            return Ok(ModelSpec::Dnamaca(source));
        }
        Err(malformed(format!("unknown model spec '{field}'")))
    }
}

// ---------------------------------------------------------------------------
// Target specification
// ---------------------------------------------------------------------------

// The predicate *syntax* (place, operator, count, parsing, matching) moved
// into the typed query layer in `smp-core` so that `MeasureRequest`s can carry
// targets without depending on this crate; re-exported here under the names
// this crate has always used.  The state-space *resolution* below is
// pipeline-side: it needs an explored `StateSpace`.
pub use smp_core::query::{CompareOp, TargetSpec};

/// Pipeline-side extension of [`TargetSpec`]: resolving the predicate against
/// an explored state space.  (The syntax type lives in `smp_core::query`; a
/// trait is how this crate keeps `targets.resolve(&net, &space)` callable.)
pub trait ResolveTarget {
    /// Resolves the predicate against an explored state space, returning the
    /// indices of the matching markings.
    fn resolve(
        &self,
        net: &smp_smspn::SmSpn,
        space: &StateSpace,
    ) -> Result<Vec<usize>, TargetResolveError>;
}

impl ResolveTarget for TargetSpec {
    fn resolve(
        &self,
        net: &smp_smspn::SmSpn,
        space: &StateSpace,
    ) -> Result<Vec<usize>, TargetResolveError> {
        let place =
            net.place_index(&self.place)
                .ok_or_else(|| TargetResolveError::UnknownPlace {
                    place: self.place.clone(),
                })?;
        let targets = space.states_where(|m: &Marking| self.matches(m.get(place)));
        if targets.is_empty() {
            return Err(TargetResolveError::NoMatchingMarking {
                predicate: self.to_string(),
            });
        }
        Ok(targets)
    }
}

/// Why a [`TargetSpec`] failed to resolve against a state space.  A typed
/// error, so callers can distinguish a model problem (unknown place) from an
/// analysis problem (predicate matches nothing) without matching on message
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetResolveError {
    /// The predicate names a place the model does not have.
    UnknownPlace {
        /// The offending place name.
        place: String,
    },
    /// The predicate is well-formed but matches no reachable marking.
    NoMatchingMarking {
        /// The predicate's source form.
        predicate: String,
    },
}

impl std::fmt::Display for TargetResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetResolveError::UnknownPlace { place } => {
                write!(f, "place '{place}' does not exist in the model")
            }
            TargetResolveError::NoMatchingMarking { predicate } => {
                write!(f, "predicate {predicate} matches no reachable marking")
            }
        }
    }
}

impl std::error::Error for TargetResolveError {}

// ---------------------------------------------------------------------------
// Analytic distribution specification
// ---------------------------------------------------------------------------

/// A named analytic distribution whose Laplace–Stieltjes transform serves as
/// the evaluator — exact references for calibrating a distributed deployment
/// without shipping a model.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum DistSpec {
    Exponential { rate: f64 },
    Erlang { rate: f64, phases: u32 },
    Uniform { lower: f64, upper: f64 },
    Deterministic { value: f64 },
    Weibull { shape: f64, scale: f64 },
}

impl DistSpec {
    /// Builds the concrete distribution.
    pub fn to_dist(&self) -> Dist {
        match *self {
            DistSpec::Exponential { rate } => Dist::exponential(rate),
            DistSpec::Erlang { rate, phases } => Dist::erlang(rate, phases),
            DistSpec::Uniform { lower, upper } => Dist::uniform(lower, upper),
            DistSpec::Deterministic { value } => Dist::deterministic(value),
            DistSpec::Weibull { shape, scale } => Dist::weibull(shape, scale),
        }
    }

    fn encode(&self) -> Result<String, WireError> {
        let f = |v: f64| encode_finite_f64(v, "distribution parameter");
        Ok(match *self {
            DistSpec::Exponential { rate } => format!("exponential:{}", f(rate)?),
            DistSpec::Erlang { rate, phases } => format!("erlang:{}:{phases}", f(rate)?),
            DistSpec::Uniform { lower, upper } => format!("uniform:{}:{}", f(lower)?, f(upper)?),
            DistSpec::Deterministic { value } => format!("deterministic:{}", f(value)?),
            DistSpec::Weibull { shape, scale } => format!("weibull:{}:{}", f(shape)?, f(scale)?),
        })
    }

    fn decode(field: &str) -> Result<DistSpec, WireError> {
        let mut parts = field.split(':');
        let name = parts.next().unwrap_or("");
        let mut f64_arg = |what: &'static str| -> Result<f64, WireError> {
            let part = parts
                .next()
                .ok_or_else(|| malformed(format!("distribution missing parameter '{what}'")))?;
            crate::wire::decode_finite_f64(part, "distribution parameter")
        };
        let spec = match name {
            "exponential" => DistSpec::Exponential {
                rate: f64_arg("rate")?,
            },
            "erlang" => {
                let rate = f64_arg("rate")?;
                let phases = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| malformed("erlang needs an integer phase count"))?;
                DistSpec::Erlang { rate, phases }
            }
            "uniform" => DistSpec::Uniform {
                lower: f64_arg("lower")?,
                upper: f64_arg("upper")?,
            },
            "deterministic" => DistSpec::Deterministic {
                value: f64_arg("value")?,
            },
            "weibull" => DistSpec::Weibull {
                shape: f64_arg("shape")?,
                scale: f64_arg("scale")?,
            },
            other => return Err(malformed(format!("unknown distribution '{other}'"))),
        };
        if parts.next().is_some() {
            return Err(malformed("trailing distribution parameters"));
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// TransformSpec
// ---------------------------------------------------------------------------

/// A complete, serializable description of a Laplace-domain evaluator.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformSpec {
    /// The first-passage transform `L(s)` from a model's initial marking into
    /// the predicate's markings.
    Passage {
        /// The model the passage is measured on.
        model: ModelSpec,
        /// The target-marking predicate.
        targets: TargetSpec,
    },
    /// The transient state-distribution transform: the probability of being in
    /// the predicate's markings at time `t`, started from the initial marking.
    Transient {
        /// The model the probability is measured on.
        model: ModelSpec,
        /// The target-marking predicate.
        targets: TargetSpec,
    },
    /// The `/s` trick applied to an inner transform: evaluates the inner spec
    /// and divides by `s`, turning a density transform into a CDF transform
    /// *at evaluation time*.  (Batch CDF measures usually prefer caching the
    /// raw density and dividing at inversion — see
    /// [`crate::MeasureKind::Cdf`] — but a worker evaluating `L(s)/s` directly
    /// is part of the protocol so single-measure CDF jobs stay expressible.)
    CdfOf(Box<TransformSpec>),
    /// A named analytic distribution's LST.
    Analytic(DistSpec),
}

impl TransformSpec {
    /// Convenience constructor for a passage spec.
    pub fn passage(model: ModelSpec, targets: TargetSpec) -> Self {
        TransformSpec::Passage { model, targets }
    }

    /// Convenience constructor for a transient spec.
    pub fn transient(model: ModelSpec, targets: TargetSpec) -> Self {
        TransformSpec::Transient { model, targets }
    }

    /// The model the spec is evaluated over, if any (analytic specs have none).
    pub fn model(&self) -> Option<&ModelSpec> {
        match self {
            TransformSpec::Passage { model, .. } | TransformSpec::Transient { model, .. } => {
                Some(model)
            }
            TransformSpec::CdfOf(inner) => inner.model(),
            TransformSpec::Analytic(_) => None,
        }
    }

    /// The canonical cache/checkpoint transform key of the spec, with the
    /// model fingerprint folded in.  Matches the keys the `smpq` CLI has
    /// always written: `m<fingerprint>:passage:<pred>` and
    /// `m<fingerprint>:transient:<pred>`; `CdfOf` shares its inner spec's key
    /// **only when the inner values are cached raw** — because a `CdfOf`
    /// worker returns `L(s)/s`, its values live under a distinct `cdf-of:`
    /// key so they can never collide with raw density values.
    pub fn transform_key(&self) -> String {
        match self {
            TransformSpec::Passage { model, targets } => {
                Self::passage_key(&model.fingerprint(), targets)
            }
            TransformSpec::Transient { model, targets } => {
                Self::transient_key(&model.fingerprint(), targets)
            }
            TransformSpec::CdfOf(inner) => format!("cdf-of:{}", inner.transform_key()),
            TransformSpec::Analytic(dist) => {
                format!("analytic:{}", dist.encode().unwrap_or_default())
            }
        }
    }

    /// The canonical passage transform key for a model fingerprint and target
    /// predicate — the one format every producer (spec-based measures, the
    /// `smpq` CLI's closure path) must agree on for checkpoints to warm
    /// across backends.
    pub fn passage_key(fingerprint: &str, targets: &TargetSpec) -> String {
        format!("m{fingerprint}:passage:{targets}")
    }

    /// The canonical transient transform key (see
    /// [`TransformSpec::passage_key`]).
    pub fn transient_key(fingerprint: &str, targets: &TargetSpec) -> String {
        format!("m{fingerprint}:transient:{targets}")
    }

    /// Encodes the spec as one canonical line of the wire format.
    pub fn encode(&self) -> Result<String, WireError> {
        Ok(match self {
            TransformSpec::Passage { model, targets } => format!(
                "passage v={SPEC_VERSION} model={} targets={}",
                model.encode(),
                encode_str(&targets.to_string())
            ),
            TransformSpec::Transient { model, targets } => format!(
                "transient v={SPEC_VERSION} model={} targets={}",
                model.encode(),
                encode_str(&targets.to_string())
            ),
            TransformSpec::CdfOf(inner) => format!("cdf-of {}", inner.encode()?),
            TransformSpec::Analytic(dist) => {
                format!("analytic v={SPEC_VERSION} dist={}", dist.encode()?)
            }
        })
    }

    /// Decodes one wire line back into a spec.
    pub fn decode(line: &str) -> Result<TransformSpec, WireError> {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("cdf-of ") {
            return Ok(TransformSpec::CdfOf(Box::new(TransformSpec::decode(rest)?)));
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().ok_or_else(|| malformed("empty spec line"))?;
        let version_field = parts
            .next()
            .and_then(|p| p.strip_prefix("v="))
            .ok_or_else(|| malformed("spec missing v=N"))?;
        let version: u32 = version_field
            .parse()
            .map_err(|_| malformed("bad spec version"))?;
        if version != SPEC_VERSION {
            return Err(WireError::Version { got: version });
        }
        let mut field = |key: &str| -> Result<String, WireError> {
            parts
                .next()
                .and_then(|p| p.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .map(str::to_string)
                .ok_or_else(|| malformed(format!("spec missing {key}=...")))
        };
        let spec = match tag {
            "passage" | "transient" => {
                let model = ModelSpec::decode(&field("model")?)?;
                let targets_text =
                    decode_str(&field("targets")?).ok_or_else(|| malformed("bad targets"))?;
                let targets = TargetSpec::parse(&targets_text).map_err(malformed)?;
                if tag == "passage" {
                    TransformSpec::Passage { model, targets }
                } else {
                    TransformSpec::Transient { model, targets }
                }
            }
            "analytic" => TransformSpec::Analytic(DistSpec::decode(&field("dist")?)?),
            other => return Err(malformed(format!("unknown spec tag '{other}'"))),
        };
        if parts.next().is_some() {
            return Err(malformed("trailing fields after spec"));
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Compilation: spec → evaluator
// ---------------------------------------------------------------------------

/// Everything of a spec that needs the model: which solver to build and how
/// many `/s` divisions to apply.  `targets` holds the *resolved* state
/// indices — the predicate is matched against the state space exactly once,
/// at compile time.
struct ResolvedSpec {
    /// Index into [`CompiledModelSet::models`], or `None` for analytic specs.
    model: Option<usize>,
    targets: Option<Vec<usize>>,
    transient: bool,
    dist: Option<Dist>,
    s_divisions: u32,
}

/// A set of parsed-and-explored models shared by the evaluators of one job.
///
/// Workers compile the measures' specs in two steps: this set owns the heavy
/// state (one [`StateSpace`] per *distinct* model source), then
/// [`CompiledModelSet::evaluator`] builds cheap per-measure solvers that borrow
/// it.  The two-step split is what lets several measures over one model share
/// a single state-space exploration, exactly as the in-process CLI shares its
/// solvers.
pub struct CompiledModelSet {
    models: Vec<(String, smp_smspn::SmSpn, StateSpace)>,
    resolved: Vec<ResolvedSpec>,
}

impl std::fmt::Debug for CompiledModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModelSet")
            .field("models", &self.models.len())
            .field("specs", &self.resolved.len())
            .finish()
    }
}

impl CompiledModelSet {
    /// Parses and explores every distinct model among `specs`, in order.
    /// Returns an error naming the first spec that fails to compile.
    pub fn compile(specs: &[TransformSpec]) -> Result<CompiledModelSet, String> {
        let mut models: Vec<(String, smp_smspn::SmSpn, StateSpace)> = Vec::new();
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in specs {
            resolved.push(Self::resolve(spec, &mut models, 0)?);
        }
        Ok(CompiledModelSet { models, resolved })
    }

    fn resolve(
        spec: &TransformSpec,
        models: &mut Vec<(String, smp_smspn::SmSpn, StateSpace)>,
        s_divisions: u32,
    ) -> Result<ResolvedSpec, String> {
        match spec {
            TransformSpec::CdfOf(inner) => Self::resolve(inner, models, s_divisions + 1),
            TransformSpec::Analytic(dist) => Ok(ResolvedSpec {
                model: None,
                targets: None,
                transient: false,
                dist: Some(dist.to_dist()),
                s_divisions,
            }),
            TransformSpec::Passage { model, targets }
            | TransformSpec::Transient { model, targets } => {
                let fingerprint = model.fingerprint();
                let index = match models.iter().position(|(fp, _, _)| *fp == fingerprint) {
                    Some(index) => index,
                    None => {
                        let source = model.source();
                        let net = smp_dnamaca::parse_model(&source)
                            .map_err(|e| format!("model parse error: {e}"))?;
                        let space = StateSpace::explore(&net)
                            .map_err(|e| format!("state-space exploration failed: {e}"))?;
                        models.push((fingerprint, net, space));
                        models.len() - 1
                    }
                };
                // Resolving the predicate here both validates it (a bad spec
                // fails at compile time, not at the first s-point) and does
                // the full state-space scan exactly once.
                let (_, net, space) = &models[index];
                let target_states = targets.resolve(net, space).map_err(|e| e.to_string())?;
                Ok(ResolvedSpec {
                    model: Some(index),
                    targets: Some(target_states),
                    transient: matches!(spec, TransformSpec::Transient { .. }),
                    dist: None,
                    s_divisions,
                })
            }
        }
    }

    /// Number of distinct models compiled.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Total reachable markings across the compiled models (engines compile a
    /// single model, so this is simply its state-space size — reported in
    /// [`smp_core::query::Provenance::states`]).
    pub fn num_states(&self) -> usize {
        self.models
            .iter()
            .map(|(_, _, space)| space.num_states())
            .sum()
    }

    /// Builds the evaluator of the `index`-th compiled spec, borrowing the
    /// model set.
    pub fn evaluator(&self, index: usize) -> Result<CompiledEvaluator<'_>, String> {
        let resolved = self
            .resolved
            .get(index)
            .ok_or_else(|| format!("no compiled spec at index {index}"))?;
        let kind = match (&resolved.dist, resolved.model) {
            (Some(dist), _) => EvaluatorKind::Analytic(dist.clone()),
            (None, Some(model)) => {
                let (_, _net, space) = &self.models[model];
                let targets = resolved
                    .targets
                    .as_deref()
                    .expect("model specs always carry resolved targets");
                let smp = space.smp();
                let initial = space.initial_state();
                if resolved.transient {
                    EvaluatorKind::Transient(
                        TransientSolver::new(smp, initial, targets).map_err(|e| e.to_string())?,
                    )
                } else {
                    EvaluatorKind::Passage(
                        PassageTimeSolver::new(smp, &[initial], targets)
                            .map_err(|e| e.to_string())?,
                    )
                }
            }
            (None, None) => unreachable!("resolved spec has neither model nor distribution"),
        };
        Ok(CompiledEvaluator {
            kind,
            s_divisions: resolved.s_divisions,
        })
    }

    /// Builds all evaluators, in spec order.
    pub fn evaluators(&self) -> Result<Vec<CompiledEvaluator<'_>>, String> {
        (0..self.resolved.len())
            .map(|i| self.evaluator(i))
            .collect()
    }
}

/// A bounded, thread-safe LRU cache of [`CompiledModelSet`]s keyed by the
/// canonical wire encoding of their spec lists.
///
/// Compiling a model set parses the model and explores its state space — by
/// far the most expensive part of answering a repeated query. The query
/// server keeps one of these caches so that a second request against the same
/// (model, target-set) list reuses the explored state space instead of
/// re-exploring it. Keys are the joined [`TransformSpec::encode`] lines, so
/// two spec lists collide only when they would compile to identical sets; a
/// spec that cannot be encoded (impossible for specs built from parsed
/// models) falls back to an uncached compile.
///
/// Eviction is least-recently-used with a monotonic clock, so the entry set
/// after any sequence of operations is deterministic.
pub struct CompiledSetCache {
    capacity: usize,
    clock: std::sync::atomic::AtomicU64,
    entries: parking_lot::Mutex<Vec<CompiledSetSlot>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

struct CompiledSetSlot {
    key: String,
    stamp: u64,
    set: std::sync::Arc<CompiledModelSet>,
}

impl CompiledSetCache {
    /// Creates a cache holding at most `capacity` compiled sets (minimum 1).
    pub fn new(capacity: usize) -> CompiledSetCache {
        CompiledSetCache {
            capacity: capacity.max(1),
            clock: std::sync::atomic::AtomicU64::new(0),
            entries: parking_lot::Mutex::new(Vec::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the cached set for `specs`, compiling (and caching) it on a
    /// miss. The boolean is `true` when the set was served from the cache
    /// without compiling. The compile itself runs outside the cache lock, so
    /// concurrent misses on different keys do not serialize; two concurrent
    /// misses on the *same* key may both compile, but only one result is
    /// retained.
    pub fn get_or_compile(
        &self,
        specs: &[TransformSpec],
    ) -> Result<(std::sync::Arc<CompiledModelSet>, bool), String> {
        let mut key = String::new();
        for spec in specs {
            match spec.encode() {
                Ok(line) => {
                    key.push_str(&line);
                    key.push('\n');
                }
                Err(_) => {
                    // Unkeyable spec: compile without touching the cache.
                    self.misses
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let set = CompiledModelSet::compile(specs)?;
                    return Ok((std::sync::Arc::new(set), false));
                }
            }
        }
        let stamp = self.tick();
        {
            let mut entries = self.entries.lock();
            if let Some(slot) = entries.iter_mut().find(|slot| slot.key == key) {
                slot.stamp = stamp;
                let set = std::sync::Arc::clone(&slot.set);
                drop(entries);
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok((set, true));
            }
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let set = std::sync::Arc::new(CompiledModelSet::compile(specs)?);
        let stamp = self.tick();
        let mut entries = self.entries.lock();
        if let Some(slot) = entries.iter_mut().find(|slot| slot.key == key) {
            // Another thread compiled the same key first; keep its copy so
            // every holder shares one allocation.
            slot.stamp = stamp;
            return Ok((std::sync::Arc::clone(&slot.set), false));
        }
        entries.push(CompiledSetSlot {
            key,
            stamp,
            set: std::sync::Arc::clone(&set),
        });
        while entries.len() > self.capacity {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(i, _)| i);
            match oldest {
                Some(i) => {
                    entries.remove(i);
                }
                None => break,
            }
        }
        Ok((set, false))
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of misses (each one paid for a compile, i.e. a state-space
    /// exploration per distinct model in the list).
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of compiled sets currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when no compiled set is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

impl std::fmt::Debug for CompiledSetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSetCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

enum EvaluatorKind<'a> {
    Passage(PassageTimeSolver<'a>),
    Transient(TransientSolver<'a>),
    Analytic(Dist),
}

/// A ready-to-run evaluator reconstructed from a [`TransformSpec`], borrowing
/// its [`CompiledModelSet`].
pub struct CompiledEvaluator<'a> {
    kind: EvaluatorKind<'a>,
    s_divisions: u32,
}

impl std::fmt::Debug for CompiledEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            EvaluatorKind::Passage(_) => "passage",
            EvaluatorKind::Transient(_) => "transient",
            EvaluatorKind::Analytic(_) => "analytic",
        };
        f.debug_struct("CompiledEvaluator")
            .field("kind", &kind)
            .field("s_divisions", &self.s_divisions)
            .finish()
    }
}

impl CompiledEvaluator<'_> {
    /// Aggregate symbolic/numeric-split counters of the underlying solver
    /// (matrix rebuilds avoided, pooled LST evaluations) — zero for analytic
    /// distribution evaluators, which have no kernel matrix at all.
    pub fn hotpath_stats(&self) -> smp_core::HotPathStats {
        match &self.kind {
            EvaluatorKind::Passage(solver) => solver.hotpath_stats(),
            EvaluatorKind::Transient(solver) => solver.hotpath_stats(),
            EvaluatorKind::Analytic(_) => smp_core::HotPathStats::default(),
        }
    }

    /// Evaluates the transform at one `s`-point — the same computation the
    /// closure-based API would run in-process.
    pub fn eval(&self, s: Complex64) -> Result<Complex64, String> {
        let mut value = match &self.kind {
            EvaluatorKind::Passage(solver) => solver
                .transform_at(s)
                .map(|p| p.value)
                .map_err(|e| e.to_string())?,
            EvaluatorKind::Transient(solver) => {
                solver.transform_at(s).map_err(|e| e.to_string())?
            }
            EvaluatorKind::Analytic(dist) => dist.lst(s),
        };
        for _ in 0..self.s_divisions {
            value /= s;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voting() -> ModelSpec {
        ModelSpec::Voting {
            voters: 3,
            polling: 1,
            central: 1,
        }
    }

    fn pred(text: &str) -> TargetSpec {
        TargetSpec::parse(text).unwrap()
    }

    #[test]
    fn spec_encoding_round_trips() {
        let specs = vec![
            TransformSpec::passage(voting(), pred("p2>=2")),
            TransformSpec::transient(ModelSpec::Dnamaca("\\place{p}{1}".into()), pred("p==0")),
            TransformSpec::CdfOf(Box::new(TransformSpec::passage(voting(), pred("p2>=2")))),
            TransformSpec::Analytic(DistSpec::Erlang {
                rate: 2.0,
                phases: 3,
            }),
            TransformSpec::Analytic(DistSpec::Weibull {
                shape: 1.5,
                scale: 0.5,
            }),
        ];
        for spec in specs {
            let line = spec.encode().unwrap();
            assert!(!line.contains('\n'), "one line per spec: {line:?}");
            assert_eq!(TransformSpec::decode(&line).unwrap(), spec, "{line}");
        }
    }

    #[test]
    fn awkward_dnamaca_source_survives_the_wire() {
        let source = "\\place{p}{1}\n% naïve comment with spaces + 100%\n".to_string();
        let spec = TransformSpec::transient(ModelSpec::Dnamaca(source.clone()), pred("p>=1"));
        let decoded = TransformSpec::decode(&spec.encode().unwrap()).unwrap();
        assert_eq!(decoded.model().unwrap().source(), source);
    }

    #[test]
    fn non_finite_distribution_parameters_are_rejected() {
        let spec = TransformSpec::Analytic(DistSpec::Exponential { rate: f64::NAN });
        assert!(matches!(spec.encode(), Err(WireError::NonFinite { .. })));
        let inf = TransformSpec::Analytic(DistSpec::Uniform {
            lower: 0.0,
            upper: f64::INFINITY,
        });
        assert!(matches!(inf.encode(), Err(WireError::NonFinite { .. })));
    }

    #[test]
    fn transform_keys_fold_the_model_fingerprint_in() {
        let a = TransformSpec::passage(voting(), pred("p2>=2")).transform_key();
        let b = TransformSpec::passage(
            ModelSpec::Voting {
                voters: 4,
                polling: 1,
                central: 1,
            },
            pred("p2>=2"),
        )
        .transform_key();
        assert_ne!(a, b, "different models must never share cache shards");
        let fingerprint = voting().fingerprint();
        assert_eq!(a, format!("m{fingerprint}:passage:p2>=2"));
        // CdfOf values are L(s)/s — never the raw density's shard.
        let c = TransformSpec::CdfOf(Box::new(TransformSpec::passage(voting(), pred("p2>=2"))))
            .transform_key();
        assert_eq!(c, format!("cdf-of:{a}"));
        // Transient and passage transforms are distinct even on one model.
        let t = TransformSpec::transient(voting(), pred("p2>=2")).transform_key();
        assert_ne!(t, a);
    }

    #[test]
    fn fingerprint_matches_the_cli_convention() {
        // Deterministic, 16 hex digits, sensitive to single-character edits.
        let a = model_fingerprint("\\place{p}{1}");
        assert_eq!(a.len(), 16);
        assert_eq!(a, model_fingerprint("\\place{p}{1}"));
        assert_ne!(a, model_fingerprint("\\place{p}{2}"));
    }

    #[test]
    fn compile_shares_state_spaces_between_specs() {
        let specs = vec![
            TransformSpec::passage(voting(), pred("p2>=2")),
            TransformSpec::passage(voting(), pred("p2>=3")),
            TransformSpec::transient(voting(), pred("p2>=2")),
            TransformSpec::Analytic(DistSpec::Exponential { rate: 1.0 }),
        ];
        let compiled = CompiledModelSet::compile(&specs).unwrap();
        assert_eq!(compiled.num_models(), 1, "one exploration for one model");
        let evaluators = compiled.evaluators().unwrap();
        assert_eq!(evaluators.len(), 4);
        // The analytic evaluator reproduces the LST exactly.
        let s = Complex64::new(0.7, 1.3);
        let expect = Dist::exponential(1.0).lst(s);
        assert_eq!(evaluators[3].eval(s).unwrap(), expect);
    }

    #[test]
    fn compiled_passage_matches_a_hand_built_solver() {
        let spec = TransformSpec::passage(voting(), pred("p2>=2"));
        let compiled = CompiledModelSet::compile(std::slice::from_ref(&spec)).unwrap();
        let evaluator = compiled.evaluator(0).unwrap();

        // Reference: the CLI's construction path.
        let source = voting().source();
        let net = smp_dnamaca::parse_model(&source).unwrap();
        let space = StateSpace::explore(&net).unwrap();
        let targets = pred("p2>=2").resolve(&net, &space).unwrap();
        let solver =
            PassageTimeSolver::new(space.smp(), &[space.initial_state()], &targets).unwrap();

        for k in 1..=4 {
            let s = Complex64::new(0.5 * k as f64, 0.3 * k as f64);
            let expect = solver.transform_at(s).unwrap().value;
            assert_eq!(evaluator.eval(s).unwrap(), expect, "bitwise at {s}");
        }
    }

    #[test]
    fn cdf_of_divides_by_s() {
        let inner = TransformSpec::Analytic(DistSpec::Exponential { rate: 2.0 });
        let spec = TransformSpec::CdfOf(Box::new(inner.clone()));
        let both = [inner, spec];
        let compiled = CompiledModelSet::compile(&both).unwrap();
        let evaluators = compiled.evaluators().unwrap();
        let s = Complex64::new(1.5, -0.5);
        let raw = evaluators[0].eval(s).unwrap();
        let divided = evaluators[1].eval(s).unwrap();
        assert_eq!(divided, raw / s);
    }

    #[test]
    fn bad_specs_fail_at_compile_time() {
        let missing_place = TransformSpec::passage(voting(), pred("nosuch>=1"));
        let err = CompiledModelSet::compile(std::slice::from_ref(&missing_place)).unwrap_err();
        assert!(err.contains("nosuch"), "{err}");

        let empty = TransformSpec::passage(voting(), pred("p2>=99"));
        let err = CompiledModelSet::compile(std::slice::from_ref(&empty)).unwrap_err();
        assert!(err.contains("no reachable marking"), "{err}");

        let unparsable =
            TransformSpec::passage(ModelSpec::Dnamaca("\\bogus{".into()), pred("p>=1"));
        let err = CompiledModelSet::compile(std::slice::from_ref(&unparsable)).unwrap_err();
        assert!(err.contains("parse"), "{err}");
    }

    #[test]
    fn compiled_set_cache_hits_on_identical_spec_lists() {
        let cache = CompiledSetCache::new(4);
        let specs = vec![
            TransformSpec::passage(voting(), pred("p2>=2")),
            TransformSpec::transient(voting(), pred("p2>=2")),
        ];
        let (first, hit) = cache.get_or_compile(&specs).unwrap();
        assert!(!hit, "cold lookup must compile");
        let (second, hit) = cache.get_or_compile(&specs).unwrap();
        assert!(hit, "identical spec list must be served from cache");
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "both holders share one compiled set"
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn compiled_set_cache_distinguishes_spec_lists_and_evicts_lru() {
        let cache = CompiledSetCache::new(2);
        let a = vec![TransformSpec::passage(voting(), pred("p2>=2"))];
        let b = vec![TransformSpec::passage(voting(), pred("p2>=3"))];
        let c = vec![TransformSpec::transient(voting(), pred("p2>=2"))];
        cache.get_or_compile(&a).unwrap();
        cache.get_or_compile(&b).unwrap();
        // Touch `a` so `b` is the least recently used, then overflow.
        let (_, hit) = cache.get_or_compile(&a).unwrap();
        assert!(hit);
        cache.get_or_compile(&c).unwrap();
        assert_eq!(cache.len(), 2, "capacity bound holds");
        let (_, hit) = cache.get_or_compile(&a).unwrap();
        assert!(hit, "recently-touched entry survived eviction");
        let (_, hit) = cache.get_or_compile(&b).unwrap();
        assert!(!hit, "least-recently-used entry was evicted");
    }

    #[test]
    fn compiled_set_cache_propagates_compile_errors_without_caching() {
        let cache = CompiledSetCache::new(2);
        let bad = vec![TransformSpec::passage(voting(), pred("nosuch>=1"))];
        assert!(cache.get_or_compile(&bad).is_err());
        assert!(cache.is_empty(), "failed compiles are not cached");
    }

    #[test]
    fn decode_rejects_future_versions_and_junk() {
        assert!(matches!(
            TransformSpec::decode("passage v=99 model=voting:1,1,1 targets=p%3e%3d1"),
            Err(WireError::Version { got: 99 })
        ));
        assert!(TransformSpec::decode("passage v=1 model=voting:1,1").is_err());
        assert!(TransformSpec::decode("frob v=1").is_err());
        assert!(TransformSpec::decode("").is_err());
        assert!(TransformSpec::decode("analytic v=1 dist=erlang:xx:3").is_err());
    }
}
