//! The client side of the query protocol: what `smpq query` and
//! `smpq shutdown` speak to a running `smpq serve`.
//!
//! A [`QueryClient`] is one TCP connection.  It may issue any number of
//! queries back to back — the server keeps per-connection state only in the
//! socket itself, so connections are cheap and independent.  Every call is
//! strictly request/response: one payload out, one payload back.

use crate::server::{
    decode_query_reply, encode_query_request, QueryReply, QueryRequest, Refusal, RefusalKind,
    SHUTDOWN_ACK, SHUTDOWN_REQUEST,
};
use crate::transport::Backoff;
use crate::wire::{read_payload, write_payload, WireError};
use smp_core::query::MeasureReport;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a client call failed (the transport or protocol layer — a server that
/// *answers* with a refusal is the [`QueryError::Refused`] case).
#[derive(Debug)]
pub enum QueryError {
    /// The server answered with a typed refusal.
    Refused(Refusal),
    /// The server's reply could not be decoded, or was not the kind of
    /// payload the call expected.
    Protocol(String),
    /// The connection itself failed.
    Io(std::io::Error),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Refused(refusal) => write!(f, "server refused the query ({refusal})"),
            QueryError::Protocol(message) => write!(f, "protocol error: {message}"),
            QueryError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<std::io::Error> for QueryError {
    fn from(e: std::io::Error) -> Self {
        QueryError::Io(e)
    }
}

impl From<WireError> for QueryError {
    fn from(e: WireError) -> Self {
        QueryError::Protocol(e.to_string())
    }
}

/// One connection to a running query server.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Dials the server, retrying briefly (the caller may have just spawned
    /// `smpq serve` and raced its bind).
    pub fn connect(addr: &str) -> Result<QueryClient, QueryError> {
        let mut last_error: Option<std::io::Error> = None;
        for attempt in 0..20 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(100));
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
                    stream.set_write_timeout(Some(Duration::from_secs(600)))?;
                    return Ok(QueryClient { stream });
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(QueryError::Io(last_error.unwrap_or_else(|| {
            std::io::Error::other(format!("could not connect to {addr}"))
        })))
    }

    /// One dial attempt, no built-in retry loop — the building block
    /// [`query_with_retry`] owns its own schedule with.
    pub fn connect_once(addr: &str) -> Result<QueryClient, QueryError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        stream.set_write_timeout(Some(Duration::from_secs(600)))?;
        Ok(QueryClient { stream })
    }

    /// Sends one query and waits for its answer.  A served refusal comes
    /// back as [`QueryError::Refused`] — the caller distinguishes "the
    /// server said no" from "the connection broke".
    pub fn query(&mut self, request: &QueryRequest) -> Result<Vec<MeasureReport>, QueryError> {
        write_payload(&mut self.stream, &encode_query_request(request))?;
        let (payload, _) = read_payload(&mut self.stream)?;
        match decode_query_reply(&payload)? {
            QueryReply::Reports(reports) => Ok(reports),
            QueryReply::Refusal(refusal) => Err(QueryError::Refused(refusal)),
        }
    }

    /// Asks the server to drain and exit.  Returns once the server
    /// acknowledges (it stops accepting immediately; in-flight solves finish
    /// within its drain grace period).
    pub fn shutdown(mut self) -> Result<(), QueryError> {
        write_payload(&mut self.stream, SHUTDOWN_REQUEST)?;
        let (payload, _) = read_payload(&mut self.stream)?;
        if payload.trim() == SHUTDOWN_ACK {
            Ok(())
        } else {
            Err(QueryError::Protocol(format!(
                "expected '{SHUTDOWN_ACK}', got '{}'",
                payload.trim()
            )))
        }
    }
}

/// Client-side retry policy for [`query_with_retry`]: how many extra
/// attempts a transient failure earns and the base of the backoff schedule
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first; `0` means a single attempt and
    /// [`query_with_retry`] degenerates to dial-once-and-ask.
    pub retries: u32,
    /// Base delay between attempts; the schedule doubles per attempt with
    /// deterministic jitter (see [`Backoff`]) and caps at 64× the base.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

/// Whether a failure is worth another attempt: connection failures and
/// admission refusals (`Busy`) are transient — the server may come up, drain
/// a solve, or free a queue slot.  Everything else (protocol errors, model
/// errors, deadline refusals) is final: retrying cannot change the answer.
fn retryable(error: &QueryError) -> bool {
    match error {
        QueryError::Refused(refusal) => refusal.kind == RefusalKind::Busy,
        QueryError::Io(_) => true,
        QueryError::Protocol(_) => false,
    }
}

/// Dials `addr` and issues `request`, retrying transient failures (connect
/// refusals, broken connections, `Busy` admission refusals) up to
/// `policy.retries` extra attempts with deterministically-jittered
/// exponential backoff seeded from the address — so a thundering herd of
/// restarted clients de-synchronizes instead of re-colliding, and a given
/// (address, attempt) pair always waits the same amount, making failures
/// replayable.
///
/// The request's own deadline bounds the whole schedule: a retry whose
/// backoff would land past the deadline is not attempted and the last error
/// is returned instead.  On success the number of retries spent is folded
/// into the first report's `retries` provenance.
pub fn query_with_retry(
    addr: &str,
    request: &QueryRequest,
    policy: &RetryPolicy,
) -> Result<Vec<MeasureReport>, QueryError> {
    let deadline = request.deadline.map(|d| Instant::now() + d);
    let base = policy.backoff.max(Duration::from_millis(1));
    let mut backoff = Backoff::for_endpoint(base, base * 64, addr);
    let mut spent = 0u64;
    loop {
        let outcome = QueryClient::connect_once(addr).and_then(|mut client| client.query(request));
        match outcome {
            Ok(mut reports) => {
                if spent > 0 {
                    if let Some(first) = reports.first_mut() {
                        first.provenance.retries += spent;
                    }
                }
                return Ok(reports);
            }
            Err(error) if retryable(&error) && spent < u64::from(policy.retries) => {
                let delay = backoff.next_delay();
                if let Some(deadline) = deadline {
                    if Instant::now() + delay >= deadline {
                        return Err(error);
                    }
                }
                std::thread::sleep(delay);
                spent += 1;
            }
            Err(error) => return Err(error),
        }
    }
}
