//! The `smpq serve` query daemon: an always-on master answering measure
//! queries over TCP.
//!
//! The paper observes that its caching pays off "both within and across
//! successive queries" — but a one-shot CLI throws the warm state away after
//! every run.  This module keeps the master *resident*: one process binds a
//! query port, attaches a standing pool of worker processes once, and then
//! answers any number of [`QueryRequest`]s, each a full measure batch over
//! any model.  Between requests it retains
//!
//! * a bounded-LRU [`CompiledSetCache`] of compiled model sets, so a repeated
//!   model costs zero state-space explorations;
//! * a byte-bounded [`crate::cache::ResultCache`] of transform values keyed
//!   by measure fingerprint, so overlapping evaluation grids are served warm;
//! * a bounded memo of engine-routing probes (`--engine auto`), so deciding
//!   "is this model all-exponential?" also costs one exploration ever.
//!
//! ## Frames
//!
//! The query protocol is layered on the same length-prefixed payload framing
//! as checkpoints and worker frames ([`crate::wire::write_payload`]).  One
//! client request is one payload; the server answers with exactly one payload
//! per request and keeps the connection open for the next request:
//!
//! ```text
//! client → server    query v=1 engine=auto method=euler deadline_ms=0 measures=2 tpoints=3
//!                    model voting:3:1:1
//!                    grid 3ff0000000000000 4000000000000000 4008000000000000
//!                    measure density:p2>=2
//!                    measure cdf:p2>=2
//! server → client    reports v=1 n=2
//!                    report name=density:p2>=2 kind=density
//!                    points 3 3ff0000000000000 4000000000000000 4008000000000000
//!                    values 3 3fb3ab167a0df4e4 ...
//!                    prov engine=distributed backend=tcp-pool workers=2 ...
//!                    report name=cdf:p2>=2 kind=cdf
//!                    ...
//! ```
//!
//! A request the server will not answer gets a one-line `refusal` payload
//! carrying a [`RefusalKind`] — the typed analogue of [`EngineError`] plus
//! the server-only outcomes (admission rejection, deadline exceeded,
//! protocol errors).  `shutdown v=1` asks the server to stop accepting and
//! drain; it acknowledges with `bye v=1`.
//!
//! ## Admission and deadlines
//!
//! At most `max_inflight` solves run concurrently; up to `max_queued` more
//! wait on a condition variable (their queue time is reported in
//! [`Provenance::queue_wait`]).  Anything beyond that is refused immediately
//! with [`RefusalKind::Busy`] — a bounded queue keeps one flood of queries
//! from taking the daemon down.  A request may carry a deadline: it is
//! enforced while queued, between dispatch rounds of the standing worker
//! pool, and after the solve (a result computed too late is refused, not
//! returned).  The pool itself survives a deadline — workers are released in
//! protocol with a `done` frame and stay attached for the next request.

use crate::cache::ResultCache;
use crate::engine::{
    uniformization_applies, AnalyticEngine, DistributedEngine, PhaseChainCache,
    UniformizationEngine,
};
use crate::master::{PipelineError, PipelineOptions};
use crate::transform::{CompiledSetCache, ModelSpec};
use crate::transport::{
    drive_connected_worker, encode_plan_specs, expect_hello, send_job, splitmix64, ExecutionPlan,
    HandlerOutcome, InProcess, Transport, TransportReport,
};
use crate::wire::{
    decode_f64, decode_str, encode_f64, encode_str, read_frame, read_payload, write_frame,
    write_payload, Frame, WireError,
};
use crate::work::WorkQueue;
use crate::worker::WorkerMessage;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use smp_core::query::{
    Engine, EngineError, MeasureKind, MeasureReport, MeasureRequest, Provenance, MEASURE_KIND_NAMES,
};
use smp_laplace::InversionMethod;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// The query-protocol version spoken by this build.
pub const QUERY_PROTOCOL_VERSION: u32 = 1;

/// The payload a client sends to stop the server (drain and exit).
pub const SHUTDOWN_REQUEST: &str = "shutdown v=1";

/// The server's acknowledgement of [`SHUTDOWN_REQUEST`].
pub const SHUTDOWN_ACK: &str = "bye v=1";

/// Socket read/write timeout for query connections and pooled workers: long
/// enough for any realistic solve, short enough that a vanished peer cannot
/// pin a thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(600);

/// Read timeout while a heartbeat waits for a pong: a crashed worker answers
/// with EOF instantly, so this only bounds a wedged-but-connected one.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(2);

/// Idle-loop iterations (20 ms sleeps) between heartbeat sweeps — about one
/// sweep per second, counted rather than clocked.
const HEARTBEAT_IDLE_TICKS: u64 = 50;

/// Outcome of one standing-pool heartbeat sweep
/// ([`QueryServer::heartbeat_workers`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolHealth {
    /// Idle workers pinged this sweep.
    pub checked: usize,
    /// Workers that failed to echo the ping nonce and were dropped.
    pub dead: usize,
    /// Replacement workers accepted onto vacant rendezvous listeners.
    pub replaced: usize,
}

/// One non-blocking accept on a vacant worker rendezvous listener: a dialing
/// replacement is handshaken and adopted; nobody waiting is not an error.
fn accept_replacement(listener: &TcpListener, id: usize) -> Option<PoolWorker> {
    listener.set_nonblocking(true).ok()?;
    let accepted = listener.accept();
    let _ = listener.set_nonblocking(false);
    let (mut stream, _) = accepted.ok()?;
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok()?;
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok()?;
    expect_hello(&mut stream).ok()?;
    Some(PoolWorker { id, stream })
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::Malformed {
        message: message.into(),
    }
}

/// [`decode_str`] with a typed error naming the field.
fn decode_text(field: &str, what: &'static str) -> Result<String, WireError> {
    decode_str(field).ok_or_else(|| {
        malformed(format!(
            "{what} field '{field}' is not a valid encoded string"
        ))
    })
}

fn transport_failure(message: impl Into<String>) -> PipelineError {
    PipelineError::Transport {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One query as shipped to the server: a model, an engine choice, and a batch
/// of measures over a shared time grid.
///
/// Measures travel as their *source text* (`density:p2>=3`), not as parsed
/// structures: the server re-parses them with
/// [`MeasureRequest::parse_for_engine`] exactly as the one-shot CLI does, so
/// a served query and a local run are guaranteed to build identical requests
/// — the precondition for bitwise-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The model to analyse.
    pub model: ModelSpec,
    /// Engine selector: `auto`, `analytic`, `distributed`, `uniform`.
    pub engine: String,
    /// Inversion method name (`euler`, `laguerre`).
    pub method: String,
    /// Give up on the request after this long (queued time included).
    /// `None` waits as long as the solve takes.
    pub deadline: Option<Duration>,
    /// The shared evaluation time grid.
    pub t_points: Vec<f64>,
    /// The measures, in `smpq` source syntax (`KIND:TARGET[@ARGS]`).
    pub measures: Vec<String>,
}

/// Encodes a request into one query payload (the inverse of
/// [`decode_query_request`]).  Time points travel as 16-hex-digit bit
/// patterns, so the grid the server evaluates is the grid the client typed,
/// bit for bit.
pub fn encode_query_request(request: &QueryRequest) -> String {
    let deadline_ms = match request.deadline {
        Some(d) => d.as_millis().min(u128::from(u64::MAX)) as u64,
        None => 0,
    };
    let mut out = format!(
        "query v={QUERY_PROTOCOL_VERSION} engine={} method={} deadline_ms={deadline_ms} \
         measures={} tpoints={}\n",
        encode_str(&request.engine),
        encode_str(&request.method),
        request.measures.len(),
        request.t_points.len(),
    );
    out.push_str("model ");
    out.push_str(&request.model.encode());
    out.push('\n');
    out.push_str("grid");
    for t in &request.t_points {
        out.push(' ');
        out.push_str(&encode_f64(*t));
    }
    out.push('\n');
    for measure in &request.measures {
        out.push_str("measure ");
        out.push_str(&encode_str(measure));
        out.push('\n');
    }
    out
}

/// Pulls the next `key=value` token off a whitespace token stream.
fn kv<'a>(
    tokens: &mut std::str::SplitWhitespace<'a>,
    key: &'static str,
) -> Result<&'a str, WireError> {
    let token = tokens
        .next()
        .ok_or_else(|| malformed(format!("payload line ends before its '{key}=' field")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| malformed(format!("expected '{key}=...', got '{token}'")))
}

/// Parses a decimal count field, naming it on failure.
fn decode_count(text: &str, what: &'static str) -> Result<usize, WireError> {
    text.parse()
        .map_err(|_| malformed(format!("{what} '{text}' is not a non-negative integer")))
}

/// Checks a `v=N` token against [`QUERY_PROTOCOL_VERSION`].
fn decode_version(text: &str) -> Result<(), WireError> {
    let got: u32 = text
        .parse()
        .map_err(|_| malformed(format!("protocol version '{text}' is not an integer")))?;
    if got == QUERY_PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(WireError::Version { got })
    }
}

/// Decodes a space-separated run of 16-hex-digit `f64` bit patterns.
fn decode_f64_run(
    tokens: &mut std::str::SplitWhitespace<'_>,
    count: usize,
    what: &'static str,
) -> Result<Vec<f64>, WireError> {
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let token = tokens
            .next()
            .ok_or_else(|| malformed(format!("{what} run ends early (expected {count} values)")))?;
        let value = decode_f64(token)
            .ok_or_else(|| malformed(format!("{what} value '{token}' is not a hex bit pattern")))?;
        values.push(value);
    }
    Ok(values)
}

/// Decodes one query payload (the inverse of [`encode_query_request`]).
/// Malformed input surfaces as a typed [`WireError`], never a panic — this
/// function parses bytes from an untrusted TCP peer.
pub fn decode_query_request(payload: &str) -> Result<QueryRequest, WireError> {
    let mut lines = payload.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty query payload"))?;
    let mut tokens = header.split_whitespace();
    match tokens.next() {
        Some("query") => {}
        other => {
            return Err(malformed(format!(
                "expected 'query' header, got '{}'",
                other.unwrap_or_default()
            )))
        }
    }
    decode_version(kv(&mut tokens, "v")?)?;
    let engine = decode_text(kv(&mut tokens, "engine")?, "engine")?;
    let method = decode_text(kv(&mut tokens, "method")?, "method")?;
    let deadline_ms: u64 = {
        let text = kv(&mut tokens, "deadline_ms")?;
        text.parse()
            .map_err(|_| malformed(format!("deadline_ms '{text}' is not an integer")))?
    };
    let n_measures = decode_count(kv(&mut tokens, "measures")?, "measure count")?;
    let n_points = decode_count(kv(&mut tokens, "tpoints")?, "grid size")?;

    let model_line = lines
        .next()
        .ok_or_else(|| malformed("query payload is missing its 'model' line"))?;
    let model_field = model_line
        .strip_prefix("model ")
        .ok_or_else(|| malformed(format!("expected 'model ...', got '{model_line}'")))?;
    let model = ModelSpec::decode(model_field)?;

    let grid_line = lines
        .next()
        .ok_or_else(|| malformed("query payload is missing its 'grid' line"))?;
    let grid_rest = grid_line
        .strip_prefix("grid")
        .ok_or_else(|| malformed(format!("expected 'grid ...', got '{grid_line}'")))?;
    let mut grid_tokens = grid_rest.split_whitespace();
    let t_points = decode_f64_run(&mut grid_tokens, n_points, "grid")?;

    let mut measures = Vec::with_capacity(n_measures);
    for _ in 0..n_measures {
        let line = lines.next().ok_or_else(|| {
            malformed(format!(
                "query payload announces {n_measures} measures but carries {}",
                measures.len()
            ))
        })?;
        let field = line
            .strip_prefix("measure ")
            .ok_or_else(|| malformed(format!("expected 'measure ...', got '{line}'")))?;
        measures.push(decode_text(field, "measure")?);
    }

    Ok(QueryRequest {
        model,
        engine,
        method,
        deadline: if deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(deadline_ms))
        },
        t_points,
        measures,
    })
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

/// Why the server refused a request.  `Model`/`Unsupported`/`Analysis`
/// mirror [`EngineError`]; the rest are server-side outcomes a one-shot run
/// cannot have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalKind {
    /// The model or a measure is unreadable or names a missing place.
    Model,
    /// The routed engine cannot compute a requested measure kind.
    Unsupported,
    /// The computation itself failed.
    Analysis,
    /// Admission control: the in-flight limit and the wait queue are full.
    Busy,
    /// The request's deadline passed before an answer was ready.
    Deadline,
    /// The request frame itself is malformed (bad engine name, bad method,
    /// no measures, undecodable payload).
    Protocol,
}

impl RefusalKind {
    /// The kind's wire token.
    pub fn name(self) -> &'static str {
        match self {
            RefusalKind::Model => "model",
            RefusalKind::Unsupported => "unsupported",
            RefusalKind::Analysis => "analysis",
            RefusalKind::Busy => "busy",
            RefusalKind::Deadline => "deadline",
            RefusalKind::Protocol => "protocol",
        }
    }

    /// Parses a wire token back into its kind.
    pub fn from_name(name: &str) -> Option<RefusalKind> {
        match name {
            "model" => Some(RefusalKind::Model),
            "unsupported" => Some(RefusalKind::Unsupported),
            "analysis" => Some(RefusalKind::Analysis),
            "busy" => Some(RefusalKind::Busy),
            "deadline" => Some(RefusalKind::Deadline),
            "protocol" => Some(RefusalKind::Protocol),
            _ => None,
        }
    }
}

/// A typed rejection: the kind plus a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refusal {
    /// Why the request was refused.
    pub kind: RefusalKind,
    /// The detailed message (engine error text, admission state, …).
    pub message: String,
}

impl std::fmt::Display for Refusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

/// The server's answer to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub enum QueryReply {
    /// One report per requested measure, in request order.
    Reports(Vec<MeasureReport>),
    /// The request was refused.
    Refusal(Refusal),
}

/// Maps a wire engine name back to the `'static` name [`Provenance`] wants.
/// Unknown names (a future engine) collapse to `"remote"` rather than
/// failing — the numbers still carry their own meaning.
fn engine_static(name: &str) -> &'static str {
    match name {
        "analytic" => "analytic",
        "distributed" => "distributed",
        "simulation" => "simulation",
        "uniformization" => "uniformization",
        _ => "remote",
    }
}

/// Rebuilds a [`MeasureKind`] from its wire name plus the report's points
/// (quantile probabilities and the moment order live in the points vector,
/// so the kind needs no payload of its own).
fn decode_kind(name: &str, points: &[f64]) -> Result<MeasureKind, WireError> {
    match name {
        "density" => Ok(MeasureKind::Density),
        "cdf" => Ok(MeasureKind::Cdf),
        "transient" => Ok(MeasureKind::Transient),
        "mean" => Ok(MeasureKind::Mean),
        "quantile" => Ok(MeasureKind::Quantile {
            probs: points.to_vec(),
        }),
        "moment" => {
            let first = points
                .first()
                .ok_or_else(|| malformed("moment report carries no points"))?;
            // Orders are 1..=4 by construction; the `as` cast saturates on
            // anything a corrupt peer might send instead of panicking.
            Ok(MeasureKind::Moment {
                order: *first as u32,
            })
        }
        other => Err(malformed(format!("unknown measure kind '{other}'"))),
    }
}

fn encode_provenance(p: &Provenance) -> String {
    let states = match p.states {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    };
    let bound = match p.error_bound {
        Some(b) => encode_f64(b),
        None => "-".to_string(),
    };
    let shard_states = if p.shard_states.is_empty() {
        "-".to_string()
    } else {
        p.shard_states
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "prov engine={} backend={} workers={} states={states} messages={} bytes={} \
         evaluations={} rebuilds={} pooled={} cache={} shared={} wall_ns={} bound={bound} \
         queue_ns={} mhits={} mmiss={} shards={} sstates={shard_states} halo={} rounds={} \
         retries={} recovered={} resumed={}",
        encode_str(p.engine),
        encode_str(&p.backend),
        p.workers,
        p.messages,
        p.bytes_on_wire,
        p.evaluations,
        p.matrix_rebuilds_avoided,
        p.pooled_lst_evaluations,
        p.cache_hits,
        p.shared_hits,
        p.wall.as_nanos().min(u128::from(u64::MAX)) as u64,
        p.queue_wait.as_nanos().min(u128::from(u64::MAX)) as u64,
        p.model_cache_hits,
        p.model_cache_misses,
        p.shards,
        p.halo_bytes,
        p.exchange_rounds,
        p.retries,
        p.recovered_faults,
        p.resumed_rounds,
    )
}

fn decode_provenance(line: &str) -> Result<Provenance, WireError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("prov") => {}
        other => {
            return Err(malformed(format!(
                "expected 'prov ...', got '{}'",
                other.unwrap_or_default()
            )))
        }
    }
    let engine = engine_static(&decode_text(kv(&mut tokens, "engine")?, "engine")?);
    let backend = decode_text(kv(&mut tokens, "backend")?, "backend")?;
    let workers = decode_count(kv(&mut tokens, "workers")?, "worker count")?;
    let states = match kv(&mut tokens, "states")? {
        "-" => None,
        text => Some(decode_count(text, "state count")?),
    };
    let messages = decode_count(kv(&mut tokens, "messages")?, "message count")?;
    let bytes: u64 = {
        let text = kv(&mut tokens, "bytes")?;
        text.parse()
            .map_err(|_| malformed(format!("byte count '{text}' is not an integer")))?
    };
    let evaluations = decode_count(kv(&mut tokens, "evaluations")?, "evaluation count")?;
    let rebuilds: u64 = {
        let text = kv(&mut tokens, "rebuilds")?;
        text.parse()
            .map_err(|_| malformed(format!("rebuild count '{text}' is not an integer")))?
    };
    let pooled: u64 = {
        let text = kv(&mut tokens, "pooled")?;
        text.parse()
            .map_err(|_| malformed(format!("pooled count '{text}' is not an integer")))?
    };
    let cache_hits = decode_count(kv(&mut tokens, "cache")?, "cache-hit count")?;
    let shared_hits = decode_count(kv(&mut tokens, "shared")?, "shared-hit count")?;
    let wall_ns: u64 = {
        let text = kv(&mut tokens, "wall_ns")?;
        text.parse()
            .map_err(|_| malformed(format!("wall time '{text}' is not an integer")))?
    };
    let error_bound = match kv(&mut tokens, "bound")? {
        "-" => None,
        text => Some(
            decode_f64(text)
                .ok_or_else(|| malformed(format!("error bound '{text}' is not a bit pattern")))?,
        ),
    };
    let queue_ns: u64 = {
        let text = kv(&mut tokens, "queue_ns")?;
        text.parse()
            .map_err(|_| malformed(format!("queue time '{text}' is not an integer")))?
    };
    let model_cache_hits = decode_count(kv(&mut tokens, "mhits")?, "model-cache hit count")?;
    let model_cache_misses = decode_count(kv(&mut tokens, "mmiss")?, "model-cache miss count")?;
    let shards = decode_count(kv(&mut tokens, "shards")?, "shard count")?;
    let shard_states = match kv(&mut tokens, "sstates")? {
        "-" => Vec::new(),
        text => text
            .split(',')
            .map(|n| decode_count(n, "per-shard state count"))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let halo_bytes: u64 = {
        let text = kv(&mut tokens, "halo")?;
        text.parse()
            .map_err(|_| malformed(format!("halo byte count '{text}' is not an integer")))?
    };
    let exchange_rounds: u64 = {
        let text = kv(&mut tokens, "rounds")?;
        text.parse()
            .map_err(|_| malformed(format!("exchange-round count '{text}' is not an integer")))?
    };
    let retries: u64 = {
        let text = kv(&mut tokens, "retries")?;
        text.parse()
            .map_err(|_| malformed(format!("retry count '{text}' is not an integer")))?
    };
    let recovered_faults: u64 = {
        let text = kv(&mut tokens, "recovered")?;
        text.parse()
            .map_err(|_| malformed(format!("recovered-fault count '{text}' is not an integer")))?
    };
    let resumed_rounds: u64 = {
        let text = kv(&mut tokens, "resumed")?;
        text.parse()
            .map_err(|_| malformed(format!("resumed-round count '{text}' is not an integer")))?
    };
    Ok(Provenance {
        engine,
        backend,
        workers,
        states,
        messages,
        bytes_on_wire: bytes,
        evaluations,
        matrix_rebuilds_avoided: rebuilds,
        pooled_lst_evaluations: pooled,
        cache_hits,
        shared_hits,
        wall: Duration::from_nanos(wall_ns),
        error_bound,
        queue_wait: Duration::from_nanos(queue_ns),
        model_cache_hits,
        model_cache_misses,
        shards,
        shard_states,
        halo_bytes,
        exchange_rounds,
        retries,
        recovered_faults,
        resumed_rounds,
    })
}

/// Encodes a reply into one payload (the inverse of [`decode_query_reply`]).
/// Values travel as bit patterns: the client prints exactly the `f64`s the
/// server computed.
pub fn encode_query_reply(reply: &QueryReply) -> String {
    match reply {
        QueryReply::Refusal(refusal) => format!(
            "refusal v={QUERY_PROTOCOL_VERSION} kind={} msg={}\n",
            refusal.kind.name(),
            encode_str(&refusal.message)
        ),
        QueryReply::Reports(reports) => {
            let mut out = format!("reports v={QUERY_PROTOCOL_VERSION} n={}\n", reports.len());
            for report in reports {
                out.push_str(&format!(
                    "report name={} kind={}\n",
                    encode_str(&report.name),
                    report.kind.name()
                ));
                out.push_str(&format!("points {}", report.points.len()));
                for p in &report.points {
                    out.push(' ');
                    out.push_str(&encode_f64(*p));
                }
                out.push('\n');
                out.push_str(&format!("values {}", report.values.len()));
                for v in &report.values {
                    out.push(' ');
                    out.push_str(&encode_f64(*v));
                }
                out.push('\n');
                out.push_str(&encode_provenance(&report.provenance));
                out.push('\n');
            }
            out
        }
    }
}

/// Decodes one reply payload (the inverse of [`encode_query_reply`]).
/// Malformed input surfaces as a typed [`WireError`], never a panic.
pub fn decode_query_reply(payload: &str) -> Result<QueryReply, WireError> {
    let mut lines = payload.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty reply payload"))?;
    let mut tokens = header.split_whitespace();
    match tokens.next() {
        Some("refusal") => {
            decode_version(kv(&mut tokens, "v")?)?;
            let kind_name = kv(&mut tokens, "kind")?;
            let kind = RefusalKind::from_name(kind_name)
                .ok_or_else(|| malformed(format!("unknown refusal kind '{kind_name}'")))?;
            let message = decode_text(kv(&mut tokens, "msg")?, "refusal message")?;
            Ok(QueryReply::Refusal(Refusal { kind, message }))
        }
        Some("reports") => {
            decode_version(kv(&mut tokens, "v")?)?;
            let n = decode_count(kv(&mut tokens, "n")?, "report count")?;
            let mut reports = Vec::with_capacity(n);
            for _ in 0..n {
                let report_line = lines.next().ok_or_else(|| {
                    malformed(format!(
                        "reply announces {n} reports but carries {}",
                        reports.len()
                    ))
                })?;
                let mut tokens = report_line.split_whitespace();
                match tokens.next() {
                    Some("report") => {}
                    other => {
                        return Err(malformed(format!(
                            "expected 'report ...', got '{}'",
                            other.unwrap_or_default()
                        )))
                    }
                }
                let name = decode_text(kv(&mut tokens, "name")?, "report name")?;
                let kind_name = decode_text(kv(&mut tokens, "kind")?, "measure kind")?;

                let points_line = lines
                    .next()
                    .ok_or_else(|| malformed("report is missing its 'points' line"))?;
                let points_rest = points_line.strip_prefix("points ").ok_or_else(|| {
                    malformed(format!("expected 'points ...', got '{points_line}'"))
                })?;
                let mut point_tokens = points_rest.split_whitespace();
                let n_points = decode_count(
                    point_tokens
                        .next()
                        .ok_or_else(|| malformed("'points' line carries no count"))?,
                    "point count",
                )?;
                let points = decode_f64_run(&mut point_tokens, n_points, "points")?;

                let values_line = lines
                    .next()
                    .ok_or_else(|| malformed("report is missing its 'values' line"))?;
                let values_rest = values_line.strip_prefix("values ").ok_or_else(|| {
                    malformed(format!("expected 'values ...', got '{values_line}'"))
                })?;
                let mut value_tokens = values_rest.split_whitespace();
                let n_values = decode_count(
                    value_tokens
                        .next()
                        .ok_or_else(|| malformed("'values' line carries no count"))?,
                    "value count",
                )?;
                let values = decode_f64_run(&mut value_tokens, n_values, "values")?;

                let prov_line = lines
                    .next()
                    .ok_or_else(|| malformed("report is missing its 'prov' line"))?;
                let provenance = decode_provenance(prov_line)?;
                let kind = decode_kind(&kind_name, &points)?;
                reports.push(MeasureReport {
                    name,
                    kind,
                    points,
                    values,
                    provenance,
                });
            }
            Ok(QueryReply::Reports(reports))
        }
        other => Err(malformed(format!(
            "expected 'reports' or 'refusal' header, got '{}'",
            other.unwrap_or_default()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Server options
// ---------------------------------------------------------------------------

/// How the server runs its solves: a standing pool of TCP worker processes,
/// or in-process threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolSpec {
    /// Bind one rendezvous listener per address; `smpq worker --connect`
    /// processes attach once (see [`QueryServer::attach_workers`]) and stay
    /// resident across requests.
    Tcp(Vec<String>),
    /// No worker processes: distributed solves run on this many in-process
    /// threads.
    InProcess(usize),
}

/// Configuration for [`QueryServer::bind`].
#[derive(Debug, Clone)]
pub struct QueryServerOptions {
    /// Address the query listener binds (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// The worker pool behind distributed solves.
    pub pool: PoolSpec,
    /// Capacity (entries) of the compiled-model-set LRU cache.
    pub cache_models: usize,
    /// Byte budget of the shared transform-value result cache.
    pub cache_result_bytes: usize,
    /// Maximum solves running concurrently.
    pub max_inflight: usize,
    /// Maximum requests waiting for a solve slot before new arrivals are
    /// refused with [`RefusalKind::Busy`].
    pub max_queued: usize,
    /// Row shards for distributed solves (0 = unsharded).  In-process pools
    /// only: each solve runs over loopback slice workers, each holding one
    /// contiguous row block of the state space.  Answers are bitwise
    /// identical for any value.
    pub solve_shards: usize,
}

impl Default for QueryServerOptions {
    fn default() -> Self {
        QueryServerOptions {
            listen: "127.0.0.1:0".to_string(),
            pool: PoolSpec::InProcess(2),
            cache_models: 8,
            cache_result_bytes: 64 << 20,
            max_inflight: 4,
            max_queued: 16,
            solve_shards: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------------

/// One attached worker process: its socket, kept in protocol sync (`done`
/// received, next `job` expected) between requests.
struct PoolWorker {
    id: usize,
    stream: TcpStream,
}

/// An `--engine auto` routing probe, memoized per model fingerprint.
struct RouteSlot {
    fingerprint: String,
    uniform: bool,
    stamp: u64,
}

/// Bounded-LRU memo of routing probes (a probe explores the state space, so
/// it is exactly as expensive as the compile it precedes).
struct RouteMemo {
    slots: Vec<RouteSlot>,
    clock: u64,
}

/// Counters behind the admission condition variable.
struct AdmissionState {
    active: usize,
    waiting: usize,
}

/// Everything the connection handlers share: the warm caches, the admission
/// controller, and the standing worker pool.
struct ServerShared {
    compiled: Arc<CompiledSetCache>,
    phase_chains: Arc<PhaseChainCache>,
    results: Arc<ResultCache>,
    routes: Mutex<RouteMemo>,
    route_capacity: usize,
    admission: Mutex<AdmissionState>,
    admission_cv: Condvar,
    /// `None` while the whole pool is checked out by a solve (or not yet
    /// attached); `Some` holds the idle workers.
    pool: Mutex<Option<Vec<PoolWorker>>>,
    pool_cv: Condvar,
    pool_size: usize,
    inproc_workers: usize,
    max_inflight: usize,
    max_queued: usize,
    solve_shards: usize,
    shutdown: AtomicBool,
    /// Monotonic heartbeat counter — each sweep's ping nonces are derived
    /// from it (clock-free, so nonce streams replay deterministically).
    heartbeats: AtomicU64,
    /// Pool workers culled by a heartbeat and replaced by a fresh dial-in,
    /// folded into the next answered query's `recovered_faults` provenance.
    pool_recovered: AtomicU64,
}

/// The std condvar API returns `LockResult`s; the vendored `parking_lot`
/// guards *are* std guards, so recover them poison-free the same way the
/// shim does.
fn ignore_poison<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Releases one admission slot on drop, waking a queued request.
struct AdmissionPermit<'a> {
    shared: &'a ServerShared,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.admission.lock();
        state.active = state.active.saturating_sub(1);
        drop(state);
        self.shared.admission_cv.notify_all();
    }
}

impl ServerShared {
    /// Takes a solve slot, queueing up to the deadline if all are busy.
    /// Returns the time spent queued; the matching release happens when the
    /// returned permit drops.
    fn admit(&self, deadline: Option<Instant>) -> Result<(AdmissionPermit<'_>, Duration), Refusal> {
        let started = Instant::now();
        let mut state = self.admission.lock();
        if state.active < self.max_inflight {
            state.active += 1;
            return Ok((AdmissionPermit { shared: self }, Duration::ZERO));
        }
        if state.waiting >= self.max_queued {
            return Err(Refusal {
                kind: RefusalKind::Busy,
                message: format!(
                    "server is at capacity: {} solve(s) in flight and {} queued \
                     (limits: --max-inflight {}, --max-queued {})",
                    state.active, state.waiting, self.max_inflight, self.max_queued
                ),
            });
        }
        state.waiting += 1;
        loop {
            if state.active < self.max_inflight {
                state.waiting -= 1;
                state.active += 1;
                return Ok((AdmissionPermit { shared: self }, started.elapsed()));
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    state.waiting -= 1;
                    return Err(Refusal {
                        kind: RefusalKind::Deadline,
                        message: format!(
                            "request deadline passed after {:?} in the admission queue",
                            started.elapsed()
                        ),
                    });
                }
            }
            let (guard, _) = ignore_poison(
                self.admission_cv
                    .wait_timeout(state, Duration::from_millis(50)),
            );
            state = guard;
        }
    }

    /// Routes `--engine auto` for a model: is the all-exponential fast path
    /// applicable?  The probe explores the state space, so its verdict is
    /// memoized per model fingerprint in a bounded LRU.  Returns the verdict
    /// plus (memo hits, memo misses) for provenance.
    fn route_auto(&self, model: &ModelSpec) -> (bool, usize, usize) {
        let fingerprint = model.fingerprint();
        {
            let mut memo = self.routes.lock();
            memo.clock += 1;
            let stamp = memo.clock;
            if let Some(slot) = memo
                .slots
                .iter_mut()
                .find(|slot| slot.fingerprint == fingerprint)
            {
                slot.stamp = stamp;
                return (slot.uniform, 1, 0);
            }
        }
        // The expensive probe runs outside the lock; concurrent first
        // queries for one model may both pay it, and the second insert below
        // then defers to the first.
        let uniform = uniformization_applies(model);
        let mut memo = self.routes.lock();
        memo.clock += 1;
        let stamp = memo.clock;
        if let Some(slot) = memo
            .slots
            .iter_mut()
            .find(|slot| slot.fingerprint == fingerprint)
        {
            slot.stamp = stamp;
            return (slot.uniform, 0, 1);
        }
        memo.slots.push(RouteSlot {
            fingerprint,
            uniform,
            stamp,
        });
        while memo.slots.len() > self.route_capacity.max(1) {
            let mut oldest = 0usize;
            let mut oldest_stamp = u64::MAX;
            for (i, slot) in memo.slots.iter().enumerate() {
                if slot.stamp < oldest_stamp {
                    oldest = i;
                    oldest_stamp = slot.stamp;
                }
            }
            memo.slots.swap_remove(oldest);
        }
        (uniform, 0, 1)
    }

    /// Takes the whole idle pool, waiting (deadline-capped) while another
    /// solve holds it or the workers have not attached yet.
    fn checkout_pool(&self, deadline: Option<Instant>) -> Result<Vec<PoolWorker>, PipelineError> {
        let mut slot = self.pool.lock();
        loop {
            if let Some(workers) = slot.take() {
                return Ok(workers);
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(transport_failure(
                        "request deadline exceeded while waiting for the worker pool",
                    ));
                }
            }
            let (guard, _) =
                ignore_poison(self.pool_cv.wait_timeout(slot, Duration::from_millis(50)));
            slot = guard;
        }
    }

    /// Puts the (surviving) workers back and wakes the next solve.
    fn return_pool(&self, workers: Vec<PoolWorker>) {
        let mut slot = self.pool.lock();
        *slot = Some(workers);
        drop(slot);
        self.pool_cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The standing-pool transport
// ---------------------------------------------------------------------------

/// A [`Transport`] over the server's resident worker processes.  Unlike
/// [`crate::TcpTransport`] there is no per-run rendezvous: `execute` checks
/// the attached sockets out of the shared pool, streams one job over each,
/// and checks the survivors back in — so it is `reusable` and multi-round
/// quantile refinement works over real processes.
struct PoolTransport {
    shared: Arc<ServerShared>,
    deadline: Option<Instant>,
}

impl Transport for PoolTransport {
    fn name(&self) -> &'static str {
        "tcp-pool"
    }

    fn parallelism(&self) -> usize {
        self.shared.pool_size.max(1)
    }

    fn reusable(&self) -> bool {
        true
    }

    fn execute(
        &self,
        plan: ExecutionPlan<'_>,
        on_message: &mut dyn FnMut(WorkerMessage),
    ) -> Result<TransportReport, PipelineError> {
        let specs = encode_plan_specs(&plan.evaluators)?;
        let total_items = plan.items.len();
        let queue = WorkQueue::with_chunk_size(plan.items, plan.chunk_size.max(1));
        let remaining = AtomicUsize::new(total_items);
        let method = plan.method.clone();

        let workers = self.shared.checkout_pool(self.deadline)?;
        let mut report = TransportReport::default();
        let mut failures: Vec<String> = Vec::new();

        // Open this request's job on every worker before dispatching chunks;
        // a worker whose job frame fails to send is dropped from the pool.
        let mut live: Vec<PoolWorker> = Vec::new();
        for mut worker in workers {
            match send_job(&mut worker.stream, worker.id, &method, &specs) {
                Ok(bytes) => {
                    report.bytes_on_wire += bytes;
                    report.messages += 1;
                    live.push(worker);
                }
                Err(e) => {
                    report.disconnects += 1;
                    failures.push(format!("worker {}: job dispatch failed: {e}", worker.id));
                }
            }
        }
        if live.is_empty() {
            self.shared.return_pool(Vec::new());
            return Err(transport_failure(format!(
                "{total_items} work item(s) left undone: no pool worker accepted the job: {}",
                failures.join("; ")
            )));
        }

        let (tx, rx) = unbounded::<WorkerMessage>();
        let deadline = self.deadline;
        let outcomes: Vec<(PoolWorker, bool, HandlerOutcome)> = crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(live.len());
            for mut worker in live {
                let queue = &queue;
                let remaining = &remaining;
                let tx = tx.clone();
                handles.push(scope.spawn(move |_| {
                    let mut outcome = HandlerOutcome::new(worker.id);
                    let in_sync = drive_connected_worker(
                        &mut worker.stream,
                        queue,
                        remaining,
                        deadline,
                        &tx,
                        &mut outcome,
                    );
                    (worker, in_sync, outcome)
                }));
            }
            drop(tx);

            for message in rx {
                on_message(message);
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("pool handler thread panicked"))
                .collect()
        })
        .expect("pool transport scope failed");

        // Workers still in protocol sync (their `done` frame was delivered —
        // including those released early by a deadline) go back in the pool;
        // anything else is dropped and its socket closes here.
        let mut keep = Vec::new();
        for (worker, in_sync, outcome) in outcomes {
            report.messages += outcome.messages;
            report.bytes_on_wire += outcome.bytes;
            if let Some(failure) = outcome.failure {
                if !in_sync {
                    report.disconnects += 1;
                }
                failures.push(format!("worker {}: {failure}", outcome.stats.id));
            }
            report.worker_stats.push(outcome.stats);
            if in_sync {
                keep.push(worker);
            }
        }
        self.shared.return_pool(keep);

        let undone = remaining.load(Ordering::SeqCst);
        if undone > 0 {
            return Err(transport_failure(format!(
                "{undone} work item(s) left undone: {}",
                failures.join("; ")
            )));
        }
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Where a request was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoutedEngine {
    Analytic,
    Distributed,
    Uniformization,
}

impl RoutedEngine {
    fn name(self) -> &'static str {
        match self {
            RoutedEngine::Analytic => "analytic",
            RoutedEngine::Distributed => "distributed",
            RoutedEngine::Uniformization => "uniformization",
        }
    }
}

fn refuse(kind: RefusalKind, message: impl Into<String>) -> QueryReply {
    QueryReply::Refusal(Refusal {
        kind,
        message: message.into(),
    })
}

/// Picks the engine for a request: explicit names pass through, `auto`
/// consults the memoized uniformization probe (the all-exponential fast path
/// when it applies, the distributed pipeline otherwise).
fn route_engine(
    shared: &ServerShared,
    engine: &str,
    model: &ModelSpec,
) -> Result<(RoutedEngine, usize, usize), Refusal> {
    match engine {
        "analytic" => Ok((RoutedEngine::Analytic, 0, 0)),
        "distributed" => Ok((RoutedEngine::Distributed, 0, 0)),
        "uniform" | "uniformization" => Ok((RoutedEngine::Uniformization, 0, 0)),
        "auto" => {
            let (uniform, hits, misses) = shared.route_auto(model);
            let routed = if uniform {
                RoutedEngine::Uniformization
            } else {
                RoutedEngine::Distributed
            };
            Ok((routed, hits, misses))
        }
        "sim" | "simulation" => Err(Refusal {
            kind: RefusalKind::Unsupported,
            message: "the query server does not run the simulation engine; \
                      run `smpq --engine sim` one-shot instead"
                .to_string(),
        }),
        other => Err(Refusal {
            kind: RefusalKind::Protocol,
            message: format!(
                "unknown engine '{other}' (the server accepts auto, analytic, \
                 distributed, uniform)"
            ),
        }),
    }
}

/// Runs the routed solve against the shared caches.  Distributed solves go
/// over the standing worker pool when one is attached, in-process threads
/// otherwise; either way the transform-value and compiled-model caches are
/// the server's long-lived ones.
fn solve_routed(
    shared: &Arc<ServerShared>,
    routed: RoutedEngine,
    model: &ModelSpec,
    method: &InversionMethod,
    requests: &[MeasureRequest],
    deadline: Option<Instant>,
) -> Result<Vec<MeasureReport>, EngineError> {
    match routed {
        RoutedEngine::Analytic => AnalyticEngine::new(model.clone(), method.clone())
            .with_compiled_cache(shared.compiled.clone())
            .solve(requests),
        RoutedEngine::Uniformization => UniformizationEngine::new(model.clone())
            .with_phase_cache(shared.phase_chains.clone())
            .solve(requests),
        RoutedEngine::Distributed => {
            let workers = if shared.pool_size > 0 {
                shared.pool_size
            } else {
                shared.inproc_workers.max(1)
            };
            let mut options = PipelineOptions::with_workers(workers);
            options.shared_cache = Some(shared.results.clone());
            if shared.solve_shards > 0 && shared.pool_size == 0 {
                // `serve --shards N`: row-shard onto loopback slice workers.
                // The resident tcp pool speaks the chunked s-point protocol,
                // not slice jobs, so sharding is in-process only (enforced at
                // the CLI).
                return DistributedEngine::sharded(
                    model.clone(),
                    method.clone(),
                    options,
                    shared.solve_shards,
                )
                .with_compiled_cache(shared.compiled.clone())
                .solve(requests);
            }
            let transport: Box<dyn Transport> = if shared.pool_size > 0 {
                Box::new(PoolTransport {
                    shared: shared.clone(),
                    deadline,
                })
            } else {
                Box::new(InProcess::new(workers).with_compiled_cache(shared.compiled.clone()))
            };
            DistributedEngine::with_transport(model.clone(), method.clone(), options, transport)
                .with_compiled_cache(shared.compiled.clone())
                .solve(requests)
        }
    }
}

/// Answers one decoded request end to end: route, parse measures, pass
/// admission, solve, and stamp the server-side provenance (queue wait,
/// model-cache traffic, rebuilds avoided by warm grid points).
fn answer_query(shared: &Arc<ServerShared>, request: &QueryRequest) -> QueryReply {
    let deadline = request.deadline.map(|d| Instant::now() + d);

    let Some(method) = InversionMethod::from_name(&request.method) else {
        return refuse(
            RefusalKind::Protocol,
            format!(
                "unknown inversion method '{}' (expected euler or laguerre)",
                request.method
            ),
        );
    };

    let (routed, memo_hits, memo_misses) =
        match route_engine(shared, &request.engine, &request.model) {
            Ok(routed) => routed,
            Err(refusal) => return QueryReply::Refusal(refusal),
        };

    // Re-parse the measure source text exactly as the one-shot CLI would for
    // the routed engine — the guarantee behind bitwise-identical answers.
    let mut requests = Vec::with_capacity(request.measures.len());
    for text in &request.measures {
        match MeasureRequest::parse_for_engine(text, routed.name(), MEASURE_KIND_NAMES) {
            Ok(parsed) => requests.push(parsed.with_t_points(&request.t_points)),
            Err(message) => return refuse(RefusalKind::Model, message),
        }
    }
    if requests.is_empty() {
        return refuse(RefusalKind::Protocol, "query carries no measures");
    }

    let (permit, queue_wait) = match shared.admit(deadline) {
        Ok(admitted) => admitted,
        Err(refusal) => return QueryReply::Refusal(refusal),
    };
    let outcome = solve_routed(shared, routed, &request.model, &method, &requests, deadline);
    drop(permit);

    if let Some(deadline) = deadline {
        if Instant::now() >= deadline {
            // Even a successful solve that finished late is refused: a
            // deadline is a promise about *when*, not just whether.
            return refuse(
                RefusalKind::Deadline,
                "request deadline exceeded before the solve completed",
            );
        }
    }

    match outcome {
        Ok(mut reports) => {
            if let Some(first) = reports.first_mut() {
                first.provenance.queue_wait = queue_wait;
                first.provenance.model_cache_hits += memo_hits;
                first.provenance.model_cache_misses += memo_misses;
                // Pool workers the heartbeat culled and replaced since the
                // last answer: surfaced here so recovery is visible to the
                // client that next touches the pool.
                first.provenance.recovered_faults +=
                    shared.pool_recovered.swap(0, Ordering::Relaxed);
            }
            for report in &mut reports {
                // Every grid point served from the warm result cache (or
                // shared with a sibling measure) is a kernel-matrix build
                // the server never ran — fold it into the rebuild counter
                // so warm queries are visibly cheap.
                let warm = (report.provenance.cache_hits + report.provenance.shared_hits) as u64;
                report.provenance.matrix_rebuilds_avoided += warm;
            }
            QueryReply::Reports(reports)
        }
        Err(EngineError::Model(message)) => refuse(RefusalKind::Model, message),
        Err(EngineError::Unsupported(message)) => refuse(RefusalKind::Unsupported, message),
        Err(EngineError::Analysis(message)) => {
            let kind = if message.contains("request deadline exceeded") {
                RefusalKind::Deadline
            } else {
                RefusalKind::Analysis
            };
            refuse(kind, message)
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The `smpq serve` daemon: a bound query listener, its worker rendezvous
/// listeners, and the warm state shared by every connection.
pub struct QueryServer {
    listener: TcpListener,
    worker_listeners: Vec<TcpListener>,
    shared: Arc<ServerShared>,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("listen", &self.listener.local_addr())
            .field("pool_size", &self.shared.pool_size)
            .finish()
    }
}

impl QueryServer {
    /// Binds the query listener and (for a TCP pool) one worker rendezvous
    /// listener per configured address.  Workers are not yet attached — call
    /// [`QueryServer::attach_workers`] before [`QueryServer::run`].
    ///
    /// Every listener is bound with `SO_REUSEADDR` (see
    /// [`crate::transport`]'s crash-restart binding): a daemon restarted
    /// after a crash reclaims its advertised addresses immediately instead
    /// of waiting out its predecessor's `TIME_WAIT` quarantine.
    pub fn bind(options: QueryServerOptions) -> std::io::Result<QueryServer> {
        let listener = crate::transport::bind_reusable_to(options.listen.as_str())?;
        let (worker_listeners, pool_size, inproc_workers, initial_pool) = match &options.pool {
            PoolSpec::Tcp(addrs) => {
                let mut listeners = Vec::with_capacity(addrs.len());
                for addr in addrs {
                    listeners.push(crate::transport::bind_reusable_to(addr.as_str())?);
                }
                let size = listeners.len();
                // The pool slot stays `None` until attach_workers fills it;
                // early queries wait on the condvar rather than failing.
                (listeners, size, 0, None)
            }
            PoolSpec::InProcess(threads) => (Vec::new(), 0, (*threads).max(1), Some(Vec::new())),
        };
        let shared = Arc::new(ServerShared {
            compiled: Arc::new(CompiledSetCache::new(options.cache_models)),
            phase_chains: Arc::new(PhaseChainCache::new(options.cache_models)),
            results: Arc::new(ResultCache::with_byte_limit(options.cache_result_bytes)),
            routes: Mutex::new(RouteMemo {
                slots: Vec::new(),
                clock: 0,
            }),
            route_capacity: options.cache_models.max(1),
            admission: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            admission_cv: Condvar::new(),
            pool: Mutex::new(initial_pool),
            pool_cv: Condvar::new(),
            pool_size,
            inproc_workers,
            max_inflight: options.max_inflight.max(1),
            max_queued: options.max_queued,
            solve_shards: options.solve_shards,
            shutdown: AtomicBool::new(false),
            heartbeats: AtomicU64::new(0),
            pool_recovered: AtomicU64::new(0),
        });
        Ok(QueryServer {
            listener,
            worker_listeners,
            shared,
        })
    }

    /// The bound query address (what clients dial).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound worker rendezvous addresses (what `smpq worker --connect`
    /// dials).  Empty for an in-process pool.
    pub fn worker_addrs(&self) -> std::io::Result<Vec<SocketAddr>> {
        self.worker_listeners
            .iter()
            .map(|listener| listener.local_addr())
            .collect()
    }

    /// Accepts one worker per rendezvous listener (blocking), verifies each
    /// handshake, and stocks the standing pool.  Returns the number of
    /// attached workers.  A no-op for an in-process pool.
    pub fn attach_workers(&self) -> std::io::Result<usize> {
        if self.worker_listeners.is_empty() {
            return Ok(0);
        }
        let mut workers = Vec::with_capacity(self.worker_listeners.len());
        for (id, listener) in self.worker_listeners.iter().enumerate() {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            expect_hello(&mut stream)?;
            workers.push(PoolWorker { id, stream });
        }
        let attached = workers.len();
        self.shared.return_pool(workers);
        Ok(attached)
    }

    /// Pings every *idle* pool worker and culls those that fail to echo the
    /// nonce, then re-accepts replacement workers on the vacated rendezvous
    /// listeners (non-blocking: a replacement attaches on whichever later
    /// sweep finds it dialing).  A no-op for an in-process pool or while a
    /// solve holds the pool checked out — heartbeats never contend with
    /// work.  Replacements are folded into the next answered query's
    /// `recovered_faults` provenance.
    pub fn heartbeat_workers(&self) -> PoolHealth {
        let mut health = PoolHealth::default();
        if self.worker_listeners.is_empty() {
            return health;
        }
        let workers = {
            let mut slot = self.shared.pool.lock();
            match slot.take() {
                Some(workers) => workers,
                None => return health, // a solve holds the pool
            }
        };
        let mut live = Vec::with_capacity(workers.len());
        for mut worker in workers {
            health.checked += 1;
            let tick = self.shared.heartbeats.fetch_add(1, Ordering::Relaxed);
            let nonce = splitmix64(tick ^ ((worker.id as u64) << 32));
            // A kill -9'd worker answers the ping with EOF immediately; the
            // short timeout only bounds a *hung* (connected but wedged) one.
            let _ = worker.stream.set_read_timeout(Some(HEARTBEAT_TIMEOUT));
            let healthy = write_frame(&mut worker.stream, &Frame::Ping { nonce }).is_ok()
                && matches!(
                    read_frame(&mut worker.stream),
                    Ok((Frame::Pong { nonce: echoed }, _)) if echoed == nonce
                );
            let _ = worker.stream.set_read_timeout(Some(IO_TIMEOUT));
            if healthy {
                live.push(worker);
            } else {
                health.dead += 1;
            }
        }
        // Every vacant rendezvous slot — vacated by this sweep or by a solve
        // that dropped an out-of-sync worker — offers itself to a dialing
        // replacement.
        for (id, listener) in self.worker_listeners.iter().enumerate() {
            if live.iter().any(|w| w.id == id) {
                continue;
            }
            if let Some(worker) = accept_replacement(listener, id) {
                live.push(worker);
                health.replaced += 1;
            }
        }
        self.shared
            .pool_recovered
            .fetch_add(health.replaced as u64, Ordering::Relaxed);
        self.shared.return_pool(live);
        health
    }

    /// Serves queries until a client sends [`SHUTDOWN_REQUEST`], then drains
    /// the in-flight solves and returns.  Each accepted connection gets its
    /// own thread; the solve concurrency cap is the admission controller,
    /// not the thread count.  Between accepts the idle loop heartbeats the
    /// standing worker pool about once a second.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut idle_ticks = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(IO_TIMEOUT))?;
                    stream.set_write_timeout(Some(IO_TIMEOUT))?;
                    let shared = self.shared.clone();
                    std::thread::spawn(move || serve_client(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    idle_ticks += 1;
                    if idle_ticks.is_multiple_of(HEARTBEAT_IDLE_TICKS) {
                        self.heartbeat_workers();
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: give in-flight solves a bounded grace period to finish.
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let idle = {
                let state = self.shared.admission.lock();
                state.active == 0 && state.waiting == 0
            };
            if idle || Instant::now() >= drain_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        Ok(())
    }
}

/// One client connection: read a payload, answer it, repeat until the client
/// hangs up or asks for shutdown.
fn serve_client(shared: Arc<ServerShared>, mut stream: TcpStream) {
    loop {
        let payload = match read_payload(&mut stream) {
            Ok((payload, _)) => payload,
            Err(_) => return, // client hung up (or timed out): this connection is done
        };
        if payload.trim() == SHUTDOWN_REQUEST {
            let _ = write_payload(&mut stream, SHUTDOWN_ACK);
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
        let reply = match decode_query_request(&payload) {
            Ok(request) => answer_query(&shared, &request),
            Err(e) => refuse(RefusalKind::Protocol, format!("malformed query: {e}")),
        };
        if write_payload(&mut stream, &encode_query_reply(&reply)).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voting() -> ModelSpec {
        ModelSpec::Voting {
            voters: 3,
            polling: 1,
            central: 1,
        }
    }

    fn sample_request() -> QueryRequest {
        QueryRequest {
            model: voting(),
            engine: "auto".to_string(),
            method: "euler".to_string(),
            deadline: Some(Duration::from_millis(2500)),
            t_points: vec![1.0, 2.5, 14.0],
            measures: vec![
                "density:p2>=2".to_string(),
                "quantile:p2>=2@0.5,0.9".to_string(),
            ],
        }
    }

    #[test]
    fn query_request_round_trips() {
        let request = sample_request();
        let decoded = decode_query_request(&encode_query_request(&request)).expect("decodes");
        assert_eq!(decoded, request);
    }

    #[test]
    fn query_request_without_deadline_round_trips() {
        let request = QueryRequest {
            deadline: None,
            ..sample_request()
        };
        let decoded = decode_query_request(&encode_query_request(&request)).expect("decodes");
        assert_eq!(decoded.deadline, None);
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for payload in [
            "",
            "reports v=1 n=0\n",
            "query v=1\n",
            "query v=9 engine=auto method=euler deadline_ms=0 measures=0 tpoints=0\nmodel x\ngrid\n",
            "query v=1 engine=auto method=euler deadline_ms=0 measures=1 tpoints=2\nmodel voting:3:1:1\ngrid 3ff0000000000000\n",
            "query v=1 engine=auto method=euler deadline_ms=0 measures=2 tpoints=0\nmodel voting:3:1:1\ngrid\nmeasure density:p2>=2\n",
        ] {
            assert!(
                decode_query_request(payload).is_err(),
                "payload should be rejected: {payload:?}"
            );
        }
    }

    #[test]
    fn reply_round_trips_reports_with_full_provenance() {
        let mut provenance = Provenance::local("distributed", "tcp-pool");
        provenance.workers = 2;
        provenance.states = Some(37);
        provenance.messages = 12;
        provenance.bytes_on_wire = 4096;
        provenance.evaluations = 99;
        provenance.matrix_rebuilds_avoided = 7;
        provenance.pooled_lst_evaluations = 55;
        provenance.cache_hits = 3;
        provenance.shared_hits = 2;
        provenance.wall = Duration::from_micros(1234);
        provenance.error_bound = Some(1e-9);
        provenance.queue_wait = Duration::from_millis(5);
        provenance.model_cache_hits = 4;
        provenance.model_cache_misses = 1;
        provenance.shards = 3;
        provenance.shard_states = vec![13, 12, 12];
        provenance.halo_bytes = 2048;
        provenance.exchange_rounds = 17;
        let reports = vec![
            MeasureReport {
                name: "density:p2>=2".to_string(),
                kind: MeasureKind::Density,
                points: vec![1.0, 2.0],
                values: vec![0.25, 0.125],
                provenance: provenance.clone(),
            },
            MeasureReport {
                name: "quantile:p2>=2@0.5,0.9".to_string(),
                kind: MeasureKind::Quantile {
                    probs: vec![0.5, 0.9],
                },
                points: vec![0.5, 0.9],
                values: vec![3.5, 7.25],
                provenance: Provenance::local("uniformization", "phase-ctmc"),
            },
            MeasureReport {
                name: "moment:p2>=2@2".to_string(),
                kind: MeasureKind::Moment { order: 2 },
                points: vec![2.0],
                values: vec![42.0],
                provenance,
            },
        ];
        let encoded = encode_query_reply(&QueryReply::Reports(reports.clone()));
        let decoded = match decode_query_reply(&encoded).expect("decodes") {
            QueryReply::Reports(decoded) => decoded,
            QueryReply::Refusal(refusal) => panic!("unexpected refusal: {refusal}"),
        };
        assert_eq!(decoded.len(), reports.len());
        for (d, r) in decoded.iter().zip(&reports) {
            assert_eq!(d.name, r.name);
            assert_eq!(d.kind, r.kind);
            assert_eq!(d.points, r.points);
            assert_eq!(d.values, r.values);
            let (dp, rp) = (&d.provenance, &r.provenance);
            assert_eq!(dp.engine, rp.engine);
            assert_eq!(dp.backend, rp.backend);
            assert_eq!(dp.workers, rp.workers);
            assert_eq!(dp.states, rp.states);
            assert_eq!(dp.messages, rp.messages);
            assert_eq!(dp.bytes_on_wire, rp.bytes_on_wire);
            assert_eq!(dp.evaluations, rp.evaluations);
            assert_eq!(dp.matrix_rebuilds_avoided, rp.matrix_rebuilds_avoided);
            assert_eq!(dp.pooled_lst_evaluations, rp.pooled_lst_evaluations);
            assert_eq!(dp.cache_hits, rp.cache_hits);
            assert_eq!(dp.shared_hits, rp.shared_hits);
            assert_eq!(dp.wall, rp.wall);
            assert_eq!(dp.error_bound, rp.error_bound);
            assert_eq!(dp.queue_wait, rp.queue_wait);
            assert_eq!(dp.model_cache_hits, rp.model_cache_hits);
            assert_eq!(dp.model_cache_misses, rp.model_cache_misses);
            assert_eq!(dp.shards, rp.shards);
            assert_eq!(dp.shard_states, rp.shard_states);
            assert_eq!(dp.halo_bytes, rp.halo_bytes);
            assert_eq!(dp.exchange_rounds, rp.exchange_rounds);
        }
    }

    #[test]
    fn refusals_round_trip_every_kind() {
        for kind in [
            RefusalKind::Model,
            RefusalKind::Unsupported,
            RefusalKind::Analysis,
            RefusalKind::Busy,
            RefusalKind::Deadline,
            RefusalKind::Protocol,
        ] {
            let refusal = Refusal {
                kind,
                message: format!("details for {} with spaces / % signs", kind.name()),
            };
            let encoded = encode_query_reply(&QueryReply::Refusal(refusal.clone()));
            match decode_query_reply(&encoded).expect("decodes") {
                QueryReply::Refusal(decoded) => assert_eq!(decoded, refusal),
                QueryReply::Reports(_) => panic!("expected a refusal"),
            }
        }
    }

    fn bare_shared(max_inflight: usize, max_queued: usize) -> ServerShared {
        ServerShared {
            compiled: Arc::new(CompiledSetCache::new(4)),
            phase_chains: Arc::new(PhaseChainCache::new(4)),
            results: Arc::new(ResultCache::with_byte_limit(1 << 20)),
            routes: Mutex::new(RouteMemo {
                slots: Vec::new(),
                clock: 0,
            }),
            route_capacity: 2,
            admission: Mutex::new(AdmissionState {
                active: 0,
                waiting: 0,
            }),
            admission_cv: Condvar::new(),
            pool: Mutex::new(Some(Vec::new())),
            pool_cv: Condvar::new(),
            pool_size: 0,
            inproc_workers: 1,
            max_inflight,
            max_queued,
            solve_shards: 0,
            shutdown: AtomicBool::new(false),
            heartbeats: AtomicU64::new(0),
            pool_recovered: AtomicU64::new(0),
        }
    }

    #[test]
    fn admission_refuses_busy_beyond_queue_cap_and_releases_on_drop() {
        let shared = bare_shared(1, 0);
        let (permit, wait) = shared.admit(None).expect("first admit");
        assert_eq!(wait, Duration::ZERO);
        // In flight is full and the queue cap is zero: refuse immediately.
        match shared.admit(Some(Instant::now() + Duration::from_secs(5))) {
            Err(refusal) => assert_eq!(refusal.kind, RefusalKind::Busy),
            Ok(_) => panic!("second admit should be refused busy"),
        }
        drop(permit);
        let (_permit, _) = shared.admit(None).expect("slot freed by drop");
    }

    #[test]
    fn admission_queue_times_out_against_the_deadline() {
        let shared = bare_shared(1, 4);
        let (_permit, _) = shared.admit(None).expect("first admit");
        let started = Instant::now();
        match shared.admit(Some(Instant::now() + Duration::from_millis(120))) {
            Err(refusal) => assert_eq!(refusal.kind, RefusalKind::Deadline),
            Ok(_) => panic!("queued admit should hit its deadline"),
        }
        assert!(started.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn route_memo_hits_on_repeat_and_evicts_lru() {
        let shared = bare_shared(1, 1); // route_capacity = 2
        let a = ModelSpec::Voting {
            voters: 2,
            polling: 1,
            central: 1,
        };
        let b = ModelSpec::Voting {
            voters: 3,
            polling: 1,
            central: 1,
        };
        let c = ModelSpec::Voting {
            voters: 4,
            polling: 1,
            central: 1,
        };
        assert_eq!(shared.route_auto(&a), (false, 0, 1), "first probe misses");
        assert_eq!(shared.route_auto(&a), (false, 1, 0), "repeat probe hits");
        assert_eq!(shared.route_auto(&b), (false, 0, 1));
        // Touch `a`, insert `c`: the LRU entry is now `b`.
        assert_eq!(shared.route_auto(&a), (false, 1, 0));
        assert_eq!(shared.route_auto(&c), (false, 0, 1));
        assert_eq!(shared.route_auto(&a), (false, 1, 0), "a survived eviction");
        assert_eq!(shared.route_auto(&b), (false, 0, 1), "b was evicted");
    }

    /// A one-token three-state all-exponential ring, so `--engine auto`'s
    /// uniformization probe says yes.
    fn exp_ring() -> ModelSpec {
        ModelSpec::Dnamaca(
            r"
\place{a}{1}
\place{b}{0}
\place{c}{0}

\transition{ab}{
    \condition{a > 0}
    \action{ next->a = a - 1; next->b = b + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(2.0, s); }
}
\transition{bc}{
    \condition{b > 0}
    \action{ next->b = b - 1; next->c = c + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(1.0, s); }
}
\transition{ca}{
    \condition{c > 0}
    \action{ next->c = c - 1; next->a = a + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(3.0, s); }
}
"
            .to_string(),
        )
    }

    #[test]
    fn auto_routes_all_exponential_models_to_uniformization() {
        let shared = bare_shared(1, 1);
        let exp_model = exp_ring();
        let (routed, _, misses) = route_engine(&shared, "auto", &exp_model).expect("auto routes");
        assert_eq!(routed, RoutedEngine::Uniformization);
        assert_eq!(misses, 1);
        let (routed, hits, _) = route_engine(&shared, "auto", &exp_model).expect("auto routes");
        assert_eq!(routed, RoutedEngine::Uniformization);
        assert_eq!(hits, 1);
        let (routed, _, _) = route_engine(&shared, "auto", &voting()).expect("auto routes");
        assert_eq!(routed, RoutedEngine::Distributed);
    }

    #[test]
    fn simulation_and_unknown_engines_are_refused() {
        let shared = bare_shared(1, 1);
        match route_engine(&shared, "sim", &voting()) {
            Err(refusal) => assert_eq!(refusal.kind, RefusalKind::Unsupported),
            Ok(_) => panic!("sim should be refused"),
        }
        match route_engine(&shared, "warp-drive", &voting()) {
            Err(refusal) => assert_eq!(refusal.kind, RefusalKind::Protocol),
            Ok(_) => panic!("unknown engine should be refused"),
        }
    }
}
