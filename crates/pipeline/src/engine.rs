//! The four measure engines behind the typed query layer.
//!
//! `smp_core::query` defines *what* can be asked ([`MeasureRequest`]) and what
//! comes back ([`MeasureReport`]); this module supplies the four
//! implementations of its [`Engine`] trait — the paper's full validation
//! triangle behind one call, plus a third independent oracle for the
//! all-exponential special case:
//!
//! * [`AnalyticEngine`] — in-process Laplace inversion: compile the model,
//!   evaluate the transform sequentially, invert.  The single-machine
//!   reference.
//! * [`DistributedEngine`] — the same numbers through the master–worker
//!   pipeline over any [`Transport`] (worker threads, simulated latency, TCP
//!   worker processes).  **Bitwise identical** to the analytic engine: both
//!   build their evaluators from the same [`TransformSpec`]s and invert with
//!   the same post-processing.
//! * [`SimulationEngine`] — discrete-event simulation of the same high-level
//!   model (wrapping `smp-simulator` with seed, replication and thread
//!   control), reporting confidence bounds so the deterministic engines can be
//!   cross-validated against it — the paper's "Simulation" curves of Figs. 4
//!   and 6 as an API, and the substance of `smpq --validate-sim`.
//! * [`UniformizationEngine`] — the all-exponential special case: when every
//!   holding time is structurally exponential the SMP reduces exactly to a
//!   phase-space CTMC (`smp_core::uniform`) and every measure kind is
//!   answered by Poisson-weighted power iteration (plus exact linear solves
//!   for moments) — no Laplace inversion, and an a-priori truncation bound in
//!   `Provenance::error_bound`.  Models with any non-exponential holding time
//!   are rejected with an `Unsupported` error.
//!
//! Derived measure kinds are layered on shared machinery so engines cannot
//! drift apart: quantiles run `smp_laplace::quantiles_from_cdf` over a
//! CDF-on-grid provider (sequential inversion for the analytic engine, one
//! pipeline run per refinement round for the distributed engine), and
//! means/moments read the transform's derivatives at the origin with one
//! finite-difference stencil used by both.

use crate::batch::{BatchJob, MeasureKind as CurveKind, MeasureSpec};
use crate::checkpoint::{self, CheckpointWriter};
use crate::master::{DistributedPipeline, PipelineOptions};
use crate::shard::{ShardedOutcome, SliceFleet, SolveRecovery};
use crate::transform::{
    CompiledEvaluator, CompiledModelSet, CompiledSetCache, ModelSpec, ResolveTarget,
    TargetResolveError, TransformSpec,
};
use crate::transport::{InProcess, SimulatedLatency, TcpTransport, Transport};
use smp_core::query::{
    Engine, EngineError, MeasureKind, MeasureReport, MeasureRequest, Provenance,
};
use smp_core::uniform::{self, PhaseCtmc};
use smp_core::StateSet;
use smp_laplace::{quantiles_from_cdf, InversionMethod, SPointPlan, TransformValues};
use smp_numeric::Complex64;
use smp_simulator::{
    simulate_passage_times, simulate_transient, PassageSimulationOptions,
    TransientSimulationOptions,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Parses the model and checks every request's target place against it, so
/// that a bad place name fails as a *model* error before any engine work (and
/// before a TCP job ships).  Returns the parsed net for further use.
fn validate_requests(
    model: &ModelSpec,
    requests: &[MeasureRequest],
) -> Result<smp_smspn::SmSpn, EngineError> {
    let source = model.source();
    let net = smp_dnamaca::parse_model(&source).map_err(|e| EngineError::Model(e.to_string()))?;
    for request in requests {
        if net.place_index(&request.target.place).is_none() {
            return Err(EngineError::Model(format!(
                "place '{}' does not exist in the model",
                request.target.place
            )));
        }
        if request.kind.is_curve() && request.t_points.len() < 2 {
            return Err(EngineError::Analysis(format!(
                "curve measure '{}' needs a time grid of at least two points",
                request.name()
            )));
        }
    }
    Ok(net)
}

/// The serializable transform spec a request's values derive from.
fn transform_spec_for(model: &ModelSpec, request: &MeasureRequest) -> TransformSpec {
    if request.kind.uses_passage_transform() {
        TransformSpec::passage(model.clone(), request.target.clone())
    } else {
        TransformSpec::transient(model.clone(), request.target.clone())
    }
}

/// The batch-level post-processing kind of a curve request.
fn curve_kind_of(kind: &MeasureKind) -> CurveKind {
    match kind {
        MeasureKind::Density => CurveKind::Density,
        MeasureKind::Cdf => CurveKind::Cdf,
        MeasureKind::Transient => CurveKind::Transient,
        _ => unreachable!("not a curve kind"),
    }
}

/// The quantile search horizons of a request: start at the request grid's last
/// point (the caller's idea of the interesting time scale) and allow a
/// 2¹²-fold expansion before giving up.
fn quantile_horizons(request: &MeasureRequest) -> (f64, f64) {
    let initial = request
        .t_points
        .last()
        .copied()
        .filter(|t| *t > 0.0)
        .unwrap_or(1.0);
    (initial, initial * 4096.0)
}

/// Evaluates a plan's `s`-points through a compiled evaluator into a value
/// shard, counting the evaluations.
fn eval_plan(
    plan: &SPointPlan,
    evaluator: &CompiledEvaluator<'_>,
    evaluations: &mut usize,
) -> Result<TransformValues, EngineError> {
    let mut shard = TransformValues::new();
    for &s in plan.s_points() {
        let value = evaluator
            .eval(s)
            .map_err(|e| EngineError::Analysis(format!("evaluation failed at s = {s}: {e}")))?;
        shard.insert(s, value);
        *evaluations += 1;
    }
    Ok(shard)
}

fn binomial(n: u32, k: u32) -> f64 {
    (1..=k).fold(1.0, |acc, i| acc * f64::from(n - k + i) / f64::from(i))
}

/// `E[Tᵏ] = (−1)ᵏ L⁽ᵏ⁾(0)`: the k-th raw moment of a passage time from the
/// k-th central finite difference of its density transform at the origin.
/// One implementation shared by the analytic and distributed engines, so the
/// two are bitwise identical by construction.
fn moment_from_transform(
    evaluator: &CompiledEvaluator<'_>,
    order: u32,
    evaluations: &mut usize,
) -> Result<f64, EngineError> {
    if !(1..=4).contains(&order) {
        return Err(EngineError::Unsupported(format!(
            "moment order {order} is out of range (supported: 1..=4)"
        )));
    }
    // Step sizes balance truncation against cancellation per stencil order.
    let h = match order {
        1 => 1e-5,
        2 => 1e-4,
        3 => 1e-3,
        _ => 3e-3,
    };
    let k = order as i32;
    let mut acc = 0.0;
    for j in 0..=order {
        let coeff = if j % 2 == 0 { 1.0 } else { -1.0 } * binomial(order, j);
        let x = (f64::from(order) / 2.0 - f64::from(j)) * h;
        let value = evaluator
            .eval(Complex64::real(x))
            .map_err(|e| EngineError::Analysis(format!("evaluation failed at s = {x}: {e}")))?;
        *evaluations += 1;
        acc += coeff * value.re;
    }
    let derivative = acc / h.powi(k);
    Ok(if order.is_multiple_of(2) {
        derivative
    } else {
        -derivative
    })
}

/// Turns the generic quantile search's per-probability options into values,
/// failing loudly on an unreachable probability.
fn require_quantiles(
    name: &str,
    probs: &[f64],
    found: Vec<Option<f64>>,
    max_horizon: f64,
) -> Result<Vec<f64>, EngineError> {
    probs
        .iter()
        .zip(found)
        .map(|(&p, q)| {
            q.ok_or_else(|| {
                EngineError::Analysis(format!(
                    "quantile p = {p} of '{name}' not reached within the search horizon \
                     {max_horizon:.3} (defective or very heavy-tailed passage)"
                ))
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// AnalyticEngine
// ---------------------------------------------------------------------------

/// In-process Laplace inversion: the sequential reference engine.
///
/// Compiles the model once per [`Engine::solve`] call (one state-space
/// exploration shared by all requests and by requests over the same target),
/// evaluates every transform point in the calling thread, and inverts with the
/// same post-processing the distributed pipeline uses — which is why the two
/// agree bitwise.
#[derive(Debug, Clone)]
pub struct AnalyticEngine {
    model: ModelSpec,
    method: InversionMethod,
    compiled_cache: Option<Arc<CompiledSetCache>>,
}

impl AnalyticEngine {
    /// An analytic engine over `model` using `method` for inversion planning.
    pub fn new(model: ModelSpec, method: InversionMethod) -> Self {
        AnalyticEngine {
            model,
            method,
            compiled_cache: None,
        }
    }

    /// Serves compiled model sets from `cache` instead of re-exploring the
    /// state space on every solve; hits and misses are reported in the first
    /// report's provenance (`model_cache_hits` / `model_cache_misses`).
    pub fn with_compiled_cache(mut self, cache: Arc<CompiledSetCache>) -> Self {
        self.compiled_cache = Some(cache);
        self
    }
}

/// Solves one request against a compiled evaluator — the sequential core
/// shared by [`AnalyticEngine`] and the [`DistributedEngine`]'s master-side
/// fallback.  Returns `(points, values, evaluations)`.
fn solve_locally(
    request: &MeasureRequest,
    evaluator: &CompiledEvaluator<'_>,
    method: &InversionMethod,
) -> Result<(Vec<f64>, Vec<f64>, usize), EngineError> {
    let mut evaluations = 0usize;
    match &request.kind {
        MeasureKind::Density | MeasureKind::Cdf | MeasureKind::Transient => {
            let plan = SPointPlan::new(method.clone(), &request.t_points);
            let shard = eval_plan(&plan, evaluator, &mut evaluations)?;
            let values = curve_kind_of(&request.kind).postprocess(&plan, &shard);
            Ok((request.t_points.clone(), values, evaluations))
        }
        MeasureKind::Quantile { probs } => {
            let (initial, max_horizon) = quantile_horizons(request);
            let found = quantiles_from_cdf(probs, initial, max_horizon, &mut |ts: &[f64]| {
                let plan = SPointPlan::new(method.clone(), ts);
                let shard = eval_plan(&plan, evaluator, &mut evaluations)?;
                Ok::<Vec<f64>, EngineError>(CurveKind::Cdf.postprocess(&plan, &shard))
            })?;
            let values = require_quantiles(&request.name(), probs, found, max_horizon)?;
            Ok((probs.clone(), values, evaluations))
        }
        MeasureKind::Mean => {
            let mean = moment_from_transform(evaluator, 1, &mut evaluations)?;
            Ok((vec![1.0], vec![mean], evaluations))
        }
        MeasureKind::Moment { order } => {
            let moment = moment_from_transform(evaluator, *order, &mut evaluations)?;
            Ok((vec![f64::from(*order)], vec![moment], evaluations))
        }
    }
}

/// Compiles the unique transform specs of `requests`, returning the set, a
/// per-request index into it (so repeated targets share one solver), and the
/// number of model-cache hits and misses (a hit or miss per distinct model;
/// without a cache every distinct model is a miss — a fresh exploration).
fn compile_unique_specs(
    model: &ModelSpec,
    requests: &[&MeasureRequest],
    cache: Option<&CompiledSetCache>,
) -> Result<(Arc<CompiledModelSet>, Vec<usize>, usize, usize), EngineError> {
    let mut specs: Vec<TransformSpec> = Vec::new();
    let mut index_of = Vec::with_capacity(requests.len());
    for request in requests {
        let spec = transform_spec_for(model, request);
        let index = match specs.iter().position(|s| *s == spec) {
            Some(found) => found,
            None => {
                specs.push(spec);
                specs.len() - 1
            }
        };
        index_of.push(index);
    }
    let (set, hit) = match cache {
        Some(cache) => cache
            .get_or_compile(&specs)
            .map_err(EngineError::Analysis)?,
        None => (
            Arc::new(CompiledModelSet::compile(&specs).map_err(EngineError::Analysis)?),
            false,
        ),
    };
    let (hits, misses) = if hit {
        (set.num_models(), 0)
    } else {
        (0, set.num_models())
    };
    Ok((set, index_of, hits, misses))
}

impl Engine for AnalyticEngine {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn solve(&self, requests: &[MeasureRequest]) -> Result<Vec<MeasureReport>, EngineError> {
        validate_requests(&self.model, requests)?;
        let refs: Vec<&MeasureRequest> = requests.iter().collect();
        let (set, spec_of, model_hits, model_misses) =
            compile_unique_specs(&self.model, &refs, self.compiled_cache.as_deref())?;
        let evaluators = set.evaluators().map_err(EngineError::Analysis)?;
        let states = Some(set.num_states());
        let mut reports = Vec::with_capacity(requests.len());
        for (request, &si) in requests.iter().zip(&spec_of) {
            let started = Instant::now();
            let stats_before = evaluators[si].hotpath_stats();
            let (points, values, evaluations) =
                solve_locally(request, &evaluators[si], &self.method)?;
            let hotpath = evaluators[si].hotpath_stats().since(stats_before);
            let mut provenance = Provenance::local("analytic", "sequential");
            provenance.states = states;
            provenance.evaluations = evaluations;
            provenance.matrix_rebuilds_avoided = hotpath.matrix_rebuilds_avoided;
            provenance.pooled_lst_evaluations = hotpath.pooled_lst_evaluations;
            provenance.wall = started.elapsed();
            // Like the wire counters, model-cache traffic is run-level and
            // attributed to the first report of the solve.
            if reports.is_empty() {
                provenance.model_cache_hits = model_hits;
                provenance.model_cache_misses = model_misses;
            }
            reports.push(MeasureReport {
                name: request.name(),
                kind: request.kind.clone(),
                points,
                values,
                provenance,
            });
        }
        Ok(reports)
    }
}

// ---------------------------------------------------------------------------
// DistributedEngine
// ---------------------------------------------------------------------------

/// The distributed pipeline behind the typed query layer: one engine, three
/// wire backends (worker threads, simulated latency, TCP worker processes).
///
/// Curve measures of one solve are planned as a single [`BatchJob`] — shared
/// transform keys, union `s`-point planning, measure-keyed cache and
/// checkpoint all apply — and executed over the configured [`Transport`].
/// Quantiles run the shared search of `smp_laplace::quantiles_from_cdf` with
/// one *pipeline run per refinement round* on reusable (in-process)
/// transports; with a configured checkpoint the rounds warm each other and
/// any later run.  The TCP transport is single-rendezvous (workers dial in
/// once per run), so quantile refinement and the mean/moment stencils are
/// evaluated master-side there — same shared code paths, same bitwise
/// values, noted in the report's provenance backend.
pub struct DistributedEngine {
    model: ModelSpec,
    method: InversionMethod,
    pipeline: DistributedPipeline,
    transport: Box<dyn Transport>,
    compiled_cache: Option<Arc<CompiledSetCache>>,
    sharded: Option<ShardBackend>,
    /// The configured checkpoint path, kept for the sharded solve path (the
    /// unsharded pipeline reads it from its own options): per-point value
    /// records plus the `<path>.shard` mid-point iterate sidecar.
    checkpoint_path: Option<PathBuf>,
    /// Whether a sharded solve pre-seeds its memo from the checkpoint file;
    /// off when a shared cache is configured (the cache *is* the restored
    /// state), mirroring the unsharded pipeline's restore rule.
    restore_checkpoint: bool,
}

/// How a row-sharded [`DistributedEngine`] reaches its slice workers.
///
/// Either way the state space is partitioned into contiguous row blocks — a
/// pure function of the state count and the shard count — and each worker
/// explores, compiles and iterates only its own `O(N/shards)` slice, with a
/// per-round boundary (halo) exchange carrying the few vector entries that
/// cross block edges (see [`crate::shard`]).
pub enum ShardBackend {
    /// In-process loopback slice workers (`--shards N` without a cluster):
    /// the full frame grammar runs, bytes are accounted as if shipped.
    InProcess {
        /// Number of contiguous row shards (and loopback workers).
        shards: usize,
    },
    /// One slice-worker process per rendezvous address of a bound
    /// [`TcpTransport`] (`smpq worker --connect host:port` on each machine).
    Tcp(TcpTransport),
}

impl std::fmt::Debug for DistributedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedEngine")
            .field("model", &self.model)
            .field("backend", &self.backend())
            .finish()
    }
}

impl DistributedEngine {
    /// A distributed engine over the in-process thread backend (or the
    /// simulated-latency backend when `options.simulated_latency` is set) —
    /// the default deployment.
    pub fn in_process(model: ModelSpec, method: InversionMethod, options: PipelineOptions) -> Self {
        let workers = options.workers.max(1);
        let transport: Box<dyn Transport> = match options.simulated_latency {
            Some(latency) => Box::new(SimulatedLatency::new(workers, latency)),
            None => Box::new(InProcess::new(workers)),
        };
        Self::with_transport(model, method, options, transport)
    }

    /// A distributed engine over an explicit transport (e.g. a bound
    /// [`crate::TcpTransport`] whose rendezvous addresses worker processes
    /// dial).
    pub fn with_transport(
        model: ModelSpec,
        method: InversionMethod,
        options: PipelineOptions,
        transport: Box<dyn Transport>,
    ) -> Self {
        let checkpoint_path = options.checkpoint_path.clone();
        let restore_checkpoint = options.shared_cache.is_none();
        DistributedEngine {
            model,
            method: method.clone(),
            pipeline: DistributedPipeline::new(method, options),
            transport,
            compiled_cache: None,
            sharded: None,
            checkpoint_path,
            restore_checkpoint,
        }
    }

    /// A row-sharded engine over in-process loopback slice workers: the state
    /// space is split into `shards` contiguous row blocks and every passage
    /// measure runs as lockstep distributed SpMV with boundary exchange —
    /// bitwise identical to the unsharded engines for any shard count.
    pub fn sharded(
        model: ModelSpec,
        method: InversionMethod,
        options: PipelineOptions,
        shards: usize,
    ) -> Self {
        let mut engine = Self::in_process(model, method, options);
        engine.sharded = Some(ShardBackend::InProcess {
            shards: shards.max(1),
        });
        engine
    }

    /// A row-sharded engine whose slice workers are `smpq worker` processes
    /// dialing the rendezvous addresses of `transport` — one shard per
    /// address, each holding only its own row slice of the model.
    pub fn sharded_tcp(
        model: ModelSpec,
        method: InversionMethod,
        options: PipelineOptions,
        transport: TcpTransport,
    ) -> Self {
        let mut engine = Self::in_process(model, method, options);
        engine.sharded = Some(ShardBackend::Tcp(transport));
        engine
    }

    /// Serves *master-side* compiled model sets (quantile fallbacks and
    /// mean/moment stencils) from `cache`.  The transport's own compiles are
    /// cached separately — attach the same cache to an
    /// [`InProcess`]/[`SimulatedLatency`] backend via their
    /// `with_compiled_cache` builders, as the query server does.
    pub fn with_compiled_cache(mut self, cache: Arc<CompiledSetCache>) -> Self {
        self.compiled_cache = Some(cache);
        self
    }

    /// The backend name (`in-process`, `sim-latency`, `tcp`, or the sharded
    /// variants `sharded-loopback` / `sharded-tcp`).
    pub fn backend(&self) -> &'static str {
        match &self.sharded {
            Some(ShardBackend::InProcess { .. }) => "sharded-loopback",
            Some(ShardBackend::Tcp(_)) => "sharded-tcp",
            None => self.transport.name(),
        }
    }
}

/// Run-level counters of a sharded solve, folded from every
/// [`ShardedOutcome`] the fleet produced and attributed to the solve's first
/// report (like the unsharded wire counters, so summing a solve's reports
/// gives true totals).
#[derive(Default)]
struct ShardTotals {
    messages: usize,
    bytes_on_wire: u64,
    halo_bytes: u64,
    exchange_rounds: u64,
    states: Option<usize>,
    shard_states: Vec<usize>,
    retries: u64,
    recovered_faults: u64,
    resumed_rounds: u64,
}

impl ShardTotals {
    fn absorb(&mut self, out: &ShardedOutcome) {
        self.messages += out.messages;
        self.bytes_on_wire += out.bytes_on_wire;
        self.halo_bytes += out.halo_bytes;
        self.exchange_rounds += out.exchange_rounds as u64;
        self.states = self.states.or(Some(out.num_states));
        // Snapshot of the *current* session: shrinks if a worker was lost.
        self.shard_states.clone_from(&out.shard_states);
        self.retries += out.disconnects as u64;
        self.recovered_faults += out.recovered_faults;
        self.resumed_rounds += out.resumed_rounds;
    }
}

/// Snapshot cadence of checkpointed sharded solves, in exchange rounds: low
/// enough that a killed master redoes at most a few rounds per point, high
/// enough that the pure-read `TermReq` sweep stays a rounding error next to
/// the per-round halo exchange.
const SHARD_SNAPSHOT_EVERY: u64 = 8;

/// Crash-recovery plumbing of one sharded solve: the per-point checkpoint
/// writer, the mid-point snapshot sidecar, and (after a crash) the snapshot
/// the previous run left — consumed by the first measure whose transform key
/// matches.  With no checkpoint configured the context is inert and sharded
/// solves behave exactly as before.
struct ShardRecoveryCtx {
    writer: Option<CheckpointWriter>,
    snapshot_path: Option<PathBuf>,
    seed: Option<checkpoint::ShardSnapshot>,
}

impl ShardRecoveryCtx {
    fn open(path: Option<&PathBuf>) -> std::io::Result<ShardRecoveryCtx> {
        let Some(path) = path else {
            return Ok(ShardRecoveryCtx {
                writer: None,
                snapshot_path: None,
                seed: None,
            });
        };
        let snapshot_path = checkpoint::shard_snapshot_path(path);
        let seed = checkpoint::ShardSnapshot::load(&snapshot_path)?;
        Ok(ShardRecoveryCtx {
            writer: Some(CheckpointWriter::open(path)?),
            snapshot_path: Some(snapshot_path),
            seed,
        })
    }
}

/// Evaluates `spec` at `s_points` through the slice fleet, memoizing values
/// across the solve's measures (a density and a CDF over one target share
/// every boundary-exchange round, exactly as the batch pipeline shares
/// transform keys).  Returns the values in request order plus the number of
/// fresh evaluations and memo hits.
fn fleet_eval(
    fleet: &mut SliceFleet,
    memo: &mut HashMap<String, TransformValues>,
    spec: &TransformSpec,
    s_points: &[Complex64],
    totals: &mut ShardTotals,
    ctx: &mut ShardRecoveryCtx,
) -> Result<(Vec<Complex64>, usize, usize), EngineError> {
    let key = spec
        .encode()
        .map_err(|e| EngineError::Analysis(e.to_string()))?;
    let cached = memo.entry(key.clone()).or_default();
    let missing: Vec<Complex64> = s_points
        .iter()
        .copied()
        .filter(|&s| !cached.contains(s))
        .collect();
    let shared = s_points.len() - missing.len();
    if !missing.is_empty() {
        // A snapshot from a killed run is only offered to its own measure;
        // anything else keeps it for a later fleet_eval call.
        let seed = if ctx.seed.as_ref().is_some_and(|snap| snap.key == key) {
            ctx.seed.take()
        } else {
            None
        };
        let mut writer = ctx.writer.as_mut();
        let mut record = |s: Complex64, value: Complex64| -> std::io::Result<()> {
            match writer.as_mut() {
                Some(w) => w.record_tagged(&key, s, value),
                None => Ok(()),
            }
        };
        let mut recovery = SolveRecovery {
            key: key.clone(),
            snapshot_path: ctx.snapshot_path.clone(),
            snapshot_every: if ctx.snapshot_path.is_some() {
                SHARD_SNAPSHOT_EVERY
            } else {
                0
            },
            seed,
            on_value: Some(&mut record),
        };
        let out = fleet
            .solve_recoverable(spec, &missing, &mut recovery)
            .map_err(|e| EngineError::Analysis(e.to_string()))?;
        for (&s, &value) in missing.iter().zip(&out.values) {
            cached.insert(s, value);
        }
        totals.absorb(&out);
    }
    let values = s_points
        .iter()
        .map(|&s| cached.get(s).expect("every point evaluated or memoized"))
        .collect();
    Ok((values, missing.len(), shared))
}

impl DistributedEngine {
    /// The sharded solve path: build (or rendezvous) the slice fleet, drive
    /// every passage measure through it, and always release the session —
    /// workers return to their outer accept loop even when a measure fails.
    fn solve_sharded(
        &self,
        requests: &[MeasureRequest],
    ) -> Result<Vec<MeasureReport>, EngineError> {
        let backend = self.sharded.as_ref().expect("sharded backend configured");
        let (mut fleet, hello_messages, hello_bytes) = match backend {
            ShardBackend::InProcess { shards } => (SliceFleet::loopback(*shards), 0usize, 0u64),
            ShardBackend::Tcp(transport) => {
                let (channels, messages, bytes) = transport
                    .accept_slice_channels()
                    .map_err(|e| EngineError::Analysis(e.to_string()))?;
                (SliceFleet::from_channels(channels), messages, bytes)
            }
        };
        let result = self.run_sharded(requests, &mut fleet, hello_messages, hello_bytes);
        fleet.release();
        result
    }

    fn run_sharded(
        &self,
        requests: &[MeasureRequest],
        fleet: &mut SliceFleet,
        hello_messages: usize,
        hello_bytes: u64,
    ) -> Result<Vec<MeasureReport>, EngineError> {
        let backend_name = self.backend();
        let mut reports: Vec<Option<MeasureReport>> = requests.iter().map(|_| None).collect();
        let mut memo: HashMap<String, TransformValues> = HashMap::new();
        let mut totals = ShardTotals {
            messages: hello_messages,
            bytes_on_wire: hello_bytes,
            ..ShardTotals::default()
        };
        let mut local_indices: Vec<usize> = Vec::new();

        // Crash recovery: open the per-point checkpoint writer and pick up any
        // mid-point iterate snapshot a killed run left behind, then pre-seed
        // the memo with every value already on disk so a restarted solve only
        // redoes the points the crash interrupted.
        let mut ctx = ShardRecoveryCtx::open(self.checkpoint_path.as_ref())
            .map_err(|e| EngineError::Analysis(format!("checkpoint I/O error: {e}")))?;
        let mut restored = 0usize;
        if self.restore_checkpoint {
            if let Some(path) = &self.checkpoint_path {
                let shards = checkpoint::load_checkpoint_by_measure(path)
                    .map_err(|e| EngineError::Analysis(format!("checkpoint I/O error: {e}")))?;
                for (key, values) in shards {
                    restored += values.len();
                    memo.insert(key, values);
                }
            }
        }

        // 1. Passage measures run on the fleet: curves evaluate their union
        //    plan once per distinct transform, quantiles refine through
        //    repeated CDF rounds on the *same* resident sessions (slices
        //    refill in place per s-point; no re-exploration).
        for (ri, request) in requests.iter().enumerate() {
            let started = Instant::now();
            let spec = transform_spec_for(&self.model, request);
            let report = match &request.kind {
                MeasureKind::Density | MeasureKind::Cdf => {
                    let plan = SPointPlan::new(self.method.clone(), &request.t_points);
                    let (at_s, evaluated, shared) = fleet_eval(
                        fleet,
                        &mut memo,
                        &spec,
                        plan.s_points(),
                        &mut totals,
                        &mut ctx,
                    )?;
                    let mut shard = TransformValues::new();
                    for (&s, &value) in plan.s_points().iter().zip(&at_s) {
                        shard.insert(s, value);
                    }
                    let values = curve_kind_of(&request.kind).postprocess(&plan, &shard);
                    let mut provenance = Provenance::local("distributed", backend_name);
                    provenance.workers = fleet.shards();
                    provenance.shards = fleet.shards();
                    provenance.evaluations = evaluated;
                    provenance.shared_hits = shared;
                    provenance.wall = started.elapsed();
                    MeasureReport {
                        name: request.name(),
                        kind: request.kind.clone(),
                        points: request.t_points.clone(),
                        values,
                        provenance,
                    }
                }
                MeasureKind::Quantile { probs } => {
                    let (initial, max_horizon) = quantile_horizons(request);
                    let name = request.name();
                    let mut evaluations = 0usize;
                    let mut shared_hits = 0usize;
                    let found =
                        quantiles_from_cdf(probs, initial, max_horizon, &mut |ts: &[f64]| {
                            let plan = SPointPlan::new(self.method.clone(), ts);
                            let (at_s, evaluated, shared) = fleet_eval(
                                fleet,
                                &mut memo,
                                &spec,
                                plan.s_points(),
                                &mut totals,
                                &mut ctx,
                            )?;
                            evaluations += evaluated;
                            shared_hits += shared;
                            let mut shard = TransformValues::new();
                            for (&s, &value) in plan.s_points().iter().zip(&at_s) {
                                shard.insert(s, value);
                            }
                            Ok::<Vec<f64>, EngineError>(CurveKind::Cdf.postprocess(&plan, &shard))
                        })?;
                    let values = require_quantiles(&name, probs, found, max_horizon)?;
                    let mut provenance = Provenance::local("distributed", backend_name);
                    provenance.workers = fleet.shards();
                    provenance.shards = fleet.shards();
                    provenance.evaluations = evaluations;
                    provenance.shared_hits = shared_hits;
                    provenance.wall = started.elapsed();
                    MeasureReport {
                        name,
                        kind: request.kind.clone(),
                        points: probs.clone(),
                        values,
                        provenance,
                    }
                }
                // Transient transforms and the near-origin moment stencils
                // stay master-side (the slice grammar speaks passage only);
                // same shared code the analytic engine runs, so still
                // bitwise identical.
                MeasureKind::Transient | MeasureKind::Mean | MeasureKind::Moment { .. } => {
                    local_indices.push(ri);
                    continue;
                }
            };
            reports[ri] = Some(report);
        }

        // 2. Master-side leftovers, compiled once per distinct spec.
        let mut model_hits = 0usize;
        let mut model_misses = 0usize;
        if !local_indices.is_empty() {
            let local_requests: Vec<&MeasureRequest> =
                local_indices.iter().map(|&ri| &requests[ri]).collect();
            let (set, index_of, hits, misses) =
                compile_unique_specs(&self.model, &local_requests, self.compiled_cache.as_deref())?;
            model_hits += hits;
            model_misses += misses;
            totals.states = totals.states.or(Some(set.num_states()));
            let evaluators = set.evaluators().map_err(EngineError::Analysis)?;
            for (di, &ri) in local_indices.iter().enumerate() {
                let request = &requests[ri];
                let started = Instant::now();
                let stats_before = evaluators[index_of[di]].hotpath_stats();
                let (points, values, evaluations) =
                    solve_locally(request, &evaluators[index_of[di]], &self.method)?;
                let hotpath = evaluators[index_of[di]].hotpath_stats().since(stats_before);
                let detail = if matches!(request.kind, MeasureKind::Transient) {
                    "master-side (transient curves are not row-sharded)"
                } else {
                    "master-side (near-origin stencil)"
                };
                let mut provenance = Provenance::local("distributed", detail);
                provenance.workers = fleet.shards();
                provenance.evaluations = evaluations;
                provenance.matrix_rebuilds_avoided = hotpath.matrix_rebuilds_avoided;
                provenance.pooled_lst_evaluations = hotpath.pooled_lst_evaluations;
                provenance.wall = started.elapsed();
                reports[ri] = Some(MeasureReport {
                    name: request.name(),
                    kind: request.kind.clone(),
                    points,
                    values,
                    provenance,
                });
            }
        }

        // Backfill states everywhere; run-level counters (wire traffic, halo
        // traffic, exchange rounds, per-shard memory, model-cache traffic) go
        // to the first report so summing a solve's reports gives true totals.
        let mut reports: Vec<MeasureReport> = reports
            .into_iter()
            .map(|r| {
                let mut report = r.expect("every request answered");
                report.provenance.states = report.provenance.states.or(totals.states);
                report
            })
            .collect();
        if let Some(first) = reports.first_mut() {
            first.provenance.messages = totals.messages;
            first.provenance.bytes_on_wire = totals.bytes_on_wire;
            first.provenance.halo_bytes = totals.halo_bytes;
            first.provenance.exchange_rounds = totals.exchange_rounds;
            first
                .provenance
                .shard_states
                .clone_from(&totals.shard_states);
            first.provenance.model_cache_hits = model_hits;
            first.provenance.model_cache_misses = model_misses;
            first.provenance.cache_hits += restored;
            first.provenance.retries = totals.retries;
            first.provenance.recovered_faults = totals.recovered_faults;
            first.provenance.resumed_rounds = totals.resumed_rounds;
        }
        Ok(reports)
    }
}

impl Engine for DistributedEngine {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn solve(&self, requests: &[MeasureRequest]) -> Result<Vec<MeasureReport>, EngineError> {
        validate_requests(&self.model, requests)?;
        if self.sharded.is_some() {
            return self.solve_sharded(requests);
        }
        let workers = self.transport.parallelism();
        let mut reports: Vec<Option<MeasureReport>> = requests.iter().map(|_| None).collect();
        let mut states: Option<usize> = None;
        // Run-level model-cache traffic (transport compiles + master-side
        // compiles), attributed to the solve's first report at the end.
        let mut model_hits = 0usize;
        let mut model_misses = 0usize;

        // 1. All curve measures go through the pipeline as one batch: shared
        //    transform keys mean a density and a CDF over one target share
        //    every evaluation, exactly as run_batch always promised.
        let curve_indices: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind.is_curve())
            .map(|(i, _)| i)
            .collect();
        if !curve_indices.is_empty() {
            let mut job = BatchJob::new();
            for &ri in &curve_indices {
                let request = &requests[ri];
                job.push(MeasureSpec::from_spec(
                    request.name(),
                    curve_kind_of(&request.kind),
                    &request.t_points,
                    transform_spec_for(&self.model, request),
                ));
            }
            let batch = self
                .pipeline
                .execute(job, self.transport.as_ref())
                .map_err(|e| EngineError::Analysis(e.to_string()))?;
            states = states.or(batch.states);
            model_hits += batch.model_cache_hits;
            model_misses += batch.model_cache_misses;
            for (slot, (&ri, result)) in curve_indices.iter().zip(batch.measures).enumerate() {
                let mut provenance = Provenance::local("distributed", batch.backend);
                provenance.workers = workers;
                provenance.states = batch.states;
                // Run-level wire counters are attributed to the *first*
                // measure of the shared run, so summing across a solve's
                // reports gives the true totals.
                if slot == 0 {
                    provenance.messages = batch.messages;
                    provenance.bytes_on_wire = batch.bytes_on_wire;
                    provenance.matrix_rebuilds_avoided = batch.hotpath.matrix_rebuilds_avoided;
                    provenance.pooled_lst_evaluations = batch.hotpath.pooled_lst_evaluations;
                }
                provenance.evaluations = result.evaluations;
                provenance.cache_hits = result.cache_hits;
                provenance.shared_hits = result.shared_hits;
                provenance.wall = batch.elapsed;
                reports[ri] = Some(MeasureReport {
                    name: result.name,
                    kind: requests[ri].kind.clone(),
                    points: result.t_points,
                    values: result.values,
                    provenance,
                });
            }
        }

        // 2. Derived measures.  Quantiles refine through repeated pipeline
        //    runs when the transport supports them; otherwise (TCP) they fall
        //    back to the same master-side code the analytic engine runs.
        //    Mean/moment stencils are a handful of near-origin evaluations —
        //    always master-side.
        let derived: Vec<usize> = requests
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.kind.is_curve())
            .map(|(i, _)| i)
            .collect();
        let needs_local = derived.iter().any(|&ri| {
            !matches!(requests[ri].kind, MeasureKind::Quantile { .. }) || !self.transport.reusable()
        });
        let local = if needs_local {
            let local_requests: Vec<&MeasureRequest> =
                derived.iter().map(|&ri| &requests[ri]).collect();
            let (set, index_of, hits, misses) =
                compile_unique_specs(&self.model, &local_requests, self.compiled_cache.as_deref())?;
            model_hits += hits;
            model_misses += misses;
            Some((set, index_of))
        } else {
            None
        };
        let local_evaluators = match &local {
            Some((set, _)) => {
                states = states.or(Some(set.num_states()));
                Some(set.evaluators().map_err(EngineError::Analysis)?)
            }
            None => None,
        };

        for (di, &ri) in derived.iter().enumerate() {
            let request = &requests[ri];
            let started = Instant::now();
            let is_quantile = matches!(request.kind, MeasureKind::Quantile { .. });
            let report = if is_quantile && self.transport.reusable() {
                // Multi-round distributed refinement: one Cdf batch per grid
                // the search asks for.  A configured checkpoint warms every
                // round (and any later run) under the spec's canonical key.
                let MeasureKind::Quantile { probs } = &request.kind else {
                    unreachable!()
                };
                let spec = transform_spec_for(&self.model, request);
                let (initial, max_horizon) = quantile_horizons(request);
                let name = request.name();
                let mut provenance = Provenance::local("distributed", self.transport.name());
                provenance.workers = workers;
                let found =
                    quantiles_from_cdf(probs, initial, max_horizon, &mut |ts: &[f64]| {
                        let job = BatchJob::new().with_measure(MeasureSpec::from_spec(
                            name.clone(),
                            CurveKind::Cdf,
                            ts,
                            spec.clone(),
                        ));
                        let batch = self
                            .pipeline
                            .execute(job, self.transport.as_ref())
                            .map_err(|e| EngineError::Analysis(e.to_string()))?;
                        provenance.messages += batch.messages;
                        provenance.bytes_on_wire += batch.bytes_on_wire;
                        provenance.matrix_rebuilds_avoided += batch.hotpath.matrix_rebuilds_avoided;
                        provenance.pooled_lst_evaluations += batch.hotpath.pooled_lst_evaluations;
                        provenance.states = provenance.states.or(batch.states);
                        model_hits += batch.model_cache_hits;
                        model_misses += batch.model_cache_misses;
                        let result = batch.measures.into_iter().next().expect("one measure");
                        provenance.evaluations += result.evaluations;
                        provenance.cache_hits += result.cache_hits;
                        Ok::<Vec<f64>, EngineError>(result.values)
                    })?;
                let values = require_quantiles(&name, probs, found, max_horizon)?;
                states = states.or(provenance.states);
                provenance.wall = started.elapsed();
                MeasureReport {
                    name,
                    kind: request.kind.clone(),
                    points: probs.clone(),
                    values,
                    provenance,
                }
            } else {
                let (_, index_of) = local.as_ref().expect("local compile present");
                let evaluators = local_evaluators.as_ref().expect("local evaluators present");
                let stats_before = evaluators[index_of[di]].hotpath_stats();
                let (points, values, evaluations) =
                    solve_locally(request, &evaluators[index_of[di]], &self.method)?;
                let hotpath = evaluators[index_of[di]].hotpath_stats().since(stats_before);
                let backend = if is_quantile {
                    format!(
                        "master-side ({} transport is single-rendezvous)",
                        self.transport.name()
                    )
                } else {
                    "master-side (near-origin stencil)".to_string()
                };
                let mut provenance = Provenance::local("distributed", backend);
                provenance.workers = workers;
                provenance.states = states;
                provenance.evaluations = evaluations;
                provenance.matrix_rebuilds_avoided = hotpath.matrix_rebuilds_avoided;
                provenance.pooled_lst_evaluations = hotpath.pooled_lst_evaluations;
                provenance.wall = started.elapsed();
                MeasureReport {
                    name: request.name(),
                    kind: request.kind.clone(),
                    points,
                    values,
                    provenance,
                }
            };
            reports[ri] = Some(report);
        }

        // Backfill the state-space size for reports issued before it was
        // known (e.g. a curve batch over TCP followed by a local stencil).
        let mut reports: Vec<MeasureReport> = reports
            .into_iter()
            .map(|r| {
                let mut report = r.expect("every request answered");
                report.provenance.states = report.provenance.states.or(states);
                report
            })
            .collect();
        // Model-cache traffic is run-level: attribute it to the first report
        // so summing across a solve's reports gives the true totals.
        if let Some(first) = reports.first_mut() {
            first.provenance.model_cache_hits = model_hits;
            first.provenance.model_cache_misses = model_misses;
        }
        Ok(reports)
    }
}

// ---------------------------------------------------------------------------
// SimulationEngine
// ---------------------------------------------------------------------------

/// Replication control for the [`SimulationEngine`].
#[derive(Debug, Clone, Copy)]
pub struct SimulationOptions {
    /// Independent replications per distinct passage/transient target.
    pub replications: usize,
    /// Base RNG seed; fixed seed ⇒ bitwise-reproducible estimates regardless
    /// of thread count (see `smp_simulator::passage::replication_seed`).
    pub seed: u64,
    /// Worker threads for the replications.
    pub threads: usize,
    /// Per-replication passage-time horizon; later hits count as censored.
    pub max_time: f64,
    /// Per-replication cap on the number of transition firings.
    pub max_steps: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            replications: 10_000,
            seed: 0x5eed,
            threads: 1,
            max_time: 1e9,
            max_steps: 10_000_000,
        }
    }
}

/// Discrete-event simulation of the same high-level model — the paper's
/// validation reference, wrapped as an [`Engine`].
///
/// Passage-based kinds (density, CDF, quantiles, mean, moments) are all read
/// off one empirical distribution per distinct target, so a request batch
/// costs one set of replications per target, not per measure.  Reports carry
/// a 95% confidence bound in [`Provenance::error_bound`] where the estimator
/// has one, which is what `--validate-sim` compares against.
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    model: ModelSpec,
    options: SimulationOptions,
}

impl SimulationEngine {
    /// A simulation engine over `model` with the given replication control.
    pub fn new(model: ModelSpec, options: SimulationOptions) -> Self {
        SimulationEngine { model, options }
    }

    /// The configured options.
    pub fn options(&self) -> &SimulationOptions {
        &self.options
    }
}

impl Engine for SimulationEngine {
    fn name(&self) -> &'static str {
        "simulation"
    }

    fn solve(&self, requests: &[MeasureRequest]) -> Result<Vec<MeasureReport>, EngineError> {
        let net = validate_requests(&self.model, requests)?;
        let n = self.options.replications.max(1) as f64;
        let backend = format!(
            "monte-carlo r={} seed={:#x}",
            self.options.replications, self.options.seed
        );
        // One empirical passage distribution per distinct target.
        let mut passage_cache: Vec<(String, smp_simulator::passage::PassageSimulationResult)> =
            Vec::new();
        let mut reports = Vec::with_capacity(requests.len());
        for request in requests {
            let started = Instant::now();
            let place = net
                .place_index(&request.target.place)
                .expect("validated above");
            let target = request.target.clone();
            let mut provenance = Provenance::local("simulation", backend.clone());
            provenance.workers = self.options.threads.max(1);
            provenance.evaluations = self.options.replications;

            let (points, values) =
                if request.kind.is_curve() && !request.kind.uses_passage_transform() {
                    // Transient probabilities: fresh replications on the grid.
                    let probs = simulate_transient(
                        &net,
                        |m| target.matches(m.get(place)),
                        &request.t_points,
                        &TransientSimulationOptions {
                            replications: self.options.replications,
                            max_steps: self.options.max_steps,
                            seed: self.options.seed,
                            threads: self.options.threads,
                        },
                    );
                    // Worst-case binomial half-width over the grid.
                    let band = probs
                        .iter()
                        .map(|p| 1.96 * (p * (1.0 - p) / n).sqrt())
                        .fold(0.0, f64::max);
                    provenance.error_bound = Some(band);
                    (request.t_points.clone(), probs)
                } else {
                    // Passage-based kinds share one simulated distribution.
                    let key = target.to_string();
                    if !passage_cache.iter().any(|(k, _)| *k == key) {
                        let initial = smp_simulator::SimulationEngine::new(&net).marking().clone();
                        if target.matches(initial.get(place)) {
                            return Err(EngineError::Unsupported(format!(
                                "the initial marking already satisfies '{target}': the simulated \
                             first-passage time is identically zero and not comparable with \
                             the analytic first-return semantics"
                            )));
                        }
                        let result = simulate_passage_times(
                            &net,
                            |m| target.matches(m.get(place)),
                            &PassageSimulationOptions {
                                replications: self.options.replications,
                                max_time: self.options.max_time,
                                max_steps: self.options.max_steps,
                                threads: self.options.threads,
                                seed: self.options.seed,
                            },
                        );
                        if result.distribution.is_empty() {
                            return Err(EngineError::Analysis(format!(
                                "no replication reached '{target}' within the simulation limits \
                             (max_time {}, max_steps {})",
                                self.options.max_time, self.options.max_steps
                            )));
                        }
                        passage_cache.push((key.clone(), result));
                    } else {
                        // Reused distribution: no fresh replications were spent.
                        provenance.evaluations = 0;
                        provenance.shared_hits = self.options.replications;
                    }
                    let result = &passage_cache
                        .iter()
                        .find(|(k, _)| *k == key)
                        .expect("just inserted")
                        .1;
                    let dist = &result.distribution;
                    if result.censored > 0 {
                        // Censored replications bias every passage estimator;
                        // surface it through the error bound being unavailable.
                        provenance.error_bound = None;
                    }
                    match &request.kind {
                        MeasureKind::Density => {
                            let values = dist.kernel_density(&request.t_points);
                            (request.t_points.clone(), values)
                        }
                        MeasureKind::Cdf => {
                            let values: Vec<f64> =
                                request.t_points.iter().map(|&t| dist.cdf(t)).collect();
                            if result.censored == 0 {
                                let band = values
                                    .iter()
                                    .map(|p| 1.96 * (p * (1.0 - p) / n).sqrt())
                                    .fold(0.0, f64::max);
                                provenance.error_bound = Some(band);
                            }
                            (request.t_points.clone(), values)
                        }
                        MeasureKind::Quantile { probs } => {
                            let mut values = Vec::with_capacity(probs.len());
                            let mut bound: f64 = 0.0;
                            for &p in probs {
                                let q = dist.quantile(p).ok_or_else(|| {
                                    EngineError::Analysis(format!(
                                        "quantile p = {p} of '{}' is beyond the simulated samples",
                                        request.name()
                                    ))
                                })?;
                                values.push(q);
                                // Order-statistic band: quantiles at p ± the
                                // binomial CDF half-width bracket the estimate.
                                let band = 1.96 * (p * (1.0 - p) / n).sqrt();
                                let lo = dist.quantile((p - band).max(1e-9)).unwrap_or(q);
                                let hi = dist.quantile((p + band).min(1.0)).unwrap_or(q);
                                bound = bound.max((hi - lo) / 2.0);
                            }
                            if result.censored == 0 {
                                provenance.error_bound = Some(bound);
                            }
                            (probs.clone(), values)
                        }
                        MeasureKind::Mean => {
                            let (mean, ci) = dist.raw_moment(1);
                            if result.censored == 0 {
                                provenance.error_bound = Some(ci);
                            }
                            (vec![1.0], vec![mean])
                        }
                        MeasureKind::Moment { order } => {
                            let (moment, ci) = dist.raw_moment(*order);
                            if result.censored == 0 {
                                provenance.error_bound = Some(ci);
                            }
                            (vec![f64::from(*order)], vec![moment])
                        }
                        MeasureKind::Transient => unreachable!("handled above"),
                    }
                };
            provenance.wall = started.elapsed();
            reports.push(MeasureReport {
                name: request.name(),
                kind: request.kind.clone(),
                points,
                values,
                provenance,
            });
        }
        Ok(reports)
    }
}

// ---------------------------------------------------------------------------
// UniformizationEngine
// ---------------------------------------------------------------------------

/// `true` iff the uniformization engine can solve `model`: the model parses,
/// its state space explores, and every pooled holding-time distribution is
/// structurally exponential.
///
/// This performs a full state-space exploration (distribution parameters may
/// be marking-dependent, so the check cannot be purely syntactic); callers on
/// a hot path should cache the answer.
pub fn uniformization_applies(model: &ModelSpec) -> bool {
    let source = model.source();
    let Ok(net) = smp_dnamaca::parse_model(&source) else {
        return false;
    };
    let Ok(space) = smp_smspn::StateSpace::explore(&net) else {
        return false;
    };
    uniform::is_all_exponential(space.smp())
}

/// A bounded, thread-safe LRU cache of uniformization phase-chain
/// reductions, keyed by model fingerprint plus chain kind (`transient`, or
/// `passage` plus the target predicate).
///
/// Reducing an all-exponential SMP to its phase-space CTMC walks the full
/// kernel once per chain; the query server keeps one of these caches so a
/// repeated uniformization query reuses the reduction instead of rebuilding
/// it.  Keys fold in [`crate::transform::model_fingerprint`], so an edited model misses rather
/// than reading a stale chain.  Eviction is least-recently-used with a
/// monotonic clock, mirroring [`CompiledSetCache`].
pub struct PhaseChainCache {
    capacity: usize,
    clock: std::sync::atomic::AtomicU64,
    entries: parking_lot::Mutex<Vec<PhaseChainSlot>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

struct PhaseChainSlot {
    key: String,
    stamp: u64,
    chain: Arc<PhaseCtmc>,
}

impl PhaseChainCache {
    /// Creates a cache holding at most `capacity` phase chains (minimum 1).
    pub fn new(capacity: usize) -> PhaseChainCache {
        PhaseChainCache {
            capacity: capacity.max(1),
            clock: std::sync::atomic::AtomicU64::new(0),
            entries: parking_lot::Mutex::new(Vec::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the cached chain for `key`, building (and caching) it on a
    /// miss.  The boolean is `true` on a hit.  The build runs outside the
    /// cache lock; two concurrent misses on one key may both build, but only
    /// one result is retained.
    fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<PhaseCtmc, EngineError>,
    ) -> Result<(Arc<PhaseCtmc>, bool), EngineError> {
        let stamp = self.tick();
        {
            let mut entries = self.entries.lock();
            if let Some(slot) = entries.iter_mut().find(|slot| slot.key == key) {
                slot.stamp = stamp;
                let chain = Arc::clone(&slot.chain);
                drop(entries);
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok((chain, true));
            }
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let chain = Arc::new(build()?);
        let stamp = self.tick();
        let mut entries = self.entries.lock();
        if let Some(slot) = entries.iter_mut().find(|slot| slot.key == key) {
            slot.stamp = stamp;
            return Ok((Arc::clone(&slot.chain), false));
        }
        entries.push(PhaseChainSlot {
            key: key.to_string(),
            stamp,
            chain: Arc::clone(&chain),
        });
        while entries.len() > self.capacity {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(i, _)| i);
            match oldest {
                Some(i) => {
                    entries.remove(i);
                }
                None => break,
            }
        }
        Ok((chain, false))
    }

    /// Number of cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of misses (each one paid for a phase-chain reduction).
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of chains currently resident.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no chains are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

impl std::fmt::Debug for PhaseChainCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseChainCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Uniformization over the phase-space CTMC of an all-exponential model.
///
/// Solves every [`MeasureKind`] without Laplace inversion: transients and
/// passage CDFs/densities by Poisson-weighted power iteration (truncation
/// bound in `Provenance::error_bound`), quantiles through the shared
/// `smp_laplace::quantiles_from_cdf` search over a uniformized CDF provider,
/// and means/moments from the absorbing chain's exact linear systems.  Models
/// with any non-exponential holding time fail with
/// [`EngineError::Unsupported`] naming the offending distribution.
#[derive(Debug, Clone)]
pub struct UniformizationEngine {
    model: ModelSpec,
    tolerance: f64,
    phase_cache: Option<Arc<PhaseChainCache>>,
}

impl UniformizationEngine {
    /// A uniformization engine over `model` with the default Poisson
    /// truncation tolerance ([`smp_core::uniform::DEFAULT_TOLERANCE`]).
    pub fn new(model: ModelSpec) -> Self {
        Self::with_tolerance(model, uniform::DEFAULT_TOLERANCE)
    }

    /// A uniformization engine with an explicit truncation tolerance in
    /// `(0, 1)` — the Poisson tail mass the power iteration may neglect at
    /// each time point.
    pub fn with_tolerance(model: ModelSpec, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "truncation tolerance must be in (0, 1), got {tolerance}"
        );
        UniformizationEngine {
            model,
            tolerance,
            phase_cache: None,
        }
    }

    /// Serves phase-chain reductions from `cache` instead of rebuilding them
    /// on every solve; hits and misses are reported in the first report's
    /// provenance (`model_cache_hits` / `model_cache_misses`).
    pub fn with_phase_cache(mut self, cache: Arc<PhaseChainCache>) -> Self {
        self.phase_cache = Some(cache);
        self
    }
}

/// Maps a target-resolution failure onto the engine error taxonomy the other
/// engines use: unknown places are *model* errors, an unsatisfiable predicate
/// is an *analysis* error.
fn resolve_error(e: TargetResolveError) -> EngineError {
    match e {
        TargetResolveError::UnknownPlace { .. } => EngineError::Model(e.to_string()),
        TargetResolveError::NoMatchingMarking { .. } => EngineError::Analysis(e.to_string()),
    }
}

fn uniform_error(e: uniform::UniformError) -> EngineError {
    EngineError::Analysis(e.to_string())
}

impl Engine for UniformizationEngine {
    fn name(&self) -> &'static str {
        "uniformization"
    }

    fn solve(&self, requests: &[MeasureRequest]) -> Result<Vec<MeasureReport>, EngineError> {
        let net = validate_requests(&self.model, requests)?;
        let space =
            smp_smspn::StateSpace::explore(&net).map_err(|e| EngineError::Model(e.to_string()))?;
        let smp = space.smp();
        if let Err(e) = uniform::exponential_rates(smp) {
            // Not an analysis failure: the model is simply outside this
            // engine's scenario family.
            return Err(EngineError::Unsupported(format!(
                "{e}; use the analytic, distributed or simulation engine for \
                 general holding-time distributions"
            )));
        }
        let initial = space.initial_state();
        let states = Some(space.num_states());

        // One transient chain serves every occupancy request; passage chains
        // are cached per distinct target predicate so e.g. density + cdf +
        // quantile over one target share a single reduction.  With a
        // configured [`PhaseChainCache`] the reductions also survive across
        // solves, keyed by model fingerprint so edits miss instead of
        // reading a stale chain.
        let fingerprint = crate::transform::model_fingerprint(&self.model.source());
        let mut chain_hits = 0usize;
        let mut chain_misses = 0usize;
        let mut transient_chain: Option<Arc<PhaseCtmc>> = None;
        let mut passage_chains: Vec<(String, Arc<PhaseCtmc>)> = Vec::new();

        let mut reports = Vec::with_capacity(requests.len());
        for request in requests {
            let started = Instant::now();
            let target_states = request
                .target
                .resolve(&net, &space)
                .map_err(resolve_error)?;
            let targets = StateSet::new(smp.num_states(), &target_states)
                .map_err(|e| EngineError::Analysis(e.to_string()))?;

            let mut provenance = Provenance::local("uniformization", "poisson");
            provenance.states = states;

            let (points, values) = match &request.kind {
                MeasureKind::Transient => {
                    if transient_chain.is_none() {
                        let built = match &self.phase_cache {
                            Some(cache) => {
                                let (chain, hit) = cache
                                    .get_or_build(&format!("{fingerprint}:transient"), || {
                                        PhaseCtmc::transient(smp, initial).map_err(uniform_error)
                                    })?;
                                if hit {
                                    chain_hits += 1;
                                } else {
                                    chain_misses += 1;
                                }
                                chain
                            }
                            None => {
                                chain_misses += 1;
                                Arc::new(PhaseCtmc::transient(smp, initial).map_err(uniform_error)?)
                            }
                        };
                        transient_chain = Some(built);
                    }
                    let chain = transient_chain.as_ref().expect("just built");
                    let out = chain
                        .transient_probability(&targets, &request.t_points, self.tolerance)
                        .map_err(uniform_error)?;
                    provenance.evaluations = out.iterations;
                    provenance.error_bound = Some(out.truncation_bound);
                    let values = out.values.iter().map(|v| v.clamp(0.0, 1.0)).collect();
                    (request.t_points.clone(), values)
                }
                kind => {
                    let key = request.target.to_string();
                    if !passage_chains.iter().any(|(k, _)| *k == key) {
                        let built = match &self.phase_cache {
                            Some(cache) => {
                                let (chain, hit) = cache.get_or_build(
                                    &format!("{fingerprint}:passage:{key}"),
                                    || {
                                        PhaseCtmc::passage(smp, initial, &targets)
                                            .map_err(uniform_error)
                                    },
                                )?;
                                if hit {
                                    chain_hits += 1;
                                } else {
                                    chain_misses += 1;
                                }
                                chain
                            }
                            None => {
                                chain_misses += 1;
                                Arc::new(
                                    PhaseCtmc::passage(smp, initial, &targets)
                                        .map_err(uniform_error)?,
                                )
                            }
                        };
                        passage_chains.push((key.clone(), built));
                    }
                    let chain = &passage_chains
                        .iter()
                        .find(|(k, _)| *k == key)
                        .expect("just inserted")
                        .1;
                    match kind {
                        MeasureKind::Cdf => {
                            let out = chain
                                .cdf(&request.t_points, self.tolerance)
                                .map_err(uniform_error)?;
                            provenance.evaluations = out.iterations;
                            provenance.error_bound = Some(out.truncation_bound);
                            // Same monotone repair the inversion engines apply
                            // to their CDF curves.
                            let mut running = 0.0f64;
                            let values = out
                                .values
                                .iter()
                                .map(|v| {
                                    running = running.max(v.clamp(0.0, 1.0));
                                    running
                                })
                                .collect();
                            (request.t_points.clone(), values)
                        }
                        MeasureKind::Density => {
                            let out = chain
                                .density(&request.t_points, self.tolerance)
                                .map_err(uniform_error)?;
                            provenance.evaluations = out.iterations;
                            provenance.error_bound = Some(out.truncation_bound);
                            let values = out.values.iter().map(|v| v.max(0.0)).collect();
                            (request.t_points.clone(), values)
                        }
                        MeasureKind::Quantile { probs } => {
                            let (initial_horizon, max_horizon) = quantile_horizons(request);
                            let mut iterations = 0usize;
                            let mut bound = 0.0f64;
                            let found = quantiles_from_cdf(
                                probs,
                                initial_horizon,
                                max_horizon,
                                &mut |ts: &[f64]| {
                                    let out =
                                        chain.cdf(ts, self.tolerance).map_err(uniform_error)?;
                                    iterations += out.iterations;
                                    bound = bound.max(out.truncation_bound);
                                    Ok::<Vec<f64>, EngineError>(out.values)
                                },
                            )?;
                            let values =
                                require_quantiles(&request.name(), probs, found, max_horizon)?;
                            provenance.evaluations = iterations;
                            // The bound is on the CDF values the search read,
                            // not on the inverted time axis.
                            provenance.error_bound = Some(bound);
                            (probs.clone(), values)
                        }
                        MeasureKind::Mean => {
                            let m = chain.moment(1).map_err(uniform_error)?;
                            provenance.evaluations = m.iterations;
                            provenance.error_bound = Some(m.residual);
                            (vec![1.0], vec![m.value])
                        }
                        MeasureKind::Moment { order } => {
                            let m = chain.moment(*order).map_err(uniform_error)?;
                            provenance.evaluations = m.iterations;
                            provenance.error_bound = Some(m.residual);
                            (vec![f64::from(*order)], vec![m.value])
                        }
                        MeasureKind::Transient => unreachable!("handled above"),
                    }
                }
            };
            provenance.wall = started.elapsed();
            reports.push(MeasureReport {
                name: request.name(),
                kind: request.kind.clone(),
                points,
                values,
                provenance,
            });
        }
        // Chain-cache traffic is solve-level: attribute it to the first
        // report, like every other engine's model-cache counters.
        if let Some(first) = reports.first_mut() {
            first.provenance.model_cache_hits = chain_hits;
            first.provenance.model_cache_misses = chain_misses;
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_core::query::TargetSpec;
    use smp_numeric::stats::linspace;

    fn voting() -> ModelSpec {
        ModelSpec::Voting {
            voters: 3,
            polling: 1,
            central: 1,
        }
    }

    fn target(text: &str) -> TargetSpec {
        TargetSpec::parse(text).unwrap()
    }

    fn full_request_set() -> Vec<MeasureRequest> {
        let ts = linspace(1.0, 14.0, 6);
        vec![
            MeasureRequest::density(target("p2>=2"), &ts),
            MeasureRequest::cdf(target("p2>=2"), &ts),
            MeasureRequest::transient(target("p2>=2"), &ts),
            MeasureRequest::quantile(target("p2>=2"), &[0.5, 0.9]).with_t_points(&ts),
            MeasureRequest::mean(target("p2>=2")).with_t_points(&ts),
            MeasureRequest::moment(target("p2>=2"), 2).with_t_points(&ts),
        ]
    }

    #[test]
    fn analytic_and_distributed_agree_bitwise_on_every_kind() {
        let requests = full_request_set();
        let analytic = AnalyticEngine::new(voting(), InversionMethod::euler())
            .solve(&requests)
            .unwrap();
        let distributed = DistributedEngine::in_process(
            voting(),
            InversionMethod::euler(),
            PipelineOptions::with_workers(3),
        )
        .solve(&requests)
        .unwrap();
        assert_eq!(analytic.len(), requests.len());
        for (a, d) in analytic.iter().zip(&distributed) {
            assert_eq!(a.name, d.name);
            assert_eq!(a.points, d.points);
            assert_eq!(a.values, d.values, "{} differs between engines", a.name);
            assert_eq!(a.provenance.engine, "analytic");
            assert_eq!(d.provenance.engine, "distributed");
        }
        // Worker count does not change distributed values either.
        let more_workers = DistributedEngine::in_process(
            voting(),
            InversionMethod::euler(),
            PipelineOptions::with_workers(7),
        )
        .solve(&requests)
        .unwrap();
        for (a, b) in distributed.iter().zip(&more_workers) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn provenance_is_populated() {
        let requests = full_request_set();
        let reports = DistributedEngine::in_process(
            voting(),
            InversionMethod::euler(),
            PipelineOptions::with_workers(2),
        )
        .solve(&requests)
        .unwrap();
        let density = &reports[0];
        assert_eq!(density.provenance.backend, "in-process");
        assert_eq!(density.provenance.workers, 2);
        assert!(density.provenance.states.is_some());
        assert!(density.provenance.evaluations > 0);
        // The symbolic/numeric split's savings are surfaced (attributed to
        // the first measure of the shared run, like the wire counters).
        assert!(density.provenance.matrix_rebuilds_avoided > 0);
        assert!(density.provenance.pooled_lst_evaluations > 0);
        // The CDF shares every evaluation with the density (one transform key).
        let cdf = &reports[1];
        assert_eq!(cdf.provenance.evaluations, 0);
        assert_eq!(cdf.provenance.shared_hits, density.provenance.evaluations);
        // Quantile rounds accumulate evaluations of their own.
        let quantile = &reports[3];
        assert!(quantile.provenance.evaluations > 0);
        assert_eq!(quantile.provenance.workers, 2);
    }

    #[test]
    fn sharded_engine_matches_the_analytic_engine_bitwise_for_any_shard_count() {
        let requests = full_request_set();
        let analytic = AnalyticEngine::new(voting(), InversionMethod::euler())
            .solve(&requests)
            .unwrap();
        for shards in 1..=4 {
            let reports = DistributedEngine::sharded(
                voting(),
                InversionMethod::euler(),
                PipelineOptions::with_workers(1),
                shards,
            )
            .solve(&requests)
            .unwrap();
            for (a, d) in analytic.iter().zip(&reports) {
                assert_eq!(a.points, d.points);
                assert_eq!(a.values, d.values, "{} differs at {shards} shards", a.name);
            }
            // The memory claim: per-shard states partition the full space
            // and the largest slice is the ⌈N/shards⌉ block ceiling.
            let first = &reports[0].provenance;
            assert_eq!(first.backend, "sharded-loopback");
            assert_eq!(first.shards, shards);
            assert_eq!(first.shard_states.len(), shards);
            let total: usize = first.shard_states.iter().sum();
            assert_eq!(first.states, Some(total));
            let ceiling = total.div_ceil(shards);
            assert!(first.shard_states.iter().all(|&n| n <= ceiling));
            if shards > 1 {
                assert!(first.halo_bytes > 0, "boundary exchange must be real");
                assert!(first.exchange_rounds > 0);
            }
            // The CDF memoizes every s-point the density already drove
            // through the fleet (one passage transform per target).
            assert_eq!(reports[1].provenance.evaluations, 0);
            assert_eq!(
                reports[1].provenance.shared_hits,
                reports[0].provenance.evaluations
            );
            // Transient curves and moment stencils stay master-side.
            assert!(reports[2].provenance.backend.contains("transient"));
            assert!(reports[4].provenance.backend.contains("stencil"));
        }
    }

    #[test]
    fn quantile_refinement_accumulates_wire_traffic_across_rounds() {
        // Regression lock: the quantile path's provenance sums evaluations,
        // messages and bytes over *every* refinement round; a bug that kept
        // only the last round's counters would under-report.
        let ts = linspace(1.0, 14.0, 6);
        let probs = [0.5, 0.9];
        let request = MeasureRequest::quantile(target("p2>=2"), &probs).with_t_points(&ts);

        // Replay the shared search sequentially to learn how many rounds it
        // drives and how many grid points they evaluate in total.
        let spec = TransformSpec::passage(voting(), target("p2>=2"));
        let set = CompiledModelSet::compile(std::slice::from_ref(&spec)).unwrap();
        let evaluator = set.evaluator(0).unwrap();
        let (initial, max_horizon) = quantile_horizons(&request);
        let mut rounds = 0usize;
        let mut grid_points = 0usize;
        quantiles_from_cdf(&probs, initial, max_horizon, &mut |ts: &[f64]| {
            rounds += 1;
            let plan = SPointPlan::new(InversionMethod::euler(), ts);
            grid_points += plan.s_points().len();
            let mut evals = 0usize;
            let shard = eval_plan(&plan, &evaluator, &mut evals).unwrap();
            Ok::<Vec<f64>, EngineError>(CurveKind::Cdf.postprocess(&plan, &shard))
        })
        .unwrap();
        assert!(rounds >= 2, "the search must refine for this lock to bite");

        let options = PipelineOptions {
            workers: 2,
            simulated_latency: Some(std::time::Duration::from_micros(10)),
            ..Default::default()
        };
        let report = DistributedEngine::in_process(voting(), InversionMethod::euler(), options)
            .solve(std::slice::from_ref(&request))
            .unwrap()
            .remove(0);
        let p = &report.provenance;
        assert_eq!(
            p.evaluations + p.cache_hits,
            grid_points,
            "every round's grid points must be accounted, not just the last round's"
        );
        assert!(
            p.messages >= rounds,
            "at least one message per pipeline run"
        );
        assert!(p.bytes_on_wire > 0);
    }

    #[test]
    fn quantile_round_trips_through_the_cdf() {
        // F(q_p) == p up to grid resolution: read the CDF at the reported
        // quantiles off a fine analytic curve.
        let probs = [0.5, 0.9];
        let requests = vec![MeasureRequest::quantile(target("p2>=2"), &probs)
            .with_t_points(&linspace(1.0, 14.0, 6))];
        let engine = AnalyticEngine::new(voting(), InversionMethod::euler());
        let quantiles = engine.solve(&requests).unwrap().remove(0);
        assert!(quantiles.provenance.matrix_rebuilds_avoided > 0);
        let grid = linspace(0.05, 60.0, 600);
        let cdf = engine
            .solve(&[MeasureRequest::cdf(target("p2>=2"), &grid)])
            .unwrap()
            .remove(0);
        for (&p, &q) in probs.iter().zip(&quantiles.values) {
            // Interpolate the CDF at q.
            let f = smp_numeric::stats::lerp_table(&cdf.points, &cdf.values, q);
            assert!((f - p).abs() < 0.01, "F({q}) = {f} vs p = {p}");
        }
    }

    #[test]
    fn simulation_agrees_with_analytic_within_tolerance() {
        let ts = linspace(2.0, 16.0, 5);
        let requests = vec![
            MeasureRequest::cdf(target("p2>=2"), &ts),
            MeasureRequest::transient(target("p2>=2"), &ts),
            MeasureRequest::quantile(target("p2>=2"), &[0.5]).with_t_points(&ts),
            MeasureRequest::mean(target("p2>=2")),
        ];
        let analytic = AnalyticEngine::new(voting(), InversionMethod::euler())
            .solve(&requests)
            .unwrap();
        let sim = SimulationEngine::new(
            voting(),
            SimulationOptions {
                replications: 20_000,
                threads: 2,
                ..Default::default()
            },
        )
        .solve(&requests)
        .unwrap();
        for (a, s) in analytic.iter().zip(&sim) {
            assert_eq!(a.points, s.points);
            let bound = s.provenance.error_bound.expect("sim reports a bound");
            for (&va, &vs) in a.values.iter().zip(&s.values) {
                let allowed = 0.02 * va.abs().max(1.0) + bound;
                assert!(
                    (va - vs).abs() <= allowed,
                    "{}: analytic {va} vs sim {vs} (allowed {allowed})",
                    a.name
                );
            }
        }
        // Same seed, different thread count: bitwise-reproducible simulation.
        let sim_again = SimulationEngine::new(
            voting(),
            SimulationOptions {
                replications: 20_000,
                threads: 5,
                ..Default::default()
            },
        )
        .solve(&requests)
        .unwrap();
        for (a, b) in sim.iter().zip(&sim_again) {
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn simulation_shares_replications_across_passage_measures() {
        let ts = linspace(2.0, 16.0, 4);
        let requests = vec![
            MeasureRequest::cdf(target("p2>=2"), &ts),
            MeasureRequest::mean(target("p2>=2")),
        ];
        let reports = SimulationEngine::new(
            voting(),
            SimulationOptions {
                replications: 2_000,
                ..Default::default()
            },
        )
        .solve(&requests)
        .unwrap();
        assert_eq!(reports[0].provenance.evaluations, 2_000);
        assert_eq!(reports[1].provenance.evaluations, 0);
        assert_eq!(reports[1].provenance.shared_hits, 2_000);
    }

    #[test]
    fn unknown_place_is_a_model_error_on_every_engine() {
        let requests = vec![MeasureRequest::mean(target("nosuch>=1"))];
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(AnalyticEngine::new(voting(), InversionMethod::euler())),
            Box::new(DistributedEngine::in_process(
                voting(),
                InversionMethod::euler(),
                PipelineOptions::with_workers(2),
            )),
            Box::new(SimulationEngine::new(
                voting(),
                SimulationOptions::default(),
            )),
            Box::new(UniformizationEngine::new(voting())),
        ];
        for engine in engines {
            match engine.solve(&requests) {
                Err(EngineError::Model(m)) => assert!(m.contains("nosuch"), "{m}"),
                other => panic!("{}: expected a model error, got {other:?}", engine.name()),
            }
        }
    }

    /// A one-token three-state ring with exponential holding times: the
    /// passage a → {c} is hypoexponential(2, 1), so the engines have a shared
    /// closed-form anchor.
    fn exp_ring() -> ModelSpec {
        ModelSpec::Dnamaca(
            r"
\place{a}{1}
\place{b}{0}
\place{c}{0}

\transition{ab}{
    \condition{a > 0}
    \action{ next->a = a - 1; next->b = b + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(2.0, s); }
}
\transition{bc}{
    \condition{b > 0}
    \action{ next->b = b - 1; next->c = c + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(1.0, s); }
}
\transition{ca}{
    \condition{c > 0}
    \action{ next->c = c - 1; next->a = a + 1; }
    \weight{1.0}
    \sojourntimeLT{ return expLT(3.0, s); }
}
"
            .to_string(),
        )
    }

    #[test]
    fn uniformization_agrees_with_analytic_on_every_kind() {
        let ts = linspace(0.5, 8.0, 6);
        let requests = vec![
            MeasureRequest::cdf(target("c>=1"), &ts),
            MeasureRequest::transient(target("c>=1"), &ts),
            MeasureRequest::density(target("c>=1"), &ts),
            MeasureRequest::quantile(target("c>=1"), &[0.5, 0.9]).with_t_points(&ts),
            MeasureRequest::mean(target("c>=1")),
            MeasureRequest::moment(target("c>=1"), 2),
        ];
        let uniform = UniformizationEngine::new(exp_ring())
            .solve(&requests)
            .unwrap();
        let analytic = AnalyticEngine::new(exp_ring(), InversionMethod::euler())
            .solve(&requests)
            .unwrap();
        for (u, a) in uniform.iter().zip(&analytic) {
            assert_eq!(u.name, a.name);
            assert_eq!(u.provenance.engine, "uniformization");
            let bound = u
                .provenance
                .error_bound
                .expect("uniformization reports a bound");
            // The dominant discrepancy is the analytic engine's inversion
            // error (the uniformization bound is ~1e-12); quantiles also see
            // the shared search's grid resolution.
            let slack = match &u.kind {
                MeasureKind::Quantile { .. } => 2e-2,
                _ => 1e-4,
            };
            for (x, y) in u.values.iter().zip(&a.values) {
                assert!(
                    (x - y).abs() <= bound + slack * x.abs().max(y.abs()).max(1.0),
                    "{}: uniformization {x} vs analytic {y} (bound {bound})",
                    u.name
                );
            }
        }
        // The closed-form hypoexponential mean: 1/2 + 1/1.
        let mean = &uniform[4];
        assert!((mean.values[0] - 1.5).abs() < 1e-9, "{}", mean.values[0]);
    }

    #[test]
    fn phase_chain_cache_serves_repeat_solves_bitwise() {
        let ts = linspace(0.5, 8.0, 6);
        let requests = vec![
            MeasureRequest::cdf(target("c>=1"), &ts),
            MeasureRequest::transient(target("c>=1"), &ts),
            MeasureRequest::mean(target("c>=1")),
        ];
        let cache = Arc::new(PhaseChainCache::new(4));
        let engine = UniformizationEngine::new(exp_ring()).with_phase_cache(Arc::clone(&cache));
        let cold = engine.solve(&requests).unwrap();
        // First solve builds one passage chain (cdf + mean share the target)
        // and one transient chain.
        assert_eq!(cold[0].provenance.model_cache_hits, 0);
        assert_eq!(cold[0].provenance.model_cache_misses, 2);
        assert_eq!(cache.len(), 2);
        let warm = engine.solve(&requests).unwrap();
        assert_eq!(warm[0].provenance.model_cache_hits, 2);
        assert_eq!(warm[0].provenance.model_cache_misses, 0);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.values, w.values, "{} changed under the cache", c.name);
        }
        // The cache changes nothing about the values: an uncached engine
        // reports the same numbers bitwise.
        let uncached = UniformizationEngine::new(exp_ring())
            .solve(&requests)
            .unwrap();
        for (c, u) in cold.iter().zip(&uncached) {
            assert_eq!(c.values, u.values);
        }
        assert_eq!(uncached[0].provenance.model_cache_misses, 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn uniformization_rejects_non_exponential_models() {
        let requests = vec![MeasureRequest::cdf(
            target("p2>=2"),
            &linspace(1.0, 10.0, 4),
        )];
        match UniformizationEngine::new(voting()).solve(&requests) {
            Err(EngineError::Unsupported(m)) => {
                assert!(m.contains("exponential"), "{m}");
            }
            other => panic!("expected unsupported, got {other:?}"),
        }
    }

    #[test]
    fn uniformization_applies_detects_the_scenario_family() {
        assert!(uniformization_applies(&exp_ring()));
        assert!(!uniformization_applies(&voting()));
    }

    #[test]
    fn simulation_rejects_degenerate_passage_targets() {
        // p1 starts with all voters, so p1>=1 holds initially.
        let requests = vec![MeasureRequest::mean(target("p1>=1"))];
        match SimulationEngine::new(voting(), SimulationOptions::default()).solve(&requests) {
            Err(EngineError::Unsupported(m)) => assert!(m.contains("initial marking"), "{m}"),
            other => panic!("expected unsupported, got {other:?}"),
        }
    }

    #[test]
    fn moment_one_matches_mean_and_known_values() {
        let model = voting();
        let engine = AnalyticEngine::new(model, InversionMethod::euler());
        let mean = engine
            .solve(&[MeasureRequest::mean(target("p2>=2"))])
            .unwrap()
            .remove(0);
        let m1 = engine
            .solve(&[MeasureRequest::moment(target("p2>=2"), 1)])
            .unwrap()
            .remove(0);
        assert_eq!(mean.values, m1.values);
        let m2 = engine
            .solve(&[MeasureRequest::moment(target("p2>=2"), 2)])
            .unwrap()
            .remove(0);
        // E[T²] ≥ E[T]² always; sanity-check the stencil is in a plausible range.
        let (mu, mu2) = (mean.values[0], m2.values[0]);
        assert!(
            mu > 0.0 && mu2 >= mu * mu * 0.99,
            "E[T] = {mu}, E[T²] = {mu2}"
        );
    }
}
