//! The master process: planning, distribution, checkpointing and final inversion.

use crate::batch::{BatchJob, BatchResult, MeasureResult, MeasureSpec};
use crate::cache::{ResultCache, LEGACY_MEASURE_KEY};
use crate::checkpoint::{load_checkpoint_by_measure, CheckpointWriter};
use crate::transport::{ExecutionPlan, InProcess, SimulatedLatency, Transport};
use crate::work::WorkItem;
use crate::worker::WorkerStats;
use smp_laplace::{union_s_points, InversionMethod, SPointPlan};
use smp_numeric::Complex64;
use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Number of worker threads ("slave processors").  0 or 1 means a single worker.
    pub workers: usize,
    /// When set, computed values are appended to this file and reloaded on the next
    /// run (checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Optional simulated master⇄worker network latency applied per result
    /// *message* (chunking amortises it across the chunk's points).
    pub simulated_latency: Option<std::time::Duration>,
    /// Number of work items dispatched to a worker per queue request and
    /// answered with a single result message.  `0` picks a size automatically
    /// (enough chunks for ~4 per worker, capped at 64 items).
    pub chunk_size: usize,
    /// A result cache that outlives single runs.  When set, the pipeline
    /// dedupes against and deposits into this cache instead of building a
    /// run-local one, so values computed by one run are warm for the next —
    /// this is how the query server makes repeated/overlapping grids
    /// near-free.  Checkpoint *restore* is skipped (the shared cache **is**
    /// the restored state); checkpoint *writes* still happen when a path is
    /// configured.
    pub shared_cache: Option<Arc<ResultCache>>,
}

impl PipelineOptions {
    /// A convenience constructor for "N workers, nothing else".
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions {
            workers,
            ..Default::default()
        }
    }

    /// Sets the dispatch chunk size (builder style); `0` means automatic.
    pub fn chunked(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    fn resolve_chunk_size(&self, outstanding: usize, workers: usize) -> usize {
        if self.chunk_size > 0 {
            return self.chunk_size;
        }
        // Aim for ~4 chunks per worker so the tail of the run stays balanced,
        // while capping the per-message payload.
        (outstanding / (workers * 4)).clamp(1, 64)
    }
}

/// Errors produced by a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// A worker failed to evaluate the transform at some point.
    Evaluation {
        /// The failing `s`-point.
        s: Complex64,
        /// Description of the failure (typically a convergence report).
        message: String,
    },
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// A measure's plan was left with unevaluated points (e.g. a worker died
    /// without reporting a value).
    Incomplete {
        /// Name of the measure whose plan is not fully covered.
        measure: String,
    },
    /// The transport backend itself failed: a spec would not compile or
    /// encode, every worker was lost with work outstanding, or a closure-based
    /// measure was handed to a process-boundary backend.
    Transport {
        /// Description of the backend failure.
        message: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Evaluation { s, message } => {
                write!(f, "evaluation failed at s = {s}: {message}")
            }
            PipelineError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PipelineError::Incomplete { measure } => {
                write!(f, "measure '{measure}' has unevaluated transform points")
            }
            PipelineError::Transport { message } => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// The transform key [`DistributedPipeline::run_cdf`] caches and checkpoints
/// its raw density values under.  Distinct from the legacy (untagged) key so
/// that checkpoints written by pre-batch versions of `run_cdf` — which stored
/// `L(s)/s` untagged — can never be misread as raw densities.
pub const RUN_CDF_TRANSFORM_KEY: &str = "__run_cdf";

/// The outcome of a single-measure pipeline run.
#[derive(Debug)]
pub struct PipelineResult {
    /// The user-requested time points.
    pub t_points: Vec<f64>,
    /// The inverted function values at those points (density, CDF or transient
    /// probability depending on the transform supplied).
    pub values: Vec<f64>,
    /// Wall-clock duration of the whole run (planning to inversion).
    pub elapsed: std::time::Duration,
    /// Number of `s`-points evaluated in this run.
    pub evaluations: usize,
    /// Number of planned `s`-points satisfied from the checkpoint/cache.
    pub cache_hits: usize,
    /// Name of the transport backend that ran the evaluations.
    pub backend: &'static str,
    /// Protocol messages exchanged with the workers.
    pub messages: usize,
    /// Bytes shipped (or simulated) on the wire; zero in-process.
    pub bytes_on_wire: u64,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
}

/// The distributed analysis pipeline of Section 4 of the paper.
#[derive(Debug, Clone)]
pub struct DistributedPipeline {
    method: InversionMethod,
    options: PipelineOptions,
}

impl DistributedPipeline {
    /// Creates a pipeline with the given inversion method and options.
    pub fn new(method: InversionMethod, options: PipelineOptions) -> Self {
        DistributedPipeline { method, options }
    }

    /// The configured options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Solves a whole [`BatchJob`] — N measures over shared or distinct time
    /// grids — in one distributed run.
    ///
    /// The master plans the `s`-points of every measure, takes the union per
    /// transform key (so measures sharing a transform never evaluate a point
    /// twice), dedupes the union against the measure-keyed cache restored from
    /// the checkpoint, and dispatches the remaining points in chunks through
    /// the global work queue.  Each worker answers a chunk with one message;
    /// every value is cached and checkpointed under its measure's transform
    /// key; once all values have arrived the master inverts each measure on
    /// its own time grid, applying the kind-specific post-processing
    /// (`/s` + monotone clamp for CDFs, `[0, 1]` clamp for transients).
    ///
    /// # Example
    ///
    /// A two-measure batch — the density *and* the CDF of the same Erlang
    /// passage — sharing one transform key, so the CDF costs no extra
    /// transform evaluations:
    ///
    /// ```
    /// use smp_pipeline::{BatchJob, DistributedPipeline, MeasureSpec, PipelineOptions};
    /// use smp_laplace::InversionMethod;
    /// use smp_distributions::{Dist, LaplaceTransform};
    ///
    /// let d = Dist::erlang(2.0, 3);
    /// let lst = |s| Ok(d.lst(s));
    /// let ts: Vec<f64> = (1..=8).map(|k| k as f64 * 0.5).collect();
    ///
    /// let job = BatchJob::new()
    ///     .with_measure(MeasureSpec::density("erlang:density", &ts, lst).with_transform_key("erlang"))
    ///     .with_measure(MeasureSpec::cdf("erlang:cdf", &ts, lst).with_transform_key("erlang"));
    ///
    /// let pipeline =
    ///     DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
    /// let result = pipeline.run_batch(job).unwrap();
    ///
    /// let density = result.measure("erlang:density").unwrap();
    /// let cdf = result.measure("erlang:cdf").unwrap();
    /// // The shared key means the CDF reused every one of the density's points.
    /// assert_eq!(cdf.evaluations, 0);
    /// assert_eq!(cdf.shared_hits, density.evaluations);
    /// // The CDF is monotone and ends near 1.
    /// assert!(cdf.values.windows(2).all(|w| w[1] >= w[0]));
    /// assert!(*cdf.values.last().unwrap() > 0.95);
    /// ```
    pub fn run_batch(&self, job: BatchJob<'_>) -> Result<BatchResult, PipelineError> {
        match self.options.simulated_latency {
            Some(latency) => {
                self.execute(job, &SimulatedLatency::new(self.options.workers, latency))
            }
            None => self.execute(job, &InProcess::new(self.options.workers)),
        }
    }

    /// The generic pipeline core: plans, dedupes, dispatches and inverts a
    /// batch over **any** [`Transport`] backend.
    ///
    /// [`DistributedPipeline::run_batch`], [`DistributedPipeline::run`] and
    /// [`DistributedPipeline::run_cdf`] are all thin shims over this method
    /// with the backend chosen from [`PipelineOptions`]; pass a
    /// [`crate::transport::TcpTransport`] here (or from the `smpq` CLI via
    /// `--workers tcp:ADDR,...`) to farm the evaluations out to worker
    /// *processes*.  Process-boundary backends require every measure to be
    /// built with [`MeasureSpec::from_spec`].
    pub fn execute(
        &self,
        job: BatchJob<'_>,
        transport: &dyn Transport,
    ) -> Result<BatchResult, PipelineError> {
        let started = Instant::now();
        let backend = transport.name();
        let measures = job.into_measures();
        if measures.is_empty() {
            return Ok(BatchResult {
                measures: Vec::new(),
                elapsed: started.elapsed(),
                evaluations: 0,
                cache_hits: 0,
                shared_hits: 0,
                chunk_size: self.options.chunk_size.max(1),
                chunks_dispatched: 0,
                backend,
                messages: 0,
                bytes_on_wire: 0,
                disconnects: 0,
                states: None,
                hotpath: Default::default(),
                model_cache_hits: 0,
                model_cache_misses: 0,
                worker_stats: Vec::new(),
            });
        }
        let plans: Vec<SPointPlan> = measures
            .iter()
            .map(|m| SPointPlan::new(self.method.clone(), m.t_points()))
            .collect();

        // Restore any checkpointed values into their measure shards — unless a
        // long-lived shared cache is injected, which already holds every value
        // deposited by earlier runs.
        let local_cache;
        let cache: &ResultCache = match &self.options.shared_cache {
            Some(shared) => shared.as_ref(),
            None => {
                let restored = match &self.options.checkpoint_path {
                    Some(path) => load_checkpoint_by_measure(path)?,
                    None => BTreeMap::new(),
                };
                local_cache = ResultCache::from_shards(restored);
                &local_cache
            }
        };

        // Group measures by transform key, preserving first-appearance order.
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (mi, m) in measures.iter().enumerate() {
            match groups.iter_mut().find(|(k, _)| *k == m.transform_key()) {
                Some((_, members)) => members.push(mi),
                None => groups.push((m.transform_key(), vec![mi])),
            }
        }

        // Per key group: the union of the members' planned s-points, deduped
        // against the restored cache.  The first member needing an uncached
        // point owns its evaluation; other members count it as a shared hit.
        let mut items: Vec<WorkItem> = Vec::new();
        let mut cache_hits = vec![0usize; measures.len()];
        let mut shared_hits = vec![0usize; measures.len()];
        let mut evaluations = vec![0usize; measures.len()];
        for (key, members) in &groups {
            let union = union_s_points(members.iter().map(|&mi| &plans[mi]));
            let wanted: Vec<HashSet<(u64, u64)>> = members
                .iter()
                .map(|&mi| {
                    plans[mi]
                        .s_points()
                        .iter()
                        .map(|s| (s.re.to_bits(), s.im.to_bits()))
                        .collect()
                })
                .collect();
            for &s in &union {
                let bits = (s.re.to_bits(), s.im.to_bits());
                let mut needing = members
                    .iter()
                    .zip(&wanted)
                    .filter(|(_, set)| set.contains(&bits))
                    .map(|(&mi, _)| mi);
                if cache.contains(key, s) {
                    for mi in needing {
                        cache_hits[mi] += 1;
                    }
                } else {
                    let owner = needing.next().expect("union point wanted by someone");
                    evaluations[owner] += 1;
                    for mi in needing {
                        shared_hits[mi] += 1;
                    }
                    items.push(WorkItem {
                        measure: owner,
                        index: items.len(),
                        s,
                    });
                }
            }
        }

        let mut checkpoint = match &self.options.checkpoint_path {
            Some(path) => Some(CheckpointWriter::open(path)?),
            None => None,
        };

        let chunk_size = self
            .options
            .resolve_chunk_size(items.len(), transport.parallelism().max(1));
        let plan = ExecutionPlan {
            evaluators: measures.iter().map(|m| m.evaluator()).collect(),
            items,
            chunk_size,
            method: self.method.name().to_string(),
        };
        let keys: Vec<&str> = measures.iter().map(|m| m.transform_key()).collect();

        // The transport drains the plan; the master caches and checkpoints
        // every arriving value under its measure's transform key inside the
        // collection callback (this is the code path a multi-host deployment
        // runs when messages come off the network).
        let mut first_error: Option<PipelineError> = None;
        let mut chunks_dispatched = 0usize;
        // A fully-warm run has nothing to dispatch: skip the transport
        // entirely rather than (for the TCP backend) blocking on a worker
        // rendezvous that no worker has any reason to attend.
        let transport_result = if plan.items.is_empty() {
            Ok(crate::transport::TransportReport::default())
        } else {
            transport.execute(plan, &mut |message| {
                chunks_dispatched += 1;
                for outcome in message.results {
                    // The measure index ultimately comes off the wire for the
                    // TCP backend; an out-of-range echo must fail the run,
                    // not panic it (handlers already reject mismatched
                    // echoes — this is the transport-independent backstop).
                    let Some(key) = keys.get(outcome.item.measure).copied() else {
                        first_error.get_or_insert(PipelineError::Transport {
                            message: format!(
                                "result references measure {} but the batch has {}",
                                outcome.item.measure,
                                keys.len()
                            ),
                        });
                        continue;
                    };
                    match outcome.outcome {
                        Ok(value) => {
                            cache.insert(key, outcome.item.s, value);
                            if let Some(writer) = checkpoint.as_mut() {
                                if let Err(e) = writer.record_tagged(key, outcome.item.s, value) {
                                    first_error.get_or_insert(PipelineError::Io(e));
                                }
                            }
                        }
                        Err(message_text) => {
                            first_error.get_or_insert(PipelineError::Evaluation {
                                s: outcome.item.s,
                                message: message_text,
                            });
                        }
                    }
                }
            })
        };

        // A per-point evaluation failure is more specific than a transport
        // failure it may have caused; report it first.
        if let Some(error) = first_error {
            return Err(error);
        }
        let report = transport_result?;

        // Invert each measure on its own grid with kind-specific
        // post-processing (the /s trick for CDFs lives in
        // `MeasureKind::postprocess`).
        let mut measure_results = Vec::with_capacity(measures.len());
        for (mi, m) in measures.iter().enumerate() {
            let shard = cache.snapshot(m.transform_key());
            if !plans[mi].is_satisfied_by(&shard) {
                return Err(PipelineError::Incomplete {
                    measure: m.name().to_string(),
                });
            }
            measure_results.push(MeasureResult {
                name: m.name().to_string(),
                kind: m.kind(),
                t_points: m.t_points().to_vec(),
                values: m.kind().postprocess(&plans[mi], &shard),
                evaluations: evaluations[mi],
                cache_hits: cache_hits[mi],
                shared_hits: shared_hits[mi],
            });
        }

        Ok(BatchResult {
            measures: measure_results,
            elapsed: started.elapsed(),
            evaluations: evaluations.iter().sum(),
            cache_hits: cache_hits.iter().sum(),
            shared_hits: shared_hits.iter().sum(),
            chunk_size,
            chunks_dispatched,
            backend,
            messages: report.messages,
            bytes_on_wire: report.bytes_on_wire,
            disconnects: report.disconnects,
            states: report.states,
            hotpath: report.hotpath,
            model_cache_hits: report.model_cache_hits,
            model_cache_misses: report.model_cache_misses,
            worker_stats: report.worker_stats,
        })
    }

    /// Runs the pipeline for a single measure: plans the `s`-points for
    /// `t_points`, distributes the evaluations of `transform` across the worker
    /// pool, checkpoints results, and inverts once all values are available.
    ///
    /// `transform` is any Laplace-domain evaluator — for the paper's workloads it is
    /// a closure around `PassageTimeSolver::transform_at` or
    /// `TransientSolver::transform_at`; for a CDF it wraps the density transform and
    /// divides by `s`.
    ///
    /// Values are cached and checkpointed under the *legacy* (untagged)
    /// transform key, so checkpoints written by pre-batch versions of the tool
    /// are reused and new checkpoints remain readable by them.
    pub fn run<F>(&self, transform: F, t_points: &[f64]) -> Result<PipelineResult, PipelineError>
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync,
    {
        self.run_single(
            MeasureSpec::density("single", t_points, transform)
                .with_transform_key(LEGACY_MEASURE_KEY),
        )
    }

    /// Runs a one-measure batch and flattens the result into a
    /// [`PipelineResult`].
    fn run_single(&self, measure: MeasureSpec<'_>) -> Result<PipelineResult, PipelineError> {
        let mut batch = self.run_batch(BatchJob::new().with_measure(measure))?;
        let measure = batch.measures.pop().expect("single-measure batch");
        Ok(PipelineResult {
            t_points: measure.t_points,
            values: measure.values,
            elapsed: batch.elapsed,
            evaluations: batch.evaluations,
            cache_hits: batch.cache_hits,
            backend: batch.backend,
            messages: batch.messages,
            bytes_on_wire: batch.bytes_on_wire,
            worker_stats: batch.worker_stats,
        })
    }

    /// Runs the pipeline for the *cumulative distribution* of a density transform:
    /// identical to [`DistributedPipeline::run`] but inverting `L(s)/s`, with the
    /// result clamped into `[0, 1]` and made monotone.
    ///
    /// The cached/checkpointed values are the *raw* density transform (the `/s`
    /// division happens at inversion), stored under the dedicated
    /// [`RUN_CDF_TRANSFORM_KEY`].  Versions of this tool predating batch jobs
    /// checkpointed `L(s)/s` from `run_cdf` as *untagged* records; keeping the
    /// new records under their own key means such a stale file simply misses
    /// the cache and is recomputed, rather than being divided by `s` twice.  To
    /// share evaluations between a density and a CDF over one transform, use
    /// [`DistributedPipeline::run_batch`] with a common transform key.
    pub fn run_cdf<F>(
        &self,
        density_transform: F,
        t_points: &[f64],
    ) -> Result<PipelineResult, PipelineError>
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync,
    {
        self.run_single(
            MeasureSpec::cdf("single", t_points, density_transform)
                .with_transform_key(RUN_CDF_TRANSFORM_KEY),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_laplace::Euler;
    use smp_numeric::stats::linspace;

    fn density_evaluator(d: Dist) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync {
        move |s| Ok(d.lst(s))
    }

    #[test]
    fn pipeline_matches_direct_inversion() {
        let d = Dist::erlang(2.0, 3);
        let ts = linspace(0.2, 5.0, 25);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
        let result = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        let reference = Euler::standard().invert_many(&d, &ts);
        assert_eq!(result.values.len(), reference.len());
        for (a, b) in result.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(result.cache_hits, 0);
        assert!(result.evaluations > 0);
        let total_by_workers: usize = result.worker_stats.iter().map(|w| w.evaluated).sum();
        assert_eq!(total_by_workers, result.evaluations);
    }

    #[test]
    fn worker_count_does_not_change_the_answer() {
        let d = Dist::mixture(vec![
            (0.5, Dist::exponential(1.0)),
            (0.5, Dist::uniform(0.5, 2.0)),
        ]);
        let ts = linspace(0.25, 4.0, 12);
        let mut previous: Option<Vec<f64>> = None;
        for workers in [1, 2, 8] {
            let pipeline = DistributedPipeline::new(
                InversionMethod::euler(),
                PipelineOptions::with_workers(workers),
            );
            let result = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
            if let Some(prev) = &previous {
                for (a, b) in result.values.iter().zip(prev) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
            previous = Some(result.values);
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_answer() {
        let d = Dist::erlang(1.5, 2);
        let ts = linspace(0.25, 4.0, 10);
        let mut previous: Option<Vec<f64>> = None;
        for chunk_size in [1, 7, 64] {
            let pipeline = DistributedPipeline::new(
                InversionMethod::euler(),
                PipelineOptions::with_workers(3).chunked(chunk_size),
            );
            let result = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
            if let Some(prev) = &previous {
                assert_eq!(&result.values, prev);
            }
            previous = Some(result.values);
        }
    }

    #[test]
    fn checkpoint_restart_skips_evaluations() {
        let d = Dist::erlang(1.0, 2);
        let ts = linspace(0.5, 3.0, 6);
        let mut path = std::env::temp_dir();
        path.push(format!("smp-pipeline-ckpt-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let options = PipelineOptions {
            workers: 2,
            checkpoint_path: Some(path.clone()),
            ..Default::default()
        };
        let pipeline = DistributedPipeline::new(InversionMethod::euler(), options);
        let first = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert!(first.evaluations > 0);

        let second = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert_eq!(second.evaluations, 0);
        assert_eq!(second.cache_hits, first.evaluations);
        for (a, b) in first.values.iter().zip(&second.values) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_cache_makes_second_run_fully_warm() {
        let d = Dist::erlang(2.0, 2);
        let ts = linspace(0.5, 4.0, 9);
        let shared = Arc::new(ResultCache::new());
        let options = PipelineOptions {
            workers: 2,
            shared_cache: Some(Arc::clone(&shared)),
            ..Default::default()
        };
        let pipeline = DistributedPipeline::new(InversionMethod::euler(), options);
        let first = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert!(first.evaluations > 0);
        assert_eq!(first.cache_hits, 0);
        assert!(!shared.is_empty(), "values deposited into the shared cache");

        // A *different* pipeline holding the same cache is fully warm: zero
        // evaluations, every planned point a cache hit, identical values.
        let options = PipelineOptions {
            workers: 5,
            shared_cache: Some(Arc::clone(&shared)),
            ..Default::default()
        };
        let pipeline = DistributedPipeline::new(InversionMethod::euler(), options);
        let second = pipeline.run(density_evaluator(d), &ts).unwrap();
        assert_eq!(second.evaluations, 0);
        assert_eq!(second.cache_hits, first.evaluations);
        assert_eq!(second.values, first.values, "bitwise identical");
    }

    #[test]
    fn evaluation_errors_are_reported() {
        let ts = vec![1.0];
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(3));
        let result = pipeline.run(
            |s: Complex64| {
                if s.im > 20.0 {
                    Err("synthetic convergence failure".to_string())
                } else {
                    Ok(Complex64::ONE / (Complex64::ONE + s))
                }
            },
            &ts,
        );
        match result {
            Err(PipelineError::Evaluation { message, .. }) => {
                assert!(message.contains("synthetic"));
            }
            other => panic!("expected an evaluation error, got {other:?}"),
        }
    }

    #[test]
    fn cdf_run_is_monotone_and_bounded() {
        let d = Dist::exponential(0.8);
        let ts = linspace(0.25, 8.0, 30);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));
        let result = pipeline.run_cdf(density_evaluator(d.clone()), &ts).unwrap();
        for w in result.values.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
        for (t, v) in ts.iter().zip(&result.values) {
            let expect = 1.0 - (-0.8 * t).exp();
            assert!((v - expect).abs() < 1e-5, "F({t}) = {v} vs {expect}");
        }
    }

    #[test]
    fn passage_time_solver_through_the_pipeline() {
        use smp_core::{PassageTimeSolver, SmpBuilder};
        // Two exponential stages: passage density is Erlang(2, 2).
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let ts = linspace(0.2, 4.0, 16);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
        let result = pipeline
            .run(
                |s| {
                    solver
                        .transform_at(s)
                        .map(|p| p.value)
                        .map_err(|e| e.to_string())
                },
                &ts,
            )
            .unwrap();
        for (t, v) in ts.iter().zip(&result.values) {
            let expect = 4.0 * t * (-2.0 * t).exp();
            assert!((v - expect).abs() < 1e-5, "f({t}) = {v} vs {expect}");
        }
    }

    #[test]
    fn batch_of_three_kinds_matches_single_measure_runs() {
        let d = Dist::erlang(2.0, 2);
        let ts = linspace(0.3, 5.0, 14);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));

        // A density, a CDF over the same transform (shared key), and a
        // "transient" measure over an unrelated transform.
        let job = BatchJob::new()
            .with_measure(
                MeasureSpec::density("d", &ts, density_evaluator(d.clone()))
                    .with_transform_key("erlang"),
            )
            .with_measure(
                MeasureSpec::cdf("F", &ts, density_evaluator(d.clone()))
                    .with_transform_key("erlang"),
            )
            .with_measure(MeasureSpec::transient("p", &ts, |s: Complex64| {
                // L{0.5 e^{-t}} — a transient-like bounded function.
                Ok(Complex64::real(0.5) / (Complex64::ONE + s))
            }));
        let batch = pipeline.run_batch(job).unwrap();
        assert_eq!(batch.measures.len(), 3);

        // Density matches a plain run.
        let reference = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert_eq!(batch.measure("d").unwrap().values, reference.values);

        // CDF matches run_cdf.
        let cdf_reference = pipeline.run_cdf(density_evaluator(d.clone()), &ts).unwrap();
        let cdf = batch.measure("F").unwrap();
        for (a, b) in cdf.values.iter().zip(&cdf_reference.values) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // The CDF shared every point with the density measure.
        assert_eq!(cdf.evaluations, 0);
        assert_eq!(cdf.shared_hits, batch.measure("d").unwrap().evaluations);

        // Transient values are 0.5 e^{-t}, clamped into [0, 1].
        let p = batch.measure("p").unwrap();
        for (t, v) in p.iter() {
            let expect = 0.5 * (-t).exp();
            assert!((v - expect).abs() < 1e-6, "p({t}) = {v} vs {expect}");
            assert!((0.0..=1.0).contains(&v));
        }

        // Totals are consistent.
        assert_eq!(
            batch.evaluations,
            batch.measures.iter().map(|m| m.evaluations).sum::<usize>()
        );
        let by_workers: usize = batch.worker_stats.iter().map(|w| w.evaluated).sum();
        assert_eq!(by_workers, batch.evaluations);
        let messages: usize = batch.worker_stats.iter().map(|w| w.messages).sum();
        assert_eq!(messages, batch.chunks_dispatched);
        assert!(batch.chunk_size >= 1);
    }

    #[test]
    fn spec_based_measures_match_closure_based_ones_bitwise() {
        use crate::batch::MeasureKind;
        use crate::transform::{ModelSpec, ResolveTarget, TargetSpec, TransformSpec};
        use smp_core::PassageTimeSolver;
        use smp_smspn::StateSpace;

        let model = ModelSpec::Voting {
            voters: 3,
            polling: 1,
            central: 1,
        };
        let targets = TargetSpec::parse("p2>=2").unwrap();
        let ts = linspace(1.0, 12.0, 6);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(3));

        // Spec-based: the measure carries a description, the transport
        // compiles it (exactly what a TCP worker process would do).
        let spec = TransformSpec::passage(model.clone(), targets.clone());
        let job = BatchJob::new().with_measure(MeasureSpec::from_spec(
            "voting:density",
            MeasureKind::Density,
            &ts,
            spec.clone(),
        ));
        let from_spec = pipeline.run_batch(job).unwrap();

        // Closure-based: the CLI's historical construction path.
        let source = model.source();
        let net = smp_dnamaca::parse_model(&source).unwrap();
        let space = StateSpace::explore(&net).unwrap();
        let target_states = targets.resolve(&net, &space).unwrap();
        let solver =
            PassageTimeSolver::new(space.smp(), &[space.initial_state()], &target_states).unwrap();
        let from_closure = pipeline
            .run(
                |s| {
                    solver
                        .transform_at(s)
                        .map(|p| p.value)
                        .map_err(|e| e.to_string())
                },
                &ts,
            )
            .unwrap();

        let spec_values = &from_spec.measures[0].values;
        assert_eq!(spec_values, &from_closure.values, "bitwise identical");
        // The spec-based measure's default key folds the model fingerprint in.
        assert_eq!(from_spec.measures[0].name, "voting:density",);
        assert_eq!(spec.transform_key(), {
            let fp = model.fingerprint();
            format!("m{fp}:passage:p2>=2")
        });
    }

    #[test]
    fn batch_reports_backend_and_protocol_counters() {
        let d = Dist::erlang(1.0, 2);
        let ts = linspace(0.5, 3.0, 5);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));
        let job =
            BatchJob::new().with_measure(MeasureSpec::density("d", &ts, density_evaluator(d)));
        let batch = pipeline.run_batch(job).unwrap();
        assert_eq!(batch.backend, "in-process");
        assert_eq!(batch.bytes_on_wire, 0);
        assert_eq!(batch.disconnects, 0);
        assert_eq!(batch.messages, batch.chunks_dispatched);

        // The same job over the simulated-latency backend accounts bytes.
        let d = Dist::erlang(1.0, 2);
        let pipeline = DistributedPipeline::new(
            InversionMethod::euler(),
            PipelineOptions {
                workers: 2,
                simulated_latency: Some(std::time::Duration::from_micros(100)),
                ..Default::default()
            },
        );
        let job =
            BatchJob::new().with_measure(MeasureSpec::density("d", &ts, density_evaluator(d)));
        let batch = pipeline.run_batch(job).unwrap();
        assert_eq!(batch.backend, "sim-latency");
        assert!(batch.bytes_on_wire > 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));
        let batch = pipeline.run_batch(BatchJob::new()).unwrap();
        assert!(batch.measures.is_empty());
        assert_eq!(batch.evaluations, 0);
        assert_eq!(batch.chunks_dispatched, 0);
    }

    #[test]
    fn distinct_keys_do_not_share_even_with_identical_grids() {
        let a = Dist::exponential(1.0);
        let b = Dist::exponential(3.0);
        let ts = linspace(0.5, 4.0, 8);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));
        let job = BatchJob::new()
            .with_measure(MeasureSpec::density("a", &ts, density_evaluator(a)))
            .with_measure(MeasureSpec::density("b", &ts, density_evaluator(b)));
        let batch = pipeline.run_batch(job).unwrap();
        let union = SPointPlan::new(InversionMethod::euler(), &ts).len();
        // Default keys are the measure names: no sharing, |union| evaluations each.
        for m in &batch.measures {
            assert_eq!(m.evaluations, union);
            assert_eq!(m.shared_hits, 0);
            assert_eq!(m.cache_hits, 0);
        }
        assert_eq!(batch.evaluations, 2 * union);
    }
}
