//! The master process: planning, distribution, checkpointing and final inversion.

use crate::cache::ResultCache;
use crate::checkpoint::{load_checkpoint, CheckpointWriter};
use crate::work::WorkQueue;
use crate::worker::{run_worker, WorkerMessage, WorkerStats};
use crossbeam::channel::unbounded;
use smp_laplace::{InversionMethod, SPointPlan};
use smp_numeric::Complex64;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Number of worker threads ("slave processors").  0 or 1 means a single worker.
    pub workers: usize,
    /// When set, computed values are appended to this file and reloaded on the next
    /// run (checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Optional simulated master⇄worker network latency applied per result message.
    pub simulated_latency: Option<Duration>,
}

impl PipelineOptions {
    /// A convenience constructor for "N workers, nothing else".
    pub fn with_workers(workers: usize) -> Self {
        PipelineOptions {
            workers,
            ..Default::default()
        }
    }
}

/// Errors produced by a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// A worker failed to evaluate the transform at some point.
    Evaluation {
        /// The failing `s`-point.
        s: Complex64,
        /// Description of the failure (typically a convergence report).
        message: String,
    },
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Evaluation { s, message } => {
                write!(f, "evaluation failed at s = {s}: {message}")
            }
            PipelineError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// The outcome of a pipeline run.
#[derive(Debug)]
pub struct PipelineResult {
    /// The user-requested time points.
    pub t_points: Vec<f64>,
    /// The inverted function values at those points (density, CDF or transient
    /// probability depending on the transform supplied).
    pub values: Vec<f64>,
    /// Wall-clock duration of the whole run (planning to inversion).
    pub elapsed: Duration,
    /// Number of `s`-points evaluated in this run.
    pub evaluations: usize,
    /// Number of planned `s`-points satisfied from the checkpoint/cache.
    pub cache_hits: usize,
    /// Per-worker accounting.
    pub worker_stats: Vec<WorkerStats>,
}

/// The distributed analysis pipeline of Section 4 of the paper.
#[derive(Debug, Clone)]
pub struct DistributedPipeline {
    method: InversionMethod,
    options: PipelineOptions,
}

impl DistributedPipeline {
    /// Creates a pipeline with the given inversion method and options.
    pub fn new(method: InversionMethod, options: PipelineOptions) -> Self {
        DistributedPipeline { method, options }
    }

    /// The configured options.
    pub fn options(&self) -> &PipelineOptions {
        &self.options
    }

    /// Runs the pipeline: plans the `s`-points for `t_points`, distributes the
    /// evaluations of `transform` across the worker pool, checkpoints results, and
    /// inverts once all values are available.
    ///
    /// `transform` is any Laplace-domain evaluator — for the paper's workloads it is
    /// a closure around `PassageTimeSolver::transform_at` or
    /// `TransientSolver::transform_at`; for a CDF it wraps the density transform and
    /// divides by `s`.
    pub fn run<F>(&self, transform: F, t_points: &[f64]) -> Result<PipelineResult, PipelineError>
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync,
    {
        let started = Instant::now();
        let plan = SPointPlan::new(self.method.clone(), t_points);

        // Restore any checkpointed values.
        let restored = match &self.options.checkpoint_path {
            Some(path) => load_checkpoint(path)?,
            None => smp_laplace::TransformValues::new(),
        };
        let cache = ResultCache::from_values(restored);
        let outstanding: Vec<Complex64> = plan
            .s_points()
            .iter()
            .copied()
            .filter(|&s| !cache.contains(s))
            .collect();
        let cache_hits = plan.len() - outstanding.len();

        let mut checkpoint = match &self.options.checkpoint_path {
            Some(path) => Some(CheckpointWriter::open(path)?),
            None => None,
        };

        let queue = WorkQueue::new(&outstanding);
        let expected = outstanding.len();
        let workers = self.options.workers.max(1);
        let latency = self.options.simulated_latency;
        let (tx, rx) = unbounded::<WorkerMessage>();

        let mut first_error: Option<PipelineError> = None;
        let worker_stats: Vec<WorkerStats> = crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for id in 0..workers {
                let queue = &queue;
                let transform = &transform;
                let tx = tx.clone();
                handles.push(scope.spawn(move |_| run_worker(id, queue, transform, latency, &tx)));
            }
            drop(tx);

            // The master collects results as they arrive, caching and checkpointing
            // each one (this is also where a multi-host deployment would receive
            // messages from the network).
            for _ in 0..expected {
                let Ok(message) = rx.recv() else { break };
                match message.outcome {
                    Ok(value) => {
                        cache.insert(message.item.s, value);
                        if let Some(writer) = checkpoint.as_mut() {
                            if let Err(e) = writer.record(message.item.s, value) {
                                first_error.get_or_insert(PipelineError::Io(e));
                            }
                        }
                    }
                    Err(message_text) => {
                        first_error.get_or_insert(PipelineError::Evaluation {
                            s: message.item.s,
                            message: message_text,
                        });
                    }
                }
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
        .expect("pipeline scope failed");

        if let Some(error) = first_error {
            return Err(error);
        }

        let values = plan.invert(&cache.snapshot());
        Ok(PipelineResult {
            t_points: t_points.to_vec(),
            values,
            elapsed: started.elapsed(),
            evaluations: expected,
            cache_hits,
            worker_stats,
        })
    }

    /// Runs the pipeline for the *cumulative distribution* of a density transform:
    /// identical to [`DistributedPipeline::run`] but inverting `L(s)/s`, with the
    /// result clamped into `[0, 1]` and made monotone.
    pub fn run_cdf<F>(
        &self,
        density_transform: F,
        t_points: &[f64],
    ) -> Result<PipelineResult, PipelineError>
    where
        F: Fn(Complex64) -> Result<Complex64, String> + Sync,
    {
        let mut result = self.run(|s| density_transform(s).map(|value| value / s), t_points)?;
        let mut running_max: f64 = 0.0;
        for v in result.values.iter_mut() {
            *v = v.clamp(0.0, 1.0).max(running_max);
            running_max = *v;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_distributions::Dist;
    use smp_distributions::LaplaceTransform as _;
    use smp_laplace::Euler;
    use smp_numeric::stats::linspace;

    fn density_evaluator(d: Dist) -> impl Fn(Complex64) -> Result<Complex64, String> + Sync {
        move |s| Ok(d.lst(s))
    }

    #[test]
    fn pipeline_matches_direct_inversion() {
        let d = Dist::erlang(2.0, 3);
        let ts = linspace(0.2, 5.0, 25);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
        let result = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        let reference = Euler::standard().invert_many(&d, &ts);
        assert_eq!(result.values.len(), reference.len());
        for (a, b) in result.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(result.cache_hits, 0);
        assert!(result.evaluations > 0);
        let total_by_workers: usize = result.worker_stats.iter().map(|w| w.evaluated).sum();
        assert_eq!(total_by_workers, result.evaluations);
    }

    #[test]
    fn worker_count_does_not_change_the_answer() {
        let d = Dist::mixture(vec![
            (0.5, Dist::exponential(1.0)),
            (0.5, Dist::uniform(0.5, 2.0)),
        ]);
        let ts = linspace(0.25, 4.0, 12);
        let mut previous: Option<Vec<f64>> = None;
        for workers in [1, 2, 8] {
            let pipeline = DistributedPipeline::new(
                InversionMethod::euler(),
                PipelineOptions::with_workers(workers),
            );
            let result = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
            if let Some(prev) = &previous {
                for (a, b) in result.values.iter().zip(prev) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
            previous = Some(result.values);
        }
    }

    #[test]
    fn checkpoint_restart_skips_evaluations() {
        let d = Dist::erlang(1.0, 2);
        let ts = linspace(0.5, 3.0, 6);
        let mut path = std::env::temp_dir();
        path.push(format!("smp-pipeline-ckpt-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let options = PipelineOptions {
            workers: 2,
            checkpoint_path: Some(path.clone()),
            simulated_latency: None,
        };
        let pipeline = DistributedPipeline::new(InversionMethod::euler(), options);
        let first = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert!(first.evaluations > 0);

        let second = pipeline.run(density_evaluator(d.clone()), &ts).unwrap();
        assert_eq!(second.evaluations, 0);
        assert_eq!(second.cache_hits, first.evaluations);
        for (a, b) in first.values.iter().zip(&second.values) {
            assert!((a - b).abs() < 1e-12);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evaluation_errors_are_reported() {
        let ts = vec![1.0];
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(3));
        let result = pipeline.run(
            |s: Complex64| {
                if s.im > 20.0 {
                    Err("synthetic convergence failure".to_string())
                } else {
                    Ok(Complex64::ONE / (Complex64::ONE + s))
                }
            },
            &ts,
        );
        match result {
            Err(PipelineError::Evaluation { message, .. }) => {
                assert!(message.contains("synthetic"));
            }
            other => panic!("expected an evaluation error, got {other:?}"),
        }
    }

    #[test]
    fn cdf_run_is_monotone_and_bounded() {
        let d = Dist::exponential(0.8);
        let ts = linspace(0.25, 8.0, 30);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(2));
        let result = pipeline.run_cdf(density_evaluator(d.clone()), &ts).unwrap();
        for w in result.values.windows(2) {
            assert!(w[1] + 1e-12 >= w[0]);
        }
        for (t, v) in ts.iter().zip(&result.values) {
            let expect = 1.0 - (-0.8 * t).exp();
            assert!((v - expect).abs() < 1e-5, "F({t}) = {v} vs {expect}");
        }
    }

    #[test]
    fn passage_time_solver_through_the_pipeline() {
        use smp_core::{PassageTimeSolver, SmpBuilder};
        // Two exponential stages: passage density is Erlang(2, 2).
        let mut b = SmpBuilder::new(3);
        b.add_transition(0, 1, 1.0, Dist::exponential(2.0));
        b.add_transition(1, 2, 1.0, Dist::exponential(2.0));
        b.add_transition(2, 0, 1.0, Dist::exponential(1.0));
        let smp = b.build().unwrap();
        let solver = PassageTimeSolver::new(&smp, &[0], &[2]).unwrap();
        let ts = linspace(0.2, 4.0, 16);
        let pipeline =
            DistributedPipeline::new(InversionMethod::euler(), PipelineOptions::with_workers(4));
        let result = pipeline
            .run(
                |s| {
                    solver
                        .transform_at(s)
                        .map(|p| p.value)
                        .map_err(|e| e.to_string())
                },
                &ts,
            )
            .unwrap();
        for (t, v) in ts.iter().zip(&result.values) {
            let expect = 4.0 * t * (-2.0 * t).exp();
            assert!((v - expect).abs() < 1e-5, "f({t}) = {v} vs {expect}");
        }
    }
}
