//! On-disk checkpointing of computed transform values.
//!
//! Every `(s, L(s))` pair returned by a worker is appended to a checkpoint file, so
//! that a crashed or interrupted analysis can be restarted without recomputing the
//! points already done — the paper stores results "both in memory and on disk so
//! that all computation is checkpointed".
//!
//! The format is a plain text file, one record per line.  A *legacy* record
//! (everything the tool wrote before batch jobs existed) has four fields:
//!
//! ```text
//! <s.re bits hex> <s.im bits hex> <value.re bits hex> <value.im bits hex>
//! ```
//!
//! A *measure-tagged* record prefixes those four fields with the percent-encoded
//! transform key of the measure that produced the value:
//!
//! ```text
//! k=<transform key> <s.re bits hex> <s.im bits hex> <value.re bits hex> <value.im bits hex>
//! ```
//!
//! Both kinds may coexist in one file: legacy records load into the
//! [`crate::cache::LEGACY_MEASURE_KEY`] shard, tagged records into their own
//! measure's shard, so checkpoints written by older versions keep working next
//! to new ones.  Bit-exact hexadecimal encoding of the `f64`s guarantees that a
//! reloaded point matches its planned `s`-point exactly (the cache is keyed by
//! bit pattern).  Malformed trailing lines (e.g. from a crash mid-write) are
//! ignored on load.

use crate::cache::LEGACY_MEASURE_KEY;
use crate::wire;
use smp_laplace::TransformValues;
use smp_numeric::Complex64;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

// Key and float fields use the workspace wire encoding (`crate::wire`), so a
// checkpoint record and a TCP result frame are built from the same primitives:
// percent-encoded strings, 16-hex-digit bit patterns for `f64`s.

/// An append-only checkpoint writer.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    records: usize,
}

impl CheckpointWriter {
    /// Opens (creating or appending to) a checkpoint file.
    ///
    /// A crash mid-write can leave a torn final record with no terminating
    /// newline. Appending straight after it would merge the first new record
    /// into the torn line, so both would be discarded as malformed on the next
    /// load; the torn tail is therefore newline-terminated before appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let unterminated_tail = match File::open(&path) {
            Ok(mut f) => {
                use std::io::{Read, Seek, SeekFrom};
                if f.seek(SeekFrom::End(0))? == 0 {
                    false
                } else {
                    f.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    f.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if unterminated_tail {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(CheckpointWriter {
            path,
            writer,
            records: 0,
        })
    }

    /// Appends one computed value in the legacy (untagged) format and flushes
    /// it to disk.  Equivalent to
    /// [`record_tagged`](CheckpointWriter::record_tagged) with the legacy key.
    pub fn record(&mut self, s: Complex64, value: Complex64) -> std::io::Result<()> {
        self.record_tagged(LEGACY_MEASURE_KEY, s, value)
    }

    /// Appends one computed value for a measure's transform key and flushes it
    /// to disk.  The legacy key writes an untagged 4-field record, so
    /// single-measure checkpoints remain readable by older loaders.
    pub fn record_tagged(
        &mut self,
        key: &str,
        s: Complex64,
        value: Complex64,
    ) -> std::io::Result<()> {
        if key != LEGACY_MEASURE_KEY {
            write!(self.writer, "k={} ", wire::encode_str(key))?;
        }
        writeln!(
            self.writer,
            "{} {} {} {}",
            wire::encode_f64(s.re),
            wire::encode_f64(s.im),
            wire::encode_f64(value.re),
            wire::encode_f64(value.im)
        )?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written by this writer instance.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// The checkpoint file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads every valid record from a checkpoint file into per-measure shards:
/// tagged records under their transform key, legacy 4-field records under
/// [`LEGACY_MEASURE_KEY`].  A missing file yields an empty map; malformed lines
/// are skipped.
pub fn load_checkpoint_by_measure(
    path: impl AsRef<Path>,
) -> std::io::Result<BTreeMap<String, TransformValues>> {
    let mut shards: BTreeMap<String, TransformValues> = BTreeMap::new();
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(shards),
        Err(e) => return Err(e),
    };
    let reader = BufReader::new(file);
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace().peekable();
        // A checkpoint file is untrusted input (it may be truncated, edited,
        // or from another run), so this loop never panics: every malformed
        // construct is skipped, never unwrapped (smp-lint D004).
        let key = match parts.next_if(|first| first.starts_with("k=")) {
            Some(field) => {
                let Some(key) = wire::decode_str(&field[2..]) else {
                    continue; // malformed key escape
                };
                key
            }
            None => LEGACY_MEASURE_KEY.to_string(),
        };
        // `wire::decode_f64` insists on exactly 16 hex digits; anything
        // shorter is a record truncated mid-field by a crash, which would
        // otherwise still parse as a (tiny, wrong) f64.
        let mut next_f64 = || -> Option<f64> { parts.next().and_then(wire::decode_f64) };
        let (Some(sre), Some(sim), Some(vre), Some(vim)) =
            (next_f64(), next_f64(), next_f64(), next_f64())
        else {
            continue; // skip malformed (possibly truncated) record
        };
        if parts.next().is_some() {
            continue; // trailing junk: not a cleanly written record
        }
        shards
            .entry(key)
            .or_default()
            .insert(Complex64::new(sre, sim), Complex64::new(vre, vim));
    }
    Ok(shards)
}

/// Loads the legacy (untagged) records of a checkpoint file.  A missing file
/// yields an empty cache; malformed lines and measure-tagged records are
/// skipped — use [`load_checkpoint_by_measure`] for the full restore.
pub fn load_checkpoint(path: impl AsRef<Path>) -> std::io::Result<TransformValues> {
    Ok(load_checkpoint_by_measure(path)?
        .remove(LEGACY_MEASURE_KEY)
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smp-pipeline-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_exact_bits() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let points = vec![
            (
                Complex64::new(0.1, -0.3),
                Complex64::new(1.0 / 3.0, 2.0e-15),
            ),
            (
                Complex64::new(9.55, std::f64::consts::PI),
                Complex64::new(-0.25, 0.75),
            ),
        ];
        {
            let mut writer = CheckpointWriter::open(&path).unwrap();
            for &(s, v) in &points {
                writer.record(s, v).unwrap();
            }
            assert_eq!(writer.records_written(), 2);
            assert_eq!(writer.path(), path.as_path());
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        for &(s, v) in &points {
            assert_eq!(loaded.get(s), Some(v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let loaded = load_checkpoint(temp_path("never-created")).unwrap();
        assert!(loaded.is_empty());
        let shards = load_checkpoint_by_measure(temp_path("never-created")).unwrap();
        assert!(shards.is_empty());
    }

    #[test]
    fn append_accumulates_and_corrupt_lines_skipped() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::ONE, Complex64::I).unwrap();
        }
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::new(2.0, 0.0), Complex64::new(0.5, 0.0))
                .unwrap();
        }
        // Simulate a crash mid-write: a truncated line at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "deadbeef 1234").unwrap();
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(Complex64::ONE), Some(Complex64::I));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tagged_and_legacy_records_coexist() {
        let path = temp_path("mixed");
        let _ = std::fs::remove_file(&path);
        let s_old = Complex64::new(1.25, -7.5);
        let s_new = Complex64::new(0.5, 2.5);
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            // An old-format record followed by two measure-tagged ones (one of
            // which reuses the *same* s-point under a different measure).
            w.record(s_old, Complex64::ONE).unwrap();
            w.record_tagged("voters:density", s_new, Complex64::I)
                .unwrap();
            w.record_tagged("failure cdf", s_old, Complex64::new(0.25, 0.0))
                .unwrap();
            assert_eq!(w.records_written(), 3);
        }
        let shards = load_checkpoint_by_measure(&path).unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[LEGACY_MEASURE_KEY].get(s_old), Some(Complex64::ONE));
        assert_eq!(shards["voters:density"].get(s_new), Some(Complex64::I));
        // The space in the key survives the percent-encoding round-trip.
        assert_eq!(
            shards["failure cdf"].get(s_old),
            Some(Complex64::new(0.25, 0.0))
        );
        // The legacy loader sees only the untagged record.
        let legacy = load_checkpoint(&path).unwrap();
        assert_eq!(legacy.len(), 1);
        assert_eq!(legacy.get(s_old), Some(Complex64::ONE));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn key_encoding_is_the_shared_wire_string_field() {
        // Records written with the shared primitives stay readable and
        // single-field for awkward keys (escape-sequence edge cases are
        // covered by the wire module's own tests).
        for key in ["plain", "with space", "pct%sign", "naïve-ütf8", "a=b k=c"] {
            let encoded = wire::encode_str(key);
            assert!(
                !encoded.contains(char::is_whitespace),
                "encoded {encoded:?} must be one field"
            );
            assert_eq!(wire::decode_str(&encoded).as_deref(), Some(key));
        }
    }
}
