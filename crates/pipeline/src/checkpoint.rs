//! On-disk checkpointing of computed transform values.
//!
//! Every `(s, L(s))` pair returned by a worker is appended to a checkpoint file, so
//! that a crashed or interrupted analysis can be restarted without recomputing the
//! points already done — the paper stores results "both in memory and on disk so
//! that all computation is checkpointed".
//!
//! The format is a plain text file, one record per line:
//!
//! ```text
//! <s.re bits hex> <s.im bits hex> <value.re bits hex> <value.im bits hex>
//! ```
//!
//! Bit-exact hexadecimal encoding of the `f64`s guarantees that a reloaded point
//! matches its planned `s`-point exactly (the cache is keyed by bit pattern).
//! Malformed trailing lines (e.g. from a crash mid-write) are ignored on load.

use smp_laplace::TransformValues;
use smp_numeric::Complex64;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// An append-only checkpoint writer.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    records: usize,
}

impl CheckpointWriter {
    /// Opens (creating or appending to) a checkpoint file.
    ///
    /// A crash mid-write can leave a torn final record with no terminating
    /// newline. Appending straight after it would merge the first new record
    /// into the torn line, so both would be discarded as malformed on the next
    /// load; the torn tail is therefore newline-terminated before appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let unterminated_tail = match File::open(&path) {
            Ok(mut f) => {
                use std::io::{Read, Seek, SeekFrom};
                if f.seek(SeekFrom::End(0))? == 0 {
                    false
                } else {
                    f.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    f.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if unterminated_tail {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(CheckpointWriter {
            path,
            writer,
            records: 0,
        })
    }

    /// Appends one computed value and flushes it to disk.
    pub fn record(&mut self, s: Complex64, value: Complex64) -> std::io::Result<()> {
        writeln!(
            self.writer,
            "{:016x} {:016x} {:016x} {:016x}",
            s.re.to_bits(),
            s.im.to_bits(),
            value.re.to_bits(),
            value.im.to_bits()
        )?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written by this writer instance.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// The checkpoint file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads every valid record from a checkpoint file.  A missing file yields an empty
/// cache; malformed lines are skipped.
pub fn load_checkpoint(path: impl AsRef<Path>) -> std::io::Result<TransformValues> {
    let mut values = TransformValues::new();
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(values),
        Err(e) => return Err(e),
    };
    let reader = BufReader::new(file);
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        // Every field of a complete record is exactly 16 hex digits; anything
        // shorter is a record truncated mid-field by a crash, which would
        // otherwise still parse as a (tiny, wrong) f64.
        let mut next_f64 = || -> Option<f64> {
            parts
                .next()
                .filter(|p| p.len() == 16)
                .and_then(|p| u64::from_str_radix(p, 16).ok())
                .map(f64::from_bits)
        };
        let (Some(sre), Some(sim), Some(vre), Some(vim)) =
            (next_f64(), next_f64(), next_f64(), next_f64())
        else {
            continue; // skip malformed (possibly truncated) record
        };
        if parts.next().is_some() {
            continue; // trailing junk: not a cleanly written record
        }
        values.insert(Complex64::new(sre, sim), Complex64::new(vre, vim));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smp-pipeline-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_exact_bits() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let points = vec![
            (
                Complex64::new(0.1, -0.3),
                Complex64::new(1.0 / 3.0, 2.0e-15),
            ),
            (
                Complex64::new(9.55, 3.1415926535),
                Complex64::new(-0.25, 0.75),
            ),
        ];
        {
            let mut writer = CheckpointWriter::open(&path).unwrap();
            for &(s, v) in &points {
                writer.record(s, v).unwrap();
            }
            assert_eq!(writer.records_written(), 2);
            assert_eq!(writer.path(), path.as_path());
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        for &(s, v) in &points {
            assert_eq!(loaded.get(s), Some(v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let loaded = load_checkpoint(temp_path("never-created")).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn append_accumulates_and_corrupt_lines_skipped() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::ONE, Complex64::I).unwrap();
        }
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::new(2.0, 0.0), Complex64::new(0.5, 0.0))
                .unwrap();
        }
        // Simulate a crash mid-write: a truncated line at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "deadbeef 1234").unwrap();
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(Complex64::ONE), Some(Complex64::I));
        std::fs::remove_file(&path).unwrap();
    }
}
