//! On-disk checkpointing of computed transform values.
//!
//! Every `(s, L(s))` pair returned by a worker is appended to a checkpoint file, so
//! that a crashed or interrupted analysis can be restarted without recomputing the
//! points already done — the paper stores results "both in memory and on disk so
//! that all computation is checkpointed".
//!
//! The format is a plain text file, one record per line.  A *legacy* record
//! (everything the tool wrote before batch jobs existed) has four fields:
//!
//! ```text
//! <s.re bits hex> <s.im bits hex> <value.re bits hex> <value.im bits hex>
//! ```
//!
//! A *measure-tagged* record prefixes those four fields with the percent-encoded
//! transform key of the measure that produced the value:
//!
//! ```text
//! k=<transform key> <s.re bits hex> <s.im bits hex> <value.re bits hex> <value.im bits hex>
//! ```
//!
//! Both kinds may coexist in one file: legacy records load into the
//! [`crate::cache::LEGACY_MEASURE_KEY`] shard, tagged records into their own
//! measure's shard, so checkpoints written by older versions keep working next
//! to new ones.  Bit-exact hexadecimal encoding of the `f64`s guarantees that a
//! reloaded point matches its planned `s`-point exactly (the cache is keyed by
//! bit pattern).  Malformed trailing lines (e.g. from a crash mid-write) are
//! ignored on load.

use crate::cache::LEGACY_MEASURE_KEY;
use crate::wire;
use smp_laplace::TransformValues;
use smp_numeric::Complex64;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

// Key and float fields use the workspace wire encoding (`crate::wire`), so a
// checkpoint record and a TCP result frame are built from the same primitives:
// percent-encoded strings, 16-hex-digit bit patterns for `f64`s.

/// An append-only checkpoint writer.
#[derive(Debug)]
pub struct CheckpointWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    records: usize,
}

impl CheckpointWriter {
    /// Opens (creating or appending to) a checkpoint file.
    ///
    /// A crash mid-write can leave a torn final record with no terminating
    /// newline. Appending straight after it would merge the first new record
    /// into the torn line, so both would be discarded as malformed on the next
    /// load; the torn tail is therefore newline-terminated before appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let unterminated_tail = match File::open(&path) {
            Ok(mut f) => {
                use std::io::{Read, Seek, SeekFrom};
                if f.seek(SeekFrom::End(0))? == 0 {
                    false
                } else {
                    f.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    f.read_exact(&mut last)?;
                    last[0] != b'\n'
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if unterminated_tail {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(CheckpointWriter {
            path,
            writer,
            records: 0,
        })
    }

    /// Appends one computed value in the legacy (untagged) format and flushes
    /// it to disk.  Equivalent to
    /// [`record_tagged`](CheckpointWriter::record_tagged) with the legacy key.
    pub fn record(&mut self, s: Complex64, value: Complex64) -> std::io::Result<()> {
        self.record_tagged(LEGACY_MEASURE_KEY, s, value)
    }

    /// Appends one computed value for a measure's transform key and flushes it
    /// to disk.  The legacy key writes an untagged 4-field record, so
    /// single-measure checkpoints remain readable by older loaders.
    pub fn record_tagged(
        &mut self,
        key: &str,
        s: Complex64,
        value: Complex64,
    ) -> std::io::Result<()> {
        if key != LEGACY_MEASURE_KEY {
            write!(self.writer, "k={} ", wire::encode_str(key))?;
        }
        writeln!(
            self.writer,
            "{} {} {} {}",
            wire::encode_f64(s.re),
            wire::encode_f64(s.im),
            wire::encode_f64(value.re),
            wire::encode_f64(value.im)
        )?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written by this writer instance.
    pub fn records_written(&self) -> usize {
        self.records
    }

    /// The checkpoint file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads every valid record from a checkpoint file into per-measure shards:
/// tagged records under their transform key, legacy 4-field records under
/// [`LEGACY_MEASURE_KEY`].  A missing file yields an empty map; malformed lines
/// are skipped.
pub fn load_checkpoint_by_measure(
    path: impl AsRef<Path>,
) -> std::io::Result<BTreeMap<String, TransformValues>> {
    let mut shards: BTreeMap<String, TransformValues> = BTreeMap::new();
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(shards),
        Err(e) => return Err(e),
    };
    let reader = BufReader::new(file);
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace().peekable();
        // A checkpoint file is untrusted input (it may be truncated, edited,
        // or from another run), so this loop never panics: every malformed
        // construct is skipped, never unwrapped (smp-lint D004).
        let key = match parts.next_if(|first| first.starts_with("k=")) {
            Some(field) => {
                let Some(key) = wire::decode_str(&field[2..]) else {
                    continue; // malformed key escape
                };
                key
            }
            None => LEGACY_MEASURE_KEY.to_string(),
        };
        // `wire::decode_f64` insists on exactly 16 hex digits; anything
        // shorter is a record truncated mid-field by a crash, which would
        // otherwise still parse as a (tiny, wrong) f64.
        let mut next_f64 = || -> Option<f64> { parts.next().and_then(wire::decode_f64) };
        let (Some(sre), Some(sim), Some(vre), Some(vim)) =
            (next_f64(), next_f64(), next_f64(), next_f64())
        else {
            continue; // skip malformed (possibly truncated) record
        };
        if parts.next().is_some() {
            continue; // trailing junk: not a cleanly written record
        }
        shards
            .entry(key)
            .or_default()
            .insert(Complex64::new(sre, sim), Complex64::new(vre, vim));
    }
    Ok(shards)
}

/// Loads the legacy (untagged) records of a checkpoint file.  A missing file
/// yields an empty cache; malformed lines and measure-tagged records are
/// skipped — use [`load_checkpoint_by_measure`] for the full restore.
pub fn load_checkpoint(path: impl AsRef<Path>) -> std::io::Result<TransformValues> {
    Ok(load_checkpoint_by_measure(path)?
        .remove(LEGACY_MEASURE_KEY)
        .unwrap_or_default())
}

// ---------------------------------------------------------------------------
// Mid-point shard snapshots
// ---------------------------------------------------------------------------

/// The sidecar path holding the mid-point shard snapshot for a checkpoint
/// file: `<checkpoint>.shard`.
pub fn shard_snapshot_path(checkpoint: impl AsRef<Path>) -> PathBuf {
    let mut name = checkpoint.as_ref().as_os_str().to_os_string();
    name.push(".shard");
    PathBuf::from(name)
}

/// The complete mid-point state of a sharded Laplace-space solve: the global
/// term vector (every shard's owned rows, zero entries elided), the
/// convergence fold, and the round counter — everything a restarted master
/// needs to re-handshake a fleet and continue the SpMV iteration from round
/// `round + 1` rather than from scratch.
///
/// The snapshot is *shard-count independent*: entries are keyed by global row
/// index, and row blocks are pure functions of `(num_states, shards)`, so a
/// run killed at 4 shards can resume at 2.  Restoring yields bitwise the
/// iterate the killed run held, so the resumed solve converges to bitwise the
/// fault-free answer.
///
/// On-disk format (plain text like the checkpoint proper, one snapshot per
/// file, written atomically via tmp + rename):
///
/// ```text
/// shardckpt v=1 key=<enc> s=<hex16> <hex16> r=<round> total=<hex16> <hex16> quiet=<n> delta=<hex16> n=<entries>
/// <row> <hex16> <hex16>     (× n)
/// end
/// ```
///
/// The trailing `end` sentinel is the torn-write detector: a snapshot missing
/// it (or missing entry lines) loads as `None` and the solve starts the point
/// cold — never from a half-written iterate.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Transform key of the measure whose point was in flight.
    pub key: String,
    /// The Laplace point being solved when the snapshot was taken.
    pub s: Complex64,
    /// The exchange round *after which* the iterate was captured; resumption
    /// continues at `round + 1`.
    pub round: u64,
    /// Running total of the convergence fold (sum of per-round deltas).
    pub total: Complex64,
    /// Consecutive quiet rounds the fold had seen.
    pub quiet: u64,
    /// The fold's last per-round delta magnitude (may be `+inf` before any
    /// round lands).
    pub last_delta: f64,
    /// The global term vector: `(global row, value)`, zero entries elided,
    /// ascending row order.
    pub entries: Vec<(u32, Complex64)>,
}

impl ShardSnapshot {
    /// Writes the snapshot atomically: a temp file in the same directory is
    /// fully written, flushed, then renamed over `path`, so a crash mid-save
    /// leaves either the previous snapshot or a detectably torn temp — never
    /// a half-new file at the real path.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            writeln!(
                w,
                "shardckpt v=1 key={} s={} {} r={} total={} {} quiet={} delta={} n={}",
                wire::encode_str(&self.key),
                wire::encode_f64(self.s.re),
                wire::encode_f64(self.s.im),
                self.round,
                wire::encode_f64(self.total.re),
                wire::encode_f64(self.total.im),
                self.quiet,
                wire::encode_f64(self.last_delta),
                self.entries.len()
            )?;
            for &(row, v) in &self.entries {
                writeln!(
                    w,
                    "{row} {} {}",
                    wire::encode_f64(v.re),
                    wire::encode_f64(v.im)
                )?;
            }
            writeln!(w, "end")?;
            w.flush()?;
            w.into_inner()
                .map_err(|e| std::io::Error::other(e.to_string()))?
                .sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a snapshot, or `None` when the file is missing, torn (no `end`
    /// sentinel, short entry list), or malformed in any way — untrusted input
    /// never panics and never yields a partial iterate.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Option<ShardSnapshot>> {
        let file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = BufReader::new(file).lines();
        let Some(header) = lines.next().transpose()? else {
            return Ok(None);
        };
        let mut fields = header.split_whitespace();
        if fields.next() != Some("shardckpt") || fields.next() != Some("v=1") {
            return Ok(None);
        }
        fn tagged<'a>(field: Option<&'a str>, tag: &str) -> Option<&'a str> {
            field?.strip_prefix(tag)
        }
        let Some(key) = tagged(fields.next(), "key=").and_then(wire::decode_str) else {
            return Ok(None);
        };
        let s_re = tagged(fields.next(), "s=").and_then(wire::decode_f64);
        let s_im = fields.next().and_then(wire::decode_f64);
        let round = tagged(fields.next(), "r=").and_then(|f| f.parse::<u64>().ok());
        let total_re = tagged(fields.next(), "total=").and_then(wire::decode_f64);
        let total_im = fields.next().and_then(wire::decode_f64);
        let quiet = tagged(fields.next(), "quiet=").and_then(|f| f.parse::<u64>().ok());
        let last_delta = tagged(fields.next(), "delta=").and_then(wire::decode_f64);
        let count = tagged(fields.next(), "n=").and_then(|f| f.parse::<usize>().ok());
        let (
            Some(s_re),
            Some(s_im),
            Some(round),
            Some(total_re),
            Some(total_im),
            Some(quiet),
            Some(last_delta),
            Some(count),
        ) = (
            s_re, s_im, round, total_re, total_im, quiet, last_delta, count,
        )
        else {
            return Ok(None);
        };
        if fields.next().is_some() {
            return Ok(None);
        }
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let Some(line) = lines.next().transpose()? else {
                return Ok(None); // torn: fewer entry lines than announced
            };
            let mut parts = line.split_whitespace();
            let row = parts.next().and_then(|f| f.parse::<u32>().ok());
            let re = parts.next().and_then(wire::decode_f64);
            let im = parts.next().and_then(wire::decode_f64);
            let (Some(row), Some(re), Some(im)) = (row, re, im) else {
                return Ok(None);
            };
            if parts.next().is_some() {
                return Ok(None);
            }
            entries.push((row, Complex64::new(re, im)));
        }
        match lines.next().transpose()? {
            Some(line) if line == "end" => Ok(Some(ShardSnapshot {
                key,
                s: Complex64::new(s_re, s_im),
                round,
                total: Complex64::new(total_re, total_im),
                quiet,
                last_delta,
                entries,
            })),
            _ => Ok(None), // missing sentinel: the save never completed
        }
    }

    /// Removes the snapshot file (missing is fine — the common case after a
    /// clean completion).
    pub fn remove(path: impl AsRef<Path>) -> std::io::Result<()> {
        match std::fs::remove_file(path.as_ref()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smp-pipeline-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_exact_bits() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let points = vec![
            (
                Complex64::new(0.1, -0.3),
                Complex64::new(1.0 / 3.0, 2.0e-15),
            ),
            (
                Complex64::new(9.55, std::f64::consts::PI),
                Complex64::new(-0.25, 0.75),
            ),
        ];
        {
            let mut writer = CheckpointWriter::open(&path).unwrap();
            for &(s, v) in &points {
                writer.record(s, v).unwrap();
            }
            assert_eq!(writer.records_written(), 2);
            assert_eq!(writer.path(), path.as_path());
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        for &(s, v) in &points {
            assert_eq!(loaded.get(s), Some(v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let loaded = load_checkpoint(temp_path("never-created")).unwrap();
        assert!(loaded.is_empty());
        let shards = load_checkpoint_by_measure(temp_path("never-created")).unwrap();
        assert!(shards.is_empty());
    }

    #[test]
    fn append_accumulates_and_corrupt_lines_skipped() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::ONE, Complex64::I).unwrap();
        }
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            w.record(Complex64::new(2.0, 0.0), Complex64::new(0.5, 0.0))
                .unwrap();
        }
        // Simulate a crash mid-write: a truncated line at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "deadbeef 1234").unwrap();
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(Complex64::ONE), Some(Complex64::I));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tagged_and_legacy_records_coexist() {
        let path = temp_path("mixed");
        let _ = std::fs::remove_file(&path);
        let s_old = Complex64::new(1.25, -7.5);
        let s_new = Complex64::new(0.5, 2.5);
        {
            let mut w = CheckpointWriter::open(&path).unwrap();
            // An old-format record followed by two measure-tagged ones (one of
            // which reuses the *same* s-point under a different measure).
            w.record(s_old, Complex64::ONE).unwrap();
            w.record_tagged("voters:density", s_new, Complex64::I)
                .unwrap();
            w.record_tagged("failure cdf", s_old, Complex64::new(0.25, 0.0))
                .unwrap();
            assert_eq!(w.records_written(), 3);
        }
        let shards = load_checkpoint_by_measure(&path).unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[LEGACY_MEASURE_KEY].get(s_old), Some(Complex64::ONE));
        assert_eq!(shards["voters:density"].get(s_new), Some(Complex64::I));
        // The space in the key survives the percent-encoding round-trip.
        assert_eq!(
            shards["failure cdf"].get(s_old),
            Some(Complex64::new(0.25, 0.0))
        );
        // The legacy loader sees only the untagged record.
        let legacy = load_checkpoint(&path).unwrap();
        assert_eq!(legacy.len(), 1);
        assert_eq!(legacy.get(s_old), Some(Complex64::ONE));
        std::fs::remove_file(&path).unwrap();
    }

    fn sample_snapshot() -> ShardSnapshot {
        ShardSnapshot {
            key: "voters:density".to_string(),
            s: Complex64::new(0.125, -3.5),
            round: 17,
            total: Complex64::new(0.75, 1e-12),
            quiet: 2,
            last_delta: 4.0e-11,
            entries: vec![
                (0, Complex64::new(1.0 / 3.0, -2.0e-15)),
                (5, Complex64::new(-0.25, 0.5)),
                (1023, Complex64::new(9.75, 0.0)),
            ],
        }
    }

    #[test]
    fn shard_snapshot_round_trips_bitwise() {
        let path = temp_path("shard-roundtrip");
        let _ = std::fs::remove_file(&path);
        let snapshot = sample_snapshot();
        snapshot.save(&path).unwrap();
        let loaded = ShardSnapshot::load(&path).unwrap().expect("snapshot loads");
        assert_eq!(loaded, snapshot);
        // Bit-exactness beyond PartialEq: the f64s must be the same bits.
        assert_eq!(loaded.s.re.to_bits(), snapshot.s.re.to_bits());
        assert_eq!(
            loaded.entries[0].1.im.to_bits(),
            snapshot.entries[0].1.im.to_bits()
        );
        ShardSnapshot::remove(&path).unwrap();
        assert!(ShardSnapshot::load(&path).unwrap().is_none());
        ShardSnapshot::remove(&path).unwrap(); // second remove is fine
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_snapshot_survives_infinite_delta() {
        // A point killed before its first round has last_delta = +inf; the
        // raw-bits f64 encoding must round-trip it.
        let path = temp_path("shard-inf");
        let _ = std::fs::remove_file(&path);
        let mut snapshot = sample_snapshot();
        snapshot.last_delta = f64::INFINITY;
        snapshot.save(&path).unwrap();
        let loaded = ShardSnapshot::load(&path).unwrap().expect("snapshot loads");
        assert!(loaded.last_delta.is_infinite());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_shard_snapshot_loads_as_none() {
        let path = temp_path("shard-torn");
        let _ = std::fs::remove_file(&path);
        let snapshot = sample_snapshot();
        snapshot.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // Drop the `end` sentinel: must refuse.
        std::fs::write(&path, full.trim_end_matches("end\n")).unwrap();
        assert!(ShardSnapshot::load(&path).unwrap().is_none());
        // Truncate mid-entry: must refuse.
        let cut = full.len() - 20;
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(ShardSnapshot::load(&path).unwrap().is_none());
        // Garbage header: must refuse, not panic.
        std::fs::write(&path, "not a snapshot\n").unwrap();
        assert!(ShardSnapshot::load(&path).unwrap().is_none());
        // The intact file still loads (sanity that the trims were the cause).
        std::fs::write(&path, &full).unwrap();
        assert_eq!(ShardSnapshot::load(&path).unwrap(), Some(snapshot));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_snapshot_path_is_a_sidecar() {
        assert_eq!(
            shard_snapshot_path("/tmp/run.ckpt"),
            PathBuf::from("/tmp/run.ckpt.shard")
        );
    }

    #[test]
    fn key_encoding_is_the_shared_wire_string_field() {
        // Records written with the shared primitives stay readable and
        // single-field for awkward keys (escape-sequence edge cases are
        // covered by the wire module's own tests).
        for key in ["plain", "with space", "pct%sign", "naïve-ütf8", "a=b k=c"] {
            let encoded = wire::encode_str(key);
            assert!(
                !encoded.contains(char::is_whitespace),
                "encoded {encoded:?} must be one field"
            );
            assert_eq!(wire::decode_str(&encoded).as_deref(), Some(key));
        }
    }
}
