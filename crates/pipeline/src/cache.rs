//! The shared in-memory result cache, keyed by measure.
//!
//! Workers deposit `(s, L(s))` pairs as they finish; the master reads the
//! complete cache to perform the final inversions.  The cache also answers "has
//! this point already been computed *for this measure*?" so that a checkpoint
//! restore (or overlapping time grids across successive queries) skips
//! redundant work — the paper caches results "both in memory and on disk so
//! that all computation is checkpointed", and caches them "both within and
//! across successive queries".
//!
//! Values are organised in *shards*: one [`TransformValues`] per **transform
//! key**.  Measures that evaluate the same underlying transform (say, the
//! density and the CDF of the same passage) can share a key and therefore share
//! evaluations; unrelated measures get distinct keys so their values never
//! collide even when their `s`-points coincide.  The key
//! [`LEGACY_MEASURE_KEY`] (the empty string) is the shard used by
//! single-measure runs and by checkpoint records written before measures
//! existed.

use parking_lot::RwLock;
use smp_laplace::TransformValues;
use smp_numeric::Complex64;
use std::collections::BTreeMap;

/// The transform key under which untagged (pre-measure) checkpoint records and
/// single-measure pipeline runs store their values.
pub const LEGACY_MEASURE_KEY: &str = "";

/// A thread-safe, measure-keyed collection of [`TransformValues`] shards.
#[derive(Debug, Default)]
pub struct ResultCache {
    shards: RwLock<BTreeMap<String, TransformValues>>,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates a cache whose [`LEGACY_MEASURE_KEY`] shard is seeded from
    /// previously computed values (untagged checkpoint restore).
    pub fn from_values(values: TransformValues) -> Self {
        let mut shards = BTreeMap::new();
        shards.insert(LEGACY_MEASURE_KEY.to_string(), values);
        ResultCache {
            shards: RwLock::new(shards),
        }
    }

    /// Creates a cache from a full measure-keyed restore
    /// (see `checkpoint::load_checkpoint_by_measure`).
    pub fn from_shards(shards: BTreeMap<String, TransformValues>) -> Self {
        ResultCache {
            shards: RwLock::new(shards),
        }
    }

    /// Stores a computed value under a transform key.
    pub fn insert(&self, key: &str, s: Complex64, value: Complex64) {
        let mut shards = self.shards.write();
        match shards.get_mut(key) {
            Some(shard) => shard.insert(s, value),
            None => {
                let mut shard = TransformValues::new();
                shard.insert(s, value);
                shards.insert(key.to_string(), shard);
            }
        }
    }

    /// Looks up a previously computed value for a transform key.
    pub fn get(&self, key: &str, s: Complex64) -> Option<Complex64> {
        self.shards.read().get(key).and_then(|shard| shard.get(s))
    }

    /// True when the point has already been computed for the transform key.
    pub fn contains(&self, key: &str, s: Complex64) -> bool {
        self.shards
            .read()
            .get(key)
            .is_some_and(|shard| shard.contains(s))
    }

    /// Total number of stored values across all shards.
    pub fn len(&self) -> usize {
        self.shards.read().values().map(TransformValues::len).sum()
    }

    /// Number of values stored for one transform key.
    pub fn shard_len(&self, key: &str) -> usize {
        self.shards.read().get(key).map_or(0, TransformValues::len)
    }

    /// True when no values are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The transform keys that currently have a shard (sorted, for
    /// deterministic reporting).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.shards.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Takes a consistent snapshot of one transform key's values (empty when
    /// the key has no shard).
    pub fn snapshot(&self, key: &str) -> TransformValues {
        self.shards.read().get(key).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_contains() {
        let cache = ResultCache::new();
        let s = Complex64::new(1.5, -2.0);
        assert!(cache.is_empty());
        assert!(!cache.contains("m", s));
        cache.insert("m", s, Complex64::I);
        assert_eq!(cache.get("m", s), Some(Complex64::I));
        assert!(cache.contains("m", s));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_are_isolated_by_key() {
        let cache = ResultCache::new();
        let s = Complex64::new(0.5, 3.0);
        cache.insert("density", s, Complex64::ONE);
        // The same s-point under another key is a distinct entry.
        assert!(!cache.contains("transient", s));
        cache.insert("transient", s, Complex64::I);
        assert_eq!(cache.get("density", s), Some(Complex64::ONE));
        assert_eq!(cache.get("transient", s), Some(Complex64::I));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.shard_len("density"), 1);
        assert_eq!(cache.shard_len("never-used"), 0);
        assert_eq!(
            cache.keys(),
            vec!["density".to_string(), "transient".to_string()]
        );
    }

    #[test]
    fn snapshot_is_independent() {
        let cache = ResultCache::new();
        cache.insert("m", Complex64::ONE, Complex64::ONE);
        let snap = cache.snapshot("m");
        cache.insert("m", Complex64::I, Complex64::I);
        assert_eq!(snap.len(), 1);
        assert_eq!(cache.shard_len("m"), 2);
        assert!(cache.snapshot("missing").is_empty());
    }

    #[test]
    fn seeded_from_legacy_checkpoint_values() {
        let mut values = TransformValues::new();
        values.insert(Complex64::new(2.0, 3.0), Complex64::new(0.5, 0.5));
        let cache = ResultCache::from_values(values);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(LEGACY_MEASURE_KEY, Complex64::new(2.0, 3.0)));
    }

    #[test]
    fn seeded_from_measure_keyed_shards() {
        let mut shards = BTreeMap::new();
        let mut a = TransformValues::new();
        a.insert(Complex64::ONE, Complex64::I);
        shards.insert("a".to_string(), a);
        let mut legacy = TransformValues::new();
        legacy.insert(Complex64::I, Complex64::ONE);
        shards.insert(LEGACY_MEASURE_KEY.to_string(), legacy);
        let cache = ResultCache::from_shards(shards);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains("a", Complex64::ONE));
        assert!(cache.contains(LEGACY_MEASURE_KEY, Complex64::I));
    }

    #[test]
    fn concurrent_inserts_all_visible() {
        let cache = Arc::new(ResultCache::new());
        crossbeam::scope(|scope| {
            for worker in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| {
                    let key = format!("measure-{}", worker % 2);
                    for k in 0..100 {
                        let s = Complex64::new(worker as f64, k as f64);
                        cache.insert(&key, s, Complex64::real(k as f64));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 800);
        assert_eq!(
            cache.get("measure-1", Complex64::new(3.0, 42.0)),
            Some(Complex64::real(42.0))
        );
    }
}
