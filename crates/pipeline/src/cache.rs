//! The shared in-memory result cache.
//!
//! Workers deposit `(s, L(s))` pairs as they finish; the master reads the complete
//! cache to perform the final inversion.  The cache also answers "has this point
//! already been computed?" so that a checkpoint restore (or overlapping time grids
//! across successive queries) skips redundant work — the paper caches results "both
//! in memory and on disk so that all computation is checkpointed".

use parking_lot::RwLock;
use smp_laplace::TransformValues;
use smp_numeric::Complex64;

/// A thread-safe wrapper around [`TransformValues`].
#[derive(Debug, Default)]
pub struct ResultCache {
    values: RwLock<TransformValues>,
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates a cache seeded from previously computed values (checkpoint restore).
    pub fn from_values(values: TransformValues) -> Self {
        ResultCache {
            values: RwLock::new(values),
        }
    }

    /// Stores a computed value.
    pub fn insert(&self, s: Complex64, value: Complex64) {
        self.values.write().insert(s, value);
    }

    /// Looks up a previously computed value.
    pub fn get(&self, s: Complex64) -> Option<Complex64> {
        self.values.read().get(s)
    }

    /// True when the point has already been computed.
    pub fn contains(&self, s: Complex64) -> bool {
        self.values.read().contains(s)
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.read().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.values.read().is_empty()
    }

    /// Takes a consistent snapshot of the stored values.
    pub fn snapshot(&self) -> TransformValues {
        self.values.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_contains() {
        let cache = ResultCache::new();
        let s = Complex64::new(1.5, -2.0);
        assert!(cache.is_empty());
        assert!(!cache.contains(s));
        cache.insert(s, Complex64::I);
        assert_eq!(cache.get(s), Some(Complex64::I));
        assert!(cache.contains(s));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_is_independent() {
        let cache = ResultCache::new();
        cache.insert(Complex64::ONE, Complex64::ONE);
        let snap = cache.snapshot();
        cache.insert(Complex64::I, Complex64::I);
        assert_eq!(snap.len(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn seeded_from_checkpoint_values() {
        let mut values = TransformValues::new();
        values.insert(Complex64::new(2.0, 3.0), Complex64::new(0.5, 0.5));
        let cache = ResultCache::from_values(values);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(Complex64::new(2.0, 3.0)));
    }

    #[test]
    fn concurrent_inserts_all_visible() {
        let cache = Arc::new(ResultCache::new());
        crossbeam::scope(|scope| {
            for worker in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| {
                    for k in 0..100 {
                        let s = Complex64::new(worker as f64, k as f64);
                        cache.insert(s, Complex64::real(k as f64));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 800);
        assert_eq!(
            cache.get(Complex64::new(3.0, 42.0)),
            Some(Complex64::real(42.0))
        );
    }
}
