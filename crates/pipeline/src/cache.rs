//! The shared in-memory result cache, keyed by measure.
//!
//! Workers deposit `(s, L(s))` pairs as they finish; the master reads the
//! complete cache to perform the final inversions.  The cache also answers "has
//! this point already been computed *for this measure*?" so that a checkpoint
//! restore (or overlapping time grids across successive queries) skips
//! redundant work — the paper caches results "both in memory and on disk so
//! that all computation is checkpointed", and caches them "both within and
//! across successive queries".
//!
//! Values are organised in *shards*: one [`TransformValues`] per **transform
//! key**.  Measures that evaluate the same underlying transform (say, the
//! density and the CDF of the same passage) can share a key and therefore share
//! evaluations; unrelated measures get distinct keys so their values never
//! collide even when their `s`-points coincide.  The key
//! [`LEGACY_MEASURE_KEY`] (the empty string) is the shard used by
//! single-measure runs and by checkpoint records written before measures
//! existed.
//!
//! ## Bounded operation
//!
//! One-shot runs build a cache, use it, and drop it, so the unbounded default
//! is fine there.  The always-on query server ([`crate::server`]) keeps one
//! cache alive across every request it ever answers, so it opts into a byte
//! limit ([`ResultCache::with_byte_limit`]): each shard's footprint is
//! approximated from its entry count and key length, and when an insert pushes
//! the total past the limit, whole shards are evicted least-recently-used
//! first (shard granularity — a transform's values are only useful together).
//! The most recently touched shard is never evicted, so a single request whose
//! working set exceeds the limit still completes; the limit should nonetheless
//! be sized well above the largest expected per-request working set.

use parking_lot::{Mutex, RwLock};
use smp_laplace::TransformValues;
use smp_numeric::Complex64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The transform key under which untagged (pre-measure) checkpoint records and
/// single-measure pipeline runs store their values.
pub const LEGACY_MEASURE_KEY: &str = "";

/// Approximate heap bytes per cached `(s, L(s))` entry: two `Complex64`s plus
/// ordered-map node overhead.  The figure is deliberately conservative (an
/// overestimate keeps a limited cache *under* its limit).
pub const APPROX_BYTES_PER_ENTRY: usize = 64;

/// A thread-safe, measure-keyed collection of [`TransformValues`] shards,
/// optionally bounded by an approximate byte limit with least-recently-used
/// shard eviction.
#[derive(Debug, Default)]
pub struct ResultCache {
    shards: RwLock<BTreeMap<String, TransformValues>>,
    /// Approximate byte ceiling; `None` (the default) grows without bound.
    limit_bytes: Option<usize>,
    /// Recency stamps per shard key, advanced by the logical clock below on
    /// every touch (insert or lookup).  Kept outside the shard lock so read
    /// paths can bump recency without taking the write lock on the data.
    stamps: Mutex<BTreeMap<String, u64>>,
    clock: AtomicU64,
    evicted_shards: AtomicU64,
    evicted_values: AtomicU64,
}

impl ResultCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Creates an empty cache that evicts least-recently-used shards once its
    /// approximate footprint exceeds `limit_bytes` (see
    /// [`ResultCache::approx_bytes`] for the accounting).
    pub fn with_byte_limit(limit_bytes: usize) -> Self {
        ResultCache {
            limit_bytes: Some(limit_bytes),
            ..ResultCache::default()
        }
    }

    /// Creates a cache whose [`LEGACY_MEASURE_KEY`] shard is seeded from
    /// previously computed values (untagged checkpoint restore).
    pub fn from_values(values: TransformValues) -> Self {
        let mut shards = BTreeMap::new();
        shards.insert(LEGACY_MEASURE_KEY.to_string(), values);
        ResultCache {
            shards: RwLock::new(shards),
            ..ResultCache::default()
        }
    }

    /// Creates a cache from a full measure-keyed restore
    /// (see `checkpoint::load_checkpoint_by_measure`).
    pub fn from_shards(shards: BTreeMap<String, TransformValues>) -> Self {
        ResultCache {
            shards: RwLock::new(shards),
            ..ResultCache::default()
        }
    }

    /// The configured byte limit, if any.
    pub fn byte_limit(&self) -> Option<usize> {
        self.limit_bytes
    }

    /// Advances the logical clock and stamps `key` as the most recently used
    /// shard.
    fn touch(&self, key: &str) {
        // Relaxed is fine: the clock only needs to be monotonic, not ordered
        // with respect to the data it stamps.
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut stamps = self.stamps.lock();
        match stamps.get_mut(key) {
            Some(stamp) => *stamp = now,
            None => {
                stamps.insert(key.to_string(), now);
            }
        }
    }

    /// Approximate footprint of one shard.
    fn shard_bytes(key: &str, shard: &TransformValues) -> usize {
        key.len() + shard.len() * APPROX_BYTES_PER_ENTRY
    }

    /// Approximate total footprint of every shard, in bytes (entry counts and
    /// key lengths; allocator slack is not measured).
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .read()
            .iter()
            .map(|(key, shard)| ResultCache::shard_bytes(key, shard))
            .sum()
    }

    /// Number of whole shards evicted to stay under the byte limit.
    pub fn evicted_shards(&self) -> u64 {
        self.evicted_shards.load(Ordering::Relaxed)
    }

    /// Number of cached values lost to shard evictions.
    pub fn evicted_values(&self) -> u64 {
        self.evicted_values.load(Ordering::Relaxed)
    }

    /// Evicts least-recently-used shards until the footprint fits the limit.
    /// The most recently touched shard is exempt, so one oversized working set
    /// degrades to "no cross-request reuse" instead of failing its own run.
    fn enforce_limit(&self) {
        let Some(limit) = self.limit_bytes else {
            return;
        };
        let mut shards = self.shards.write();
        let mut total: usize = shards
            .iter()
            .map(|(key, shard)| ResultCache::shard_bytes(key, shard))
            .sum();
        while total > limit && shards.len() > 1 {
            // Victim: the live shard with the oldest stamp, ties broken by key
            // order (both maps iterate in key order, so the choice is
            // deterministic).  A shard without a stamp sorts oldest; the shard
            // carrying the newest stamp is exempt.
            let victim = {
                let stamps = self.stamps.lock();
                let newest = shards
                    .keys()
                    .map(|key| stamps.get(key).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                shards
                    .keys()
                    .map(|key| (stamps.get(key).copied().unwrap_or(0), key))
                    .filter(|(stamp, _)| *stamp < newest)
                    .min()
                    .map(|(_, key)| key.clone())
            };
            let Some(victim) = victim else {
                break; // every shard shares the newest stamp; nothing safe to drop
            };
            if let Some(shard) = shards.remove(&victim) {
                total = total.saturating_sub(ResultCache::shard_bytes(&victim, &shard));
                self.evicted_shards.fetch_add(1, Ordering::Relaxed);
                self.evicted_values
                    .fetch_add(shard.len() as u64, Ordering::Relaxed);
            }
            self.stamps.lock().remove(&victim);
        }
    }

    /// Stores a computed value under a transform key.
    pub fn insert(&self, key: &str, s: Complex64, value: Complex64) {
        {
            let mut shards = self.shards.write();
            match shards.get_mut(key) {
                Some(shard) => shard.insert(s, value),
                None => {
                    let mut shard = TransformValues::new();
                    shard.insert(s, value);
                    shards.insert(key.to_string(), shard);
                }
            }
        }
        self.touch(key);
        self.enforce_limit();
    }

    /// Looks up a previously computed value for a transform key.
    pub fn get(&self, key: &str, s: Complex64) -> Option<Complex64> {
        let value = self.shards.read().get(key).and_then(|shard| shard.get(s));
        if value.is_some() {
            self.touch(key);
        }
        value
    }

    /// True when the point has already been computed for the transform key.
    pub fn contains(&self, key: &str, s: Complex64) -> bool {
        let hit = self
            .shards
            .read()
            .get(key)
            .is_some_and(|shard| shard.contains(s));
        if hit {
            self.touch(key);
        }
        hit
    }

    /// Total number of stored values across all shards.
    pub fn len(&self) -> usize {
        self.shards.read().values().map(TransformValues::len).sum()
    }

    /// Number of values stored for one transform key.
    pub fn shard_len(&self, key: &str) -> usize {
        self.shards.read().get(key).map_or(0, TransformValues::len)
    }

    /// True when no values are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The transform keys that currently have a shard (sorted, for
    /// deterministic reporting).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.shards.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Takes a consistent snapshot of one transform key's values (empty when
    /// the key has no shard).
    pub fn snapshot(&self, key: &str) -> TransformValues {
        let snapshot = self.shards.read().get(key).cloned().unwrap_or_default();
        if !snapshot.is_empty() {
            self.touch(key);
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_contains() {
        let cache = ResultCache::new();
        let s = Complex64::new(1.5, -2.0);
        assert!(cache.is_empty());
        assert!(!cache.contains("m", s));
        cache.insert("m", s, Complex64::I);
        assert_eq!(cache.get("m", s), Some(Complex64::I));
        assert!(cache.contains("m", s));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_are_isolated_by_key() {
        let cache = ResultCache::new();
        let s = Complex64::new(0.5, 3.0);
        cache.insert("density", s, Complex64::ONE);
        // The same s-point under another key is a distinct entry.
        assert!(!cache.contains("transient", s));
        cache.insert("transient", s, Complex64::I);
        assert_eq!(cache.get("density", s), Some(Complex64::ONE));
        assert_eq!(cache.get("transient", s), Some(Complex64::I));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.shard_len("density"), 1);
        assert_eq!(cache.shard_len("never-used"), 0);
        assert_eq!(
            cache.keys(),
            vec!["density".to_string(), "transient".to_string()]
        );
    }

    #[test]
    fn snapshot_is_independent() {
        let cache = ResultCache::new();
        cache.insert("m", Complex64::ONE, Complex64::ONE);
        let snap = cache.snapshot("m");
        cache.insert("m", Complex64::I, Complex64::I);
        assert_eq!(snap.len(), 1);
        assert_eq!(cache.shard_len("m"), 2);
        assert!(cache.snapshot("missing").is_empty());
    }

    #[test]
    fn seeded_from_legacy_checkpoint_values() {
        let mut values = TransformValues::new();
        values.insert(Complex64::new(2.0, 3.0), Complex64::new(0.5, 0.5));
        let cache = ResultCache::from_values(values);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(LEGACY_MEASURE_KEY, Complex64::new(2.0, 3.0)));
    }

    #[test]
    fn seeded_from_measure_keyed_shards() {
        let mut shards = BTreeMap::new();
        let mut a = TransformValues::new();
        a.insert(Complex64::ONE, Complex64::I);
        shards.insert("a".to_string(), a);
        let mut legacy = TransformValues::new();
        legacy.insert(Complex64::I, Complex64::ONE);
        shards.insert(LEGACY_MEASURE_KEY.to_string(), legacy);
        let cache = ResultCache::from_shards(shards);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains("a", Complex64::ONE));
        assert!(cache.contains(LEGACY_MEASURE_KEY, Complex64::I));
    }

    #[test]
    fn concurrent_inserts_all_visible() {
        let cache = Arc::new(ResultCache::new());
        crossbeam::scope(|scope| {
            for worker in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move |_| {
                    let key = format!("measure-{}", worker % 2);
                    for k in 0..100 {
                        let s = Complex64::new(worker as f64, k as f64);
                        cache.insert(&key, s, Complex64::real(k as f64));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cache.len(), 800);
        assert_eq!(
            cache.get("measure-1", Complex64::new(3.0, 42.0)),
            Some(Complex64::real(42.0))
        );
    }

    /// Fills one shard with `n` entries at distinct s-points.
    fn fill(cache: &ResultCache, key: &str, n: usize) {
        for k in 0..n {
            cache.insert(key, Complex64::new(k as f64, 1.0), Complex64::ONE);
        }
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ResultCache::new();
        assert_eq!(cache.byte_limit(), None);
        for shard in 0..16 {
            fill(&cache, &format!("m{shard}"), 100);
        }
        assert_eq!(cache.len(), 1600);
        assert_eq!(cache.evicted_shards(), 0);
    }

    #[test]
    fn approx_bytes_tracks_entries_and_keys() {
        let cache = ResultCache::new();
        assert_eq!(cache.approx_bytes(), 0);
        fill(&cache, "abcd", 10);
        assert_eq!(cache.approx_bytes(), 4 + 10 * APPROX_BYTES_PER_ENTRY);
        fill(&cache, "xy", 5);
        assert_eq!(cache.approx_bytes(), 4 + 2 + 15 * APPROX_BYTES_PER_ENTRY);
    }

    #[test]
    fn byte_limit_evicts_least_recently_used_shard_first() {
        // Room for about two 10-entry shards.
        let cache = ResultCache::with_byte_limit(2 * 10 * APPROX_BYTES_PER_ENTRY + 64);
        fill(&cache, "oldest", 10);
        fill(&cache, "middle", 10);
        // Touch "oldest" so "middle" becomes the LRU victim.
        assert!(cache.contains("oldest", Complex64::new(0.0, 1.0)));
        fill(&cache, "newest", 10);
        assert_eq!(cache.evicted_shards(), 1);
        assert_eq!(cache.evicted_values(), 10);
        assert_eq!(cache.shard_len("middle"), 0, "LRU shard evicted");
        assert_eq!(cache.shard_len("oldest"), 10, "recently read shard kept");
        assert_eq!(cache.shard_len("newest"), 10, "incoming shard kept");
        assert!(cache.approx_bytes() <= 2 * 10 * APPROX_BYTES_PER_ENTRY + 64);
    }

    #[test]
    fn most_recent_shard_survives_even_when_over_limit() {
        // A limit smaller than a single shard: the active shard must not be
        // evicted out from under its own run.
        let cache = ResultCache::with_byte_limit(APPROX_BYTES_PER_ENTRY);
        fill(&cache, "working-set", 50);
        assert_eq!(cache.shard_len("working-set"), 50);
        assert_eq!(cache.evicted_shards(), 0);
        // A second shard displaces the first the moment it becomes the most
        // recent one.
        fill(&cache, "next", 50);
        assert_eq!(cache.shard_len("next"), 50);
        assert_eq!(cache.shard_len("working-set"), 0);
        assert_eq!(cache.evicted_shards(), 1);
        assert_eq!(cache.evicted_values(), 50);
    }

    #[test]
    fn eviction_is_deterministic_under_stamp_ties() {
        // Three shards inserted in order, then a limit breach: victims are
        // chosen oldest-stamp-first (ties by key order), so repeated runs
        // evict identically.
        let cache = ResultCache::with_byte_limit(10 * APPROX_BYTES_PER_ENTRY);
        fill(&cache, "a", 4);
        fill(&cache, "b", 4);
        fill(&cache, "c", 8); // pushes the total over the limit
        assert_eq!(cache.shard_len("a"), 0);
        assert_eq!(cache.shard_len("b"), 0);
        assert_eq!(cache.shard_len("c"), 8);
        assert_eq!(cache.evicted_shards(), 2);
    }
}
