//! Property tests for the wire protocol: `TransformSpec` and `WorkerMessage`
//! encodings round-trip for arbitrary payloads, and non-finite quantities are
//! rejected at the boundary instead of poisoning the cache.

use proptest::prelude::*;
use smp_numeric::Complex64;
use smp_pipeline::wire::{
    decode_finite_f64, decode_worker_message, encode_f64, encode_finite_f64, encode_worker_message,
    WireError,
};
use smp_pipeline::work::WorkItem;
use smp_pipeline::worker::{WorkItemOutcome, WorkerMessage};
use smp_pipeline::{DistSpec, ModelSpec, TargetSpec, TransformSpec};

/// Builds a printable-but-awkward string (spaces, escapes, UTF-8) from raw
/// bytes — the vendored proptest has no string strategy, so payload strings
/// are derived from byte vectors.
fn string_from(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// A place name restricted to identifier characters: predicate round-trips go
/// through the `PLACE OP N` source form, which (like DNAmaca itself) cannot
/// represent operator characters inside a place name.
fn place_from(bytes: &[u8]) -> String {
    let mut place: String = bytes.iter().map(|b| (b'a' + (b % 26)) as char).collect();
    if place.is_empty() {
        place.push('p');
    }
    place
}

const OPS: [smp_pipeline::CompareOp; 6] = [
    smp_pipeline::CompareOp::Ge,
    smp_pipeline::CompareOp::Le,
    smp_pipeline::CompareOp::Gt,
    smp_pipeline::CompareOp::Lt,
    smp_pipeline::CompareOp::Eq,
    smp_pipeline::CompareOp::Ne,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn worker_messages_round_trip(
        worker in 0usize..1024,
        busy in 0u64..u64::MAX,
        raw in collection::vec(
            (0usize..16, 0usize..100_000, -1e300f64..1e300, -1e300f64..1e300,
             -1e12f64..1e12, 0u8..3),
            0..24),
        message_bytes in collection::vec(0u8..255, 0..32))
    {
        let results: Vec<WorkItemOutcome> = raw
            .iter()
            .enumerate()
            .map(|(k, &(measure, index, re, im, value, tag))| WorkItemOutcome {
                item: WorkItem {
                    measure,
                    index,
                    s: Complex64::new(re, im),
                },
                outcome: match tag {
                    0 => Ok(Complex64::new(value, -value / 3.0)),
                    1 => Ok(Complex64::new(0.0, value)),
                    _ => Err(format!("case {k}: {}", string_from(&message_bytes))),
                },
            })
            .collect();
        let message = WorkerMessage { worker, results };
        let payload = encode_worker_message(&message, busy).unwrap();
        let (decoded, decoded_busy) = decode_worker_message(&payload).unwrap();
        // Bit-exact: every s-point and value survives, error text included.
        prop_assert_eq!(decoded, message);
        prop_assert_eq!(decoded_busy, busy);
    }

    #[test]
    fn non_finite_values_never_survive_as_numbers(
        re in -1e300f64..1e300,
        pick in 0u8..3)
    {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        // Quantity fields reject NaN/∞ at encode time…
        prop_assert!(matches!(
            encode_finite_f64(bad, "s"),
            Err(WireError::NonFinite { .. })
        ));
        // …and at decode time, even when the hex bit pattern itself is valid.
        prop_assert!(matches!(
            decode_finite_f64(&encode_f64(bad), "s"),
            Err(WireError::NonFinite { .. })
        ));
        // A poisoned success outcome is demoted to an error outcome on the
        // wire rather than entering the master's cache as a number.
        let outcome = WorkItemOutcome {
            item: WorkItem {
                measure: 0,
                index: 0,
                s: Complex64::new(re, 1.0),
            },
            outcome: Ok(Complex64::new(bad, 0.0)),
        };
        let message = WorkerMessage { worker: 0, results: vec![outcome] };
        let payload = encode_worker_message(&message, 0).unwrap();
        let (decoded, _) = decode_worker_message(&payload).unwrap();
        let text = decoded.results[0].outcome.clone().unwrap_err();
        prop_assert!(text.contains("non-finite"), "{}", text);
    }

    #[test]
    fn voting_and_analytic_specs_round_trip(
        (voters, polling, central) in (1u32..2000, 1u32..50, 1u32..50),
        place_bytes in collection::vec(0u8..255, 0..12),
        op_index in 0usize..6,
        count in 0u32..10_000,
        (rate, shape) in (1e-6f64..1e6, 0.1f64..50.0),
        phases in 1u32..64,
        wrap_in_cdf in 0u8..2)
    {
        let targets = TargetSpec {
            place: place_from(&place_bytes),
            op: OPS[op_index],
            count,
        };
        let model = ModelSpec::Voting { voters, polling, central };
        let specs = [
            TransformSpec::passage(model.clone(), targets.clone()),
            TransformSpec::transient(model, targets),
            TransformSpec::Analytic(DistSpec::Erlang { rate, phases }),
            TransformSpec::Analytic(DistSpec::Weibull { shape, scale: rate }),
        ];
        for spec in specs {
            let spec = if wrap_in_cdf == 1 {
                TransformSpec::CdfOf(Box::new(spec))
            } else {
                spec
            };
            let line = spec.encode().unwrap();
            prop_assert!(!line.contains('\n'));
            prop_assert_eq!(TransformSpec::decode(&line).unwrap(), spec);
        }
    }

    #[test]
    fn arbitrary_dnamaca_sources_round_trip(
        source_bytes in collection::vec(0u8..255, 0..200),
        place_bytes in collection::vec(0u8..255, 1..8))
    {
        // The model source is shipped verbatim — whitespace, escapes and
        // multi-byte UTF-8 included.
        let source = string_from(&source_bytes);
        let spec = TransformSpec::transient(
            ModelSpec::Dnamaca(source.clone()),
            TargetSpec {
                place: place_from(&place_bytes),
                op: smp_pipeline::CompareOp::Ge,
                count: 1,
            },
        );
        let decoded = TransformSpec::decode(&spec.encode().unwrap()).unwrap();
        prop_assert_eq!(&decoded, &spec);
        match decoded.model().unwrap() {
            ModelSpec::Dnamaca(decoded_source) => prop_assert_eq!(decoded_source, &source),
            other => panic!("expected a DNAmaca model, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_distribution_parameters_are_rejected(pick in 0u8..3) {
        let bad = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        for spec in [
            TransformSpec::Analytic(DistSpec::Exponential { rate: bad }),
            TransformSpec::Analytic(DistSpec::Uniform { lower: 0.0, upper: bad }),
            TransformSpec::Analytic(DistSpec::Deterministic { value: bad }),
            TransformSpec::CdfOf(Box::new(TransformSpec::Analytic(DistSpec::Weibull {
                shape: bad,
                scale: 1.0,
            }))),
        ] {
            prop_assert!(matches!(spec.encode(), Err(WireError::NonFinite { .. })));
        }
    }
}
